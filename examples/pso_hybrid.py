#!/usr/bin/env python
"""Global + local hybrid on a noisy multimodal function (paper §5.2).

The paper's future-work section proposes combining particle swarm
optimization (global, but slow in refined stages) with the MN/PC simplex
methods (fast local convergence, noise-aware).  This example runs that
hybrid on a noisy 2-d Rastrigin surface — a grid of local minima where a
plain simplex from a random start usually gets trapped — and compares it
against PC alone.

Run:  python examples/pso_hybrid.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import PointComparison, default_termination, pso_polish
from repro.functions import Rastrigin, initial_simplex
from repro.noise import StochasticFunction


def pc_alone(seed: int):
    func = StochasticFunction(Rastrigin(2), sigma0=0.3, rng=seed)
    start = np.random.default_rng(seed).uniform(-4.0, 4.0, size=2)
    opt = PointComparison(
        func,
        initial_simplex(start, step=0.5),
        termination=default_termination(tau=1e-3, walltime=5e4, max_steps=400),
    )
    return opt.run()


def hybrid(seed: int):
    func = StochasticFunction(Rastrigin(2), sigma0=0.3, rng=seed)
    return pso_polish(
        func,
        bounds=(-4.0, 4.0),
        dim=2,
        polish_algorithm="PC",
        pso_iterations=40,
        n_particles=16,
        walltime=5e4,
        max_steps=400,
        seed=seed + 100,
    )


def main() -> None:
    rows = []
    wins = 0
    n = 6
    for seed in range(n):
        a = pc_alone(seed)
        b = hybrid(seed)
        if b.best_true <= a.best_true:
            wins += 1
        rows.append(
            [
                seed,
                round(a.best_true, 3),
                round(b.best_true, 3),
                np.array2string(b.best_theta, precision=2),
            ]
        )
    print(
        format_table(
            ["seed", "PC alone", "PSO+PC", "hybrid solution"],
            rows,
            title="Noisy 2-d Rastrigin (global minimum 0 at the origin)",
        )
    )
    print(f"\nhybrid matched or beat local-only in {wins}/{n} runs")


if __name__ == "__main__":
    main()
