#!/usr/bin/env python
"""Drive an optimization from an $OPTROOT directory tree (paper chapter 4).

Builds the full user-facing layout — ``systems/<name>/run.sh`` phase
scripts, ``properties/prop*.val``/``.wgt`` target files, and the input file
with parameter names plus initial simplex rows — then parses it back and
runs the MN optimizer against a cost assembled from the property specs.
The phase scripts are genuine shell scripts executed per evaluation (here: a
cheap analytic "simulation" writing its measured property to stdout).

Run:  python examples/optroot_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import MaxNoise, default_termination
from repro.noise import StochasticFunction
from repro.optroot import OptRoot, PhaseRunner, load_input, load_property_specs
from repro.optroot.config import write_input, write_property_spec
from repro.water.cost import WaterCostFunction

# a shell "simulation": measures y = (a - 1)^2 + (b + 2)^2 from the
# parameters exported in the environment
RUN_SH = """#!/bin/sh
a=$OPT_PARAM_A
b=$OPT_PARAM_B
python3 -c "print((${a} - 1.0)**2 + (${b} + 2.0)**2)"
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = OptRoot.create(Path(tmp) / "optroot")
        root.add_system("quadratic", RUN_SH)
        write_property_spec(root, "y", target=0.0, weight=1.0, scale=1.0)
        write_input(
            root,
            ["a", "b"],
            np.array([[4.0, 4.0], [5.0, 4.0], [4.0, 5.0]]),
        )

        config = load_input(root)
        specs = load_property_specs(root)
        cost = WaterCostFunction(specs)
        runner = PhaseRunner(root, timeout=30.0)
        print(f"OPTROOT          : {root.root}")
        print(f"systems          : {root.systems()}")
        print(f"processors needed: {root.n_processors_required()} (one per run.sh)")
        print(f"parameters       : {config.names}")
        print(f"property specs   : {specs}")

        def objective(theta) -> float:
            params = dict(zip(config.names, theta))
            results = runner.run_system("quadratic", params)
            if not results[-1].ok:
                raise RuntimeError(results[-1].stderr)
            measured = {"y": float(results[-1].stdout.strip())}
            return cost(measured)

        func = StochasticFunction(objective, sigma0=0.05, rng=0)
        opt = MaxNoise(
            func,
            config.simplex_vertices(),
            k=2.0,
            termination=default_termination(tau=1e-4, walltime=500.0, max_steps=60),
        )
        result = opt.run()
        print(f"\noptimized        : {dict(zip(config.names, result.best_theta.round(3)))}")
        print(f"true optimum     : {{'a': 1.0, 'b': -2.0}}")
        print(f"steps            : {result.n_steps} ({result.reason})")
        print(f"shell phases run : {len(runner.history)}")


if __name__ == "__main__":
    main()
