#!/usr/bin/env python
"""Distributed campaign demo: two runners, one store, compaction, watching.

Builds a 24-job campaign in a shared directory, then demonstrates the
multi-runner story from docs/CAMPAIGNS.md:

1. two runner *processes* started on the same directory with the ``mw``
   backend (master-worker driver; worker crashes requeue their tasks) —
   each re-reads the shared store between batches and sheds jobs the
   other has already completed,
2. a ``watch``-style progress snapshot read from the directory while the
   runners work (here taken after they finish, since the demo jobs are
   fast),
3. store compaction (duplicate records from overlapping runners and
   resume cycles collapse to one line per job),
4. the per-cell summary, byte-identical before and after compaction.

Everything here maps 1:1 onto the CLI::

    python -m repro campaign run   DIR --backend mw --progress   # on each host
    python -m repro campaign watch DIR
    python -m repro campaign compact DIR
    python -m repro campaign summary DIR

Run:  python examples/distributed_campaign.py [directory]
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.analysis import format_table
from repro.campaign import Campaign, CampaignSpec, CellSummary, watch_campaign

SRC = Path(__file__).resolve().parents[1] / "src"


def runner_process(directory: Path) -> subprocess.Popen:
    """One cooperating runner: the CLI on the mw backend."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run", str(directory),
            "--backend", "mw", "--mw-transport", "process",
            "--max-workers", "2", "--batch-size", "2",
            "--stagger", "--progress",
        ],
        env=env,
    )


def main() -> None:
    directory = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="dist-campaign-")
    )
    spec = CampaignSpec(
        name="distributed-demo",
        algorithms=[{"algorithm": "PC", "options": {"k": 1.0}}, "MN"],
        functions=["sphere", "rosenbrock"],
        dims=[3],
        sigma0s=[100.0],
        n_seeds=6,
        base_seed=42,
        tau=1e-3,
        walltime=2e4,
        max_steps=300,
    )
    campaign = Campaign(directory, spec=spec)
    print(f"campaign directory: {directory}")
    print(f"jobs              : {len(spec.expand())}\n")

    print("-- two cooperating runner processes on the mw backend --")
    runners = [runner_process(directory), runner_process(directory)]
    for proc in runners:
        proc.wait()

    print("\n-- progress snapshot (what `campaign watch` tails) --")
    for snapshot in watch_campaign(campaign, max_ticks=1):
        print(snapshot.line())

    print("\n-- compaction --")
    summary_before = [s.as_row() for s in campaign.summary()]
    print(campaign.compact())
    summary_after = [s.as_row() for s in campaign.summary()]
    assert summary_before == summary_after, "compaction must not change results"
    print("summary identical before and after compaction")

    print("\n-- per-cell summary --")
    print(format_table(CellSummary.header(), summary_after))


if __name__ == "__main__":
    main()
