#!/usr/bin/env python
"""Scale-up study on the virtual cluster (paper §3.4 / Fig. 3.18).

Optimizes the Rosenbrock function in growing dimension on the simulated MW
deployment: a Palmetto-shaped cluster, the paper's processor-allocation
policy (Table 3.3), the Myrinet MPI fabric and spool-file worker/server
communication.  Reports the allocation table and the time-per-step growth.

Run:  python examples/cluster_scaleup.py
"""

import numpy as np

from repro.analysis import format_table
from repro.cluster import Cluster, ProcessorAllocation, SimulatedMWPool
from repro.core import MaxNoise, default_termination
from repro.functions import Rosenbrock, random_vertices
from repro.noise import StochasticFunction


def main() -> None:
    cluster = Cluster.palmetto(n_nodes=60)
    print(f"virtual cluster: {len(cluster)} nodes, {cluster.total_cores} cores\n")

    alloc_rows = [
        list(ProcessorAllocation.for_problem(d, ns=1).as_row()) for d in (20, 50, 100)
    ]
    print(
        format_table(
            ["d", "workers", "servers", "clients", "total cores"],
            alloc_rows,
            title="Processor allocation (Table 3.3 policy, Ns=1)",
        )
    )
    print()

    rows = []
    for d in (20, 50, 100):
        func = StochasticFunction(Rosenbrock(d), sigma0=0.0, rng=np.random.default_rng(d))
        pool = SimulatedMWPool(func, cluster, dim=d, ns=1)
        vertices = random_vertices(d, low=-5.0, high=5.0, rng=np.random.default_rng(7))
        opt = MaxNoise(
            func,
            vertices,
            k=2.0,
            pool=pool,
            termination=default_termination(tau=1e-12, walltime=5e4, max_steps=150),
        )
        result = opt.run()
        rows.append(
            [
                d,
                result.n_steps,
                round(result.walltime, 1),
                round(result.walltime / result.n_steps, 3),
                round(pool.comm_overhead, 2),
                round(result.best_true, 2),
            ]
        )
    print(
        format_table(
            ["d", "steps", "virtual walltime", "time/step", "comm overhead", "best f"],
            rows,
            title="MW scale-up (Fig 3.18): overhead grows mildly with dimension",
        )
    )


if __name__ == "__main__":
    main()
