#!/usr/bin/env python
"""Quickstart: minimize a noisy function with the PC algorithm.

The objective is the 3-d Rosenbrock function observed through sampling noise
whose standard deviation decays as sigma0/sqrt(t) with sampling time t
(eq. 1.1-1.2 of the paper).  The point-to-point comparison (PC) algorithm
only accepts a simplex move once the relevant confidence intervals separate,
resampling as needed.

Run:  python examples/quickstart.py
"""

from repro import optimize


def main() -> None:
    result = optimize(
        "rosenbrock",
        dim=3,
        algorithm="PC",
        sigma0=10.0,             # inherent noise scale
        seed=42,
        x0=[0.5, 0.0, 0.5],      # build an axis-aligned simplex around x0
        step=0.8,
        tau=1e-3,                # eq. 2.9 tolerance termination
        walltime=3e6,            # virtual wall-time budget (seconds)
        max_steps=2000,
        max_resample_rounds=20,  # force hard comparisons after 20 rounds
    )
    print(f"algorithm        : {result.algorithm}")
    print(f"best parameters  : {result.best_theta.round(4)}")
    print(f"noisy estimate   : {result.best_estimate:.5g}")
    print(f"true value       : {result.best_true:.5g}   (optimum is 0 at [1 1 1])")
    print(f"simplex steps    : {result.n_steps}")
    print(f"stopped because  : {result.reason}")
    print(f"virtual walltime : {result.walltime:.3g} s")
    print(f"function calls   : {result.n_underlying_calls}")

    ops = result.trace.operation_counts()
    print(f"operations       : {ops}")


if __name__ == "__main__":
    main()
