#!/usr/bin/env python
"""Compare DET / MN / PC / PC+MN / Anderson on a noisy Rosenbrock.

Reproduces the flavour of the paper's §3.3 study at small scale: all five
algorithms start from the *same* random initial simplexes at three noise
levels; the table reports the median converged (true) function value and
median step count.  Expect DET to degrade sharply as noise grows while the
stochastic variants hold up.

The sweep goes through the campaign engine (:mod:`repro.campaign`): one
declarative spec expands to algorithms x noise levels x seeds, runs on a
chosen parallel backend, and the table is read back out of the result
store.

Run:  python examples/algorithm_comparison.py [n_seeds] [backend]
"""

import sys

import numpy as np

from repro.analysis import format_table
from repro.campaign import AlgorithmVariant, CampaignRunner, CampaignSpec, ResultStore

CONFIGS = {
    "DET": {},
    "MN": {"k": 2.0},
    "PC": {"k": 1.0},
    "PC+MN": {},
    "ANDERSON": {"k1": 2.0**10},
}

NOISE_LEVELS = (1.0, 100.0, 1000.0)


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    backend = sys.argv[2] if len(sys.argv) > 2 else "serial"
    spec = CampaignSpec(
        name="algorithm-comparison",
        algorithms=[AlgorithmVariant(alg, dict(opts)) for alg, opts in CONFIGS.items()],
        functions=["rosenbrock"],
        dims=[4],
        sigma0s=NOISE_LEVELS,
        seeds=list(range(n_seeds)),
        tau=1e-3,
        walltime=3e4,
        max_steps=600,
    )
    store = ResultStore()
    CampaignRunner(spec, store, backend=backend).run()

    by_cell = {}
    for rec in store.completed():
        job = rec["job"]
        key = (float(job["sigma0"]), job["label"])
        by_cell.setdefault(key, []).append(rec["result"])
    rows = []
    for sigma0 in NOISE_LEVELS:
        for alg in CONFIGS:
            results = by_cell[(sigma0, alg)]
            rows.append(
                [
                    f"{sigma0:g}",
                    alg,
                    round(float(np.median([r["best_true"] for r in results])), 4),
                    int(np.median([r["n_steps"] for r in results])),
                ]
            )
    print(
        format_table(
            ["sigma0", "algorithm", "median true minimum", "median steps"],
            rows,
            title=f"Noisy 4-d Rosenbrock, {n_seeds} shared initial simplexes",
        )
    )


if __name__ == "__main__":
    main()
