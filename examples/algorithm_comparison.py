#!/usr/bin/env python
"""Compare DET / MN / PC / PC+MN / Anderson on a noisy Rosenbrock.

Reproduces the flavour of the paper's §3.3 study at small scale: all five
algorithms start from the *same* random initial simplexes at three noise
levels; the table reports the median converged (true) function value and
median step count.  Expect DET to degrade sharply as noise grows while the
stochastic variants hold up.

Run:  python examples/algorithm_comparison.py [n_seeds]
"""

import sys

import numpy as np

from repro.analysis import format_table
from repro.core import ALGORITHMS, default_termination
from repro.functions import Rosenbrock, random_vertices
from repro.noise import StochasticFunction

CONFIGS = {
    "DET": {},
    "MN": {"k": 2.0},
    "PC": {"k": 1.0},
    "PC+MN": {},
    "ANDERSON": {"k1": 2.0**10},
}


def run_one(alg: str, sigma0: float, seed: int, **options):
    verts = random_vertices(4, low=-5.0, high=5.0, rng=np.random.default_rng(seed))
    func = StochasticFunction(
        Rosenbrock(4), sigma0=sigma0, mode="resample",
        rng=np.random.default_rng(seed + 1000),
    )
    term = default_termination(tau=1e-3, walltime=3e4, max_steps=600)
    opt = ALGORITHMS[alg](func, verts, termination=term, record_trace=False, **options)
    return opt.run()


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    rows = []
    for sigma0 in (1.0, 100.0, 1000.0):
        for alg, options in CONFIGS.items():
            finals, steps = [], []
            for seed in range(n_seeds):
                result = run_one(alg, sigma0, seed, **options)
                finals.append(result.best_true)
                steps.append(result.n_steps)
            rows.append(
                [
                    f"{sigma0:g}",
                    alg,
                    round(float(np.median(finals)), 4),
                    int(np.median(steps)),
                ]
            )
    print(
        format_table(
            ["sigma0", "algorithm", "median true minimum", "median steps"],
            rows,
            title=f"Noisy 4-d Rosenbrock, {n_seeds} shared initial simplexes",
        )
    )


if __name__ == "__main__":
    main()
