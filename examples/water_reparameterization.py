#!/usr/bin/env python
"""Reparameterize the TIP4P water model (paper §3.5).

Starts from the dissertation's Table 3.4a initial simplex — parameter values
that give "poor and unphysical results" — and recovers parameters close to
published TIP4P (eps = 0.1550 kcal/mol, sigma = 3.154 A, qH = 0.520 e) by
minimizing the eq. 3.4 weighted cost over six noisy properties (U, P, D and
three RDF residuals).

By default the properties come from the calibrated surrogate (seconds).
With ``--md`` the script additionally runs one genuine mini-MD evaluation
(NVT equilibration + NVE production) at the optimized parameters to show the
full simulation path.

Run:  python examples/water_reparameterization.py [--md]
"""

import sys

from repro.analysis import format_table
from repro.water import (
    INITIAL_SIMPLEX_3_4A,
    TIP4P_PUBLISHED,
    WaterSurrogate,
    parameterize_water,
)


def main() -> None:
    print("Initial simplex (Table 3.4a, poor/unphysical):")
    surrogate = WaterSurrogate()
    rows = [
        [i + 1, round(v[0], 4), round(v[1], 3), round(v[2], 3)]
        for i, v in enumerate(INITIAL_SIMPLEX_3_4A[:4])
    ]
    print(format_table(["vertex", "epsilon", "sigma", "qH"], rows))
    print()

    rows = []
    best = {}
    for alg in ("MN", "PC", "PC+MN"):
        result = parameterize_water(
            algorithm=alg, seed=7, walltime=3e5, max_steps=300, tau=1e-3
        )
        best[alg] = result.best_theta
        rows.append(
            [
                alg,
                round(result.best_theta[0], 4),
                round(result.best_theta[1], 4),
                round(result.best_theta[2], 4),
                round(result.best_true, 3),
                result.n_steps,
            ]
        )
    rows.append(["TIP4P(pub)", *[round(float(x), 4) for x in TIP4P_PUBLISHED], "-", "-"])
    print(
        format_table(
            ["model", "epsilon", "sigma", "qH", "final cost", "steps"],
            rows,
            title="Converged parameters (surrogate path)",
        )
    )

    print("\nProperties at the MN-optimized parameters (surrogate):")
    props = surrogate.properties(best["MN"])
    for name, value in props.items():
        print(f"  {name:10s} = {value:.5g}")

    if "--md" in sys.argv:
        print("\nRunning one genuine mini-MD evaluation at the MN parameters ...")
        from repro.md import SimulationProtocol, WaterParameters, run_water_simulation

        protocol = SimulationProtocol(
            n_molecules=16, n_equilibration=300, n_production=300,
            dt=0.4, sample_every=15, thermostat_tau=10.0,
        )
        md = run_water_simulation(
            WaterParameters.from_vector(best["MN"]), protocol, rng=3
        )
        print(f"  internal energy : {md['energy']:.2f} +- {md['energy_sem']:.2f} kJ/mol")
        print(f"  pressure        : {md['pressure']:.0f} +- {md['pressure_sem']:.0f} atm")
        print(f"  diffusion       : {md['diffusion']:.3g} cm^2/s")
        print(f"  temperature     : {md['temperature']:.0f} K")
        print(f"  frames sampled  : {md['n_frames']}")


if __name__ == "__main__":
    main()
