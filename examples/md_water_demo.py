#!/usr/bin/env python
"""Run the miniature MD engine directly: a small box of TIP4P-like water.

Demonstrates the simulation substrate behind the paper's application: box
construction, NVT equilibration with a Berendsen thermostat, NVE production,
and the six cost-function properties measured from the trajectory (internal
energy, virial pressure, diffusion coefficient, three RDFs).

Run:  python examples/md_water_demo.py
"""

import numpy as np

from repro.md import (
    SimulationProtocol,
    TIP4PForceField,
    WaterParameters,
    build_water_box,
    kinetic_temperature,
    run_water_simulation,
)


def main() -> None:
    params = WaterParameters()  # published TIP4P
    print("TIP4P-geometry water, flexible intramolecular terms")
    print(f"  epsilon = {params.epsilon} kcal/mol, sigma = {params.sigma} A, "
          f"qH = {params.q_h} e (qM = {params.q_m} e)")
    print(f"  M-site coefficient a = {params.m_coeff:.5f}\n")

    system = build_water_box(16, params=params, rng=1)
    print(f"box: {system.n_molecules} molecules, L = {system.box.lengths[0]:.3f} A, "
          f"T0 = {kinetic_temperature(system.vel, system.masses, 3):.0f} K")
    ff = TIP4PForceField(params, system.n_molecules)
    result = ff.compute(system.pos, system.box)
    print("initial energies (kcal/mol):",
          {k: round(v, 2) for k, v in result.energies.items()}, "\n")

    protocol = SimulationProtocol(
        n_molecules=16,
        n_equilibration=400,
        n_production=300,
        dt=0.4,
        sample_every=15,
        thermostat_tau=10.0,
    )
    print("running NVT equilibration + NVE production ...")
    props = run_water_simulation(params, protocol, rng=1)

    print(f"\nmeasured properties ({props['n_frames']} frames):")
    print(f"  internal energy : {props['energy']:8.2f} +- {props['energy_sem']:.2f} kJ/mol "
          f"(expt: -41.5)")
    print(f"  pressure        : {props['pressure']:8.0f} +- {props['pressure_sem']:.0f} atm")
    print(f"  diffusion       : {props['diffusion']:8.3g} cm^2/s (expt: 2.27e-5)")
    print(f"  temperature     : {props['temperature']:8.0f} K")

    r = props["r"]
    goo = props["goo"]
    peak = int(np.argmax(goo))
    print(f"  gOO first peak  : r = {r[peak]:.2f} A, height = {goo[peak]:.2f} "
          f"(expt: ~2.8 A, ~3)")
    print(
        "\nnote: with 16 molecules, truncated electrostatics and femtosecond-\n"
        "scale runs, absolute values (especially pressure) deviate strongly\n"
        "from bulk experiment — the qualitative physics (bound liquid,\n"
        "first-shell structure at the right distance) is what this engine\n"
        "provides; the calibrated surrogate carries the quantitative map."
    )


if __name__ == "__main__":
    main()
