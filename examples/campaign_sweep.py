#!/usr/bin/env python
"""Durable campaign demo: interrupt, resume, aggregate.

Builds a 20-job campaign (2 algorithms x 2 test functions x 5 seeds) in a
directory, then demonstrates the lifecycle the CLI exposes:

1. a *partial* run (``max_jobs`` simulates Ctrl-C / a killed batch job),
2. a resumed run on the ``process`` backend that skips the completed jobs,
3. the per-cell summary and a paired comparison read from the store.

Everything here maps 1:1 onto the CLI::

    python -m repro campaign run  DIR --algorithms PC MN --functions sphere rosenbrock \
        --dims 3 --sigma0s 100 --n-seeds 5 --backend process
    python -m repro campaign status  DIR
    python -m repro campaign summary DIR
    python -m repro campaign compare DIR PC MN

Run:  python examples/campaign_sweep.py [directory]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import format_table
from repro.campaign import Campaign, CampaignSpec, CellSummary


def main() -> None:
    directory = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="campaign-")
    )
    spec = CampaignSpec(
        name="demo-sweep",
        algorithms=[{"algorithm": "PC", "options": {"k": 1.0}}, "MN"],
        functions=["sphere", "rosenbrock"],
        dims=[3],
        sigma0s=[100.0],
        n_seeds=5,          # SeedSequence-spawned: reproducible on any backend
        base_seed=42,
        tau=1e-3,
        walltime=2e4,
        max_steps=300,
    )
    campaign = Campaign(directory, spec=spec)

    print(f"campaign directory: {directory}\n")
    print("-- partial run (simulated interruption after 7 jobs) --")
    print(campaign.run(max_jobs=7))

    print("\n-- resumed run on the process backend (skips completed jobs) --")
    print(campaign.run(backend="process", chunksize=2))

    print("\n-- per-cell summary --")
    summaries = campaign.summary()
    print(format_table(CellSummary.header(), [s.as_row() for s in summaries]))

    print("\n-- paired comparison: PC vs MN, per function --")
    for function in spec.functions:
        cmp = campaign.compare("PC", "MN", function=function)
        print(
            f"{function:>10s}: {cmp.n_pairs} shared seeds, median log10 ratio "
            f"{cmp.median:+.3f} (negative = PC wins), "
            f"sign-test p = {cmp.sign.p_value:.4f}"
        )


if __name__ == "__main__":
    main()
