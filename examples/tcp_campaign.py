#!/usr/bin/env python
"""Cross-host campaign demo: TCP master + standalone workers, no shared FS.

The sibling of ``examples/distributed_campaign.py``: where that demo has
several runners *sharing one campaign directory*, this one keeps the
directory private to a single master and brings the compute to it over
sockets — the topology for hosts with no common filesystem
(docs/CAMPAIGNS.md, "Cross-host campaigns"):

1. the master runs the campaign with ``--backend mw`` and a
   ``tcp://127.0.0.1:<port>`` transport, listening for workers,
2. two worker *processes* are launched separately — exactly what
   ``python -m repro mw-worker tcp://host:port`` does on another host —
   and are handed jobs plus the executor's import spec over the wire,
3. a worker may even start before the master: it retries the connection
   until the listener appears,
4. when the campaign finishes, shutdown fans out and both workers exit
   on their own,
5. the resulting store is byte-for-byte the set of records a serial run
   would produce, which the demo verifies at the end.

Everything maps 1:1 onto the CLI::

    python -m repro campaign run DIR --backend mw --transport tcp://HOST:PORT
    python -m repro mw-worker tcp://HOST:PORT            # on each worker host

Run:  python examples/tcp_campaign.py [directory]
"""

import os
import socket
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.campaign import Campaign, CampaignRunner, CampaignSpec, ResultStore

SRC = Path(__file__).resolve().parents[1] / "src"


def free_port() -> int:
    """An OS-assigned localhost port for the master's listener."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def worker_process(url: str) -> subprocess.Popen:
    """One standalone worker: the `mw-worker` CLI pointed at the master."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "mw-worker", url,
         "--connect-timeout", "60"],
        env=env,
    )


def main() -> None:
    directory = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="tcp-campaign-")
    )
    spec = CampaignSpec(
        name="tcp-demo",
        algorithms=[{"algorithm": "PC", "options": {"k": 1.0}}, "MN"],
        functions=["sphere", "rosenbrock"],
        dims=[3],
        sigma0s=[100.0],
        n_seeds=6,
        base_seed=42,
        tau=1e-3,
        walltime=2e4,
        max_steps=300,
    )
    campaign = Campaign(directory, spec=spec)
    url = f"tcp://127.0.0.1:{free_port()}"
    print(f"campaign directory: {directory}  (master-private: workers never see it)")
    print(f"master listens at : {url}")
    print(f"jobs              : {len(spec.expand())}\n")

    print("-- two workers launched BEFORE the master (they retry, then join) --")
    workers = [worker_process(url), worker_process(url)]

    print("-- master runs the campaign over the TCP transport --")
    report = campaign.run(
        backend="mw",
        mw_transport=url,
        max_workers=2,
        progress=lambda s: print(s.line(), flush=True),
    )
    print(f"report            : {report}")

    print("\n-- campaign done: shutdown fanned out, workers exit on their own --")
    for proc in workers:
        proc.wait(timeout=60)

    print("\n-- verify: the TCP-served store equals a serial run of the spec --")
    serial_store = ResultStore()
    CampaignRunner(spec, serial_store).run()
    serial = {r["job_id"]: r["result"] for r in serial_store.records()}
    remote = {r["job_id"]: r["result"] for r in campaign.store.completed()}
    assert remote == serial, "TCP execution must reproduce the serial store"
    print(f"identical results for all {len(remote)} jobs")


if __name__ == "__main__":
    main()
