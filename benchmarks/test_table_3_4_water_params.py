"""Table 3.4 (a-d) — water parameterization: initial and final parameters.

Runs the MN / PC / PC+MN optimizers on the calibrated water surrogate from
the paper's Table 3.4a initial simplex ("parameter values that gave poor and
unphysical results").

Paper shapes: all three algorithms converge to parameters close to published
TIP4P (eps = 0.1550 kcal/mol, sigma = 3.154 A, qH = 0.520 e) — the paper's
own converged values differ from TIP4P by up to 0.008 / 0.008 / 0.003 in the
three coordinates — and the optimized cost improves the initial vertices by
orders of magnitude.
"""

import numpy as np

from benchmarks.conftest import bench_seeds
from repro.analysis import format_table
from repro.water import (
    INITIAL_SIMPLEX_3_4A,
    TIP4P_PUBLISHED,
    parameterize_water,
    surrogate_cost_function,
)

ALGS = ("MN", "PC", "PC+MN")


def run_parameterizations(seed: int):
    results = {}
    for alg in ALGS:
        results[alg] = parameterize_water(
            algorithm=alg, seed=seed, walltime=3e5, max_steps=300, tau=1e-3
        )
    return results


def test_table_3_4_water_parameters(benchmark, artifact):
    results = benchmark.pedantic(
        run_parameterizations, args=(bench_seeds(3),), rounds=1, iterations=1
    )
    f, _, _ = surrogate_cost_function()
    init_rows = [
        [i + 1, round(v[0], 4), round(v[1], 3), round(v[2], 3), round(f(v), 1)]
        for i, v in enumerate(INITIAL_SIMPLEX_3_4A)
    ]
    final_rows = []
    for alg in ALGS:
        th = results[alg].best_theta
        final_rows.append(
            [alg, round(th[0], 4), round(th[1], 4), round(th[2], 4),
             round(results[alg].best_true, 4), results[alg].n_steps]
        )
    final_rows.append(
        ["TIP4P(pub)", *[round(x, 4) for x in TIP4P_PUBLISHED],
         round(f(TIP4P_PUBLISHED), 4), "-"]
    )
    text = (
        format_table(
            ["row", "epsilon", "sigma", "qH", "cost"],
            init_rows,
            title="Table 3.4a: initial parameters (poor/unphysical)",
        )
        + "\n\n"
        + format_table(
            ["model", "epsilon", "sigma", "qH", "final cost", "steps"],
            final_rows,
            title="Table 3.4b-d: final parameters per algorithm vs published TIP4P",
        )
    )
    artifact("table_3_4_water_params", text)

    worst_start = min(f(v) for v in INITIAL_SIMPLEX_3_4A)
    for alg in ALGS:
        th = results[alg].best_theta
        # converged close to published TIP4P (paper tolerance scale)
        assert abs(th[0] - TIP4P_PUBLISHED[0]) < 0.02, (alg, th)
        assert abs(th[1] - TIP4P_PUBLISHED[1]) < 0.05, (alg, th)
        assert abs(th[2] - TIP4P_PUBLISHED[2]) < 0.02, (alg, th)
        # orders-of-magnitude improvement over the initial simplex
        assert results[alg].best_true < worst_start / 50.0
    benchmark.extra_info["final_thetas"] = {
        alg: [float(x) for x in results[alg].best_theta] for alg in ALGS
    }
