"""Table 3.1 — MN algorithm on 3-d Rosenbrock with controlled noise.

Paper protocol: five random initial states (coordinates uniform over
[-6, 3]), gate constant k in {2, 3, 4, 5}; report N (iterations to
convergence), R (error of the converged function value) and D (distance of
the best vertex from the solution).

Paper shape: R and D are essentially independent of k ("the value of k does
not affect the outcome of the algorithm; it only controls the speed of
convergence"); R stays moderate for every input.
"""

import numpy as np

from benchmarks._harness import controlled_run
from benchmarks.conftest import bench_seeds
from repro.analysis import evaluate_result, format_table

K_VALUES = (2.0, 3.0, 4.0, 5.0)


def run_table(n_inputs: int):
    rows = []
    metrics = {}
    for inp in range(n_inputs):
        row = [inp + 1]
        for k in K_VALUES:
            result, f = controlled_run(
                "MN",
                function="rosenbrock",
                dim=3,
                sigma0=100.0,
                seed=inp,
                low=-6.0,
                high=3.0,
                k=k,
            )
            m = evaluate_result(result, f)
            metrics[(inp, k)] = m
            row.extend([m.n_iterations, round(m.value_error, 3), round(m.distance, 3)])
        rows.append(row)
    return rows, metrics


def test_table_3_1_mn_controlled_noise(benchmark, artifact):
    n_inputs = min(5, max(3, bench_seeds(5)))
    rows, metrics = benchmark.pedantic(
        run_table, args=(n_inputs,), rounds=1, iterations=1
    )
    headers = ["input"]
    for k in K_VALUES:
        headers += [f"N(k={k:g})", f"R(k={k:g})", f"D(k={k:g})"]
    artifact(
        "table_3_1_mn",
        format_table(
            headers,
            rows,
            title="Table 3.1: MN on 3-d Rosenbrock, controlled noise "
            "(N iterations, R value error, D distance)",
        ),
    )
    # shape claim 1: every run actually converged to a finite answer
    assert all(np.isfinite(m.value_error) for m in metrics.values())
    # shape claim 2: accuracy is k-independent — the spread of median R
    # across k values stays within an order of magnitude
    med_r = {
        k: np.median([metrics[(i, k)].value_error for i in range(n_inputs)])
        for k in K_VALUES
    }
    values = np.array(list(med_r.values()))
    values = np.maximum(values, 1e-6)
    assert values.max() / values.min() < 50.0, med_r
    benchmark.extra_info["median_R_by_k"] = {str(k): float(v) for k, v in med_r.items()}
