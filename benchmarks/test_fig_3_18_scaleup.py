"""Fig. 3.18 — MW scale-up: Rosenbrock in d = 20 / 50 / 100.

The optimizer runs on the simulated cluster pool, which charges the MW
communication overheads (serial master sends/receives over the MPI fabric,
worker<->server file I/O) on top of sampling time.

Paper shapes:
(a) value vs time   — higher d converges later in wall time;
(b) value vs steps  — higher d needs more simplex steps;
(c) time/step vs d  — grows with d, but the growth is *minor* relative to
                      the per-step sampling time ("attributed to the I/O at
                      the simplex and vertex levels").
"""

import numpy as np

from benchmarks.conftest import bench_seeds
from repro.analysis import format_loglog_plot, format_table, trace_series
from repro.cluster import Cluster, SimulatedMWPool
from repro.core import MaxNoise, default_termination
from repro.functions import Rosenbrock, random_vertices
from repro.noise import StochasticFunction

DIMS = (20, 50, 100)


def run_scaleup(seed: int):
    cluster = Cluster.palmetto(n_nodes=60)
    out = {}
    for d in DIMS:
        # Ns = 1 Rosenbrock clients as in Table 3.3; noiseless sampling keeps
        # the per-step sampling time deterministic so the d-dependence of the
        # time/step measures the framework overhead (what Fig 3.18c shows)
        func = StochasticFunction(
            Rosenbrock(d), sigma0=0.0, rng=np.random.default_rng(seed + d)
        )
        pool = SimulatedMWPool(func, cluster, dim=d, ns=1, warmup=1.0)
        vertices = random_vertices(
            d, low=-5.0, high=5.0, rng=np.random.default_rng(seed)
        )
        opt = MaxNoise(
            func,
            vertices,
            k=2.0,
            pool=pool,
            termination=default_termination(tau=1e-12, walltime=5e4, max_steps=250),
        )
        result = opt.run()
        out[d] = {
            "result": result,
            "time_per_step": result.walltime / max(result.n_steps, 1),
            "overhead": pool.comm_overhead,
            "alloc_total": pool.allocation.total,
        }
    return out


def test_fig_3_18_mw_scaleup(benchmark, artifact):
    data = benchmark.pedantic(run_scaleup, args=(bench_seeds(7),), rounds=1, iterations=1)
    series = [
        trace_series(data[d]["result"], label=f"d={d}") for d in DIMS
    ]
    rows = [
        [
            d,
            data[d]["alloc_total"],
            data[d]["result"].n_steps,
            round(data[d]["result"].walltime, 1),
            round(data[d]["time_per_step"], 3),
            round(data[d]["overhead"], 3),
        ]
        for d in DIMS
    ]
    text = (
        format_loglog_plot(series, title="Fig 3.18a: value vs time (MW scale-up)")
        + "\n\n"
        + format_table(
            ["d", "cores", "steps", "walltime", "time/step", "comm overhead"],
            rows,
            title="Fig 3.18b/c: steps and time-per-step vs dimension",
        )
    )
    artifact("fig_3_18_scaleup", text)

    # (c) time/step grows with dimension ...
    tps = [data[d]["time_per_step"] for d in DIMS]
    assert tps[0] < tps[-1], tps
    # ... but the communication overhead share stays minor
    for d in DIMS:
        share = data[d]["overhead"] / data[d]["result"].walltime
        assert share < 0.5, (d, share)
    # every configuration made real progress from the random start
    for d in DIMS:
        trace = data[d]["result"].trace
        assert trace.best_true_values()[-1] < trace.best_true_values()[0]
    benchmark.extra_info["time_per_step"] = {str(d): float(data[d]["time_per_step"]) for d in DIMS}
