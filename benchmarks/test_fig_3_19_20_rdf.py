"""Figs. 3.19-3.20 — gOO(r) curves: initial vertices, optimized models,
published TIP4P, and experiment.

Paper shapes: the initial (non-optimal) parameter curves are badly shifted /
mis-structured; the optimization progressively improves them (Fig 3.20);
the converged models' gOO matches experiment slightly better than published
TIP4P's (Fig 3.19 b-d).
"""

import numpy as np

from benchmarks.conftest import bench_seeds
from repro.analysis import format_table
from repro.water import (
    INITIAL_SIMPLEX_3_4A,
    TIP4P_PUBLISHED,
    parameterize_water,
    rdf_curve,
)
from repro.water.cost import rdf_residual
from repro.water.experiment import experimental_goo
from repro.water.rdf_model import R_GRID


def _ascii_curves(curves, r, r_lo=2.0, r_hi=8.0, width=72, height=14) -> str:
    """Plot g(r) curves as overlaid ASCII traces."""
    mask = (r >= r_lo) & (r <= r_hi)
    rs = r[mask]
    gmax = max(float(np.max(g[mask])) for _, g in curves) * 1.05
    grid = [[" "] * width for _ in range(height)]
    marks = "eabcdt"
    for idx, (_, g) in enumerate(curves):
        xs = ((rs - r_lo) / (r_hi - r_lo) * (width - 1)).astype(int)
        ys = np.clip(((1.0 - g[mask] / gmax) * (height - 1)).astype(int), 0, height - 1)
        m = marks[idx % len(marks)]
        for x, y in zip(xs, ys):
            grid[y][x] = m
    lines = [f"gOO(r), r in [{r_lo}, {r_hi}] A, peak scale {gmax:.2f}"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append("legend: " + ", ".join(f"{marks[i % len(marks)]}={label}" for i, (label, _) in enumerate(curves)))
    return "\n".join(lines)


def run_models(seed: int):
    stages = {}
    for alg in ("MN", "PC", "PC+MN"):
        result = parameterize_water(
            algorithm=alg, seed=seed, walltime=3e5, max_steps=300, tau=1e-3
        )
        stages[alg] = result.best_theta
    return stages


def test_fig_3_19_20_goo_curves(benchmark, artifact):
    stages = benchmark.pedantic(
        run_models, args=(bench_seeds(3),), rounds=1, iterations=1
    )
    r = R_GRID
    exp = experimental_goo(r)
    residuals = {}
    curves = [("experiment", exp)]
    for i, vertex in enumerate(INITIAL_SIMPLEX_3_4A[:4]):
        residuals[f"initial_v{i + 1}"] = rdf_residual(rdf_curve(vertex), exp, r)
    residuals["TIP4P"] = rdf_residual(rdf_curve(TIP4P_PUBLISHED), exp, r)
    curves.append(("TIP4P", rdf_curve(TIP4P_PUBLISHED)))
    for alg, theta in stages.items():
        residuals[alg] = rdf_residual(rdf_curve(theta), exp, r)
        curves.append((alg, rdf_curve(theta)))

    plot_initial = _ascii_curves(
        [("experiment", exp)]
        + [(f"v{i + 1}", rdf_curve(v)) for i, v in enumerate(INITIAL_SIMPLEX_3_4A[:4])],
        r,
    )
    plot_final = _ascii_curves(curves, r)
    table = format_table(
        ["curve", "rms residual vs experiment"],
        [[k, round(v, 4)] for k, v in residuals.items()],
        title="Fig 3.19/3.20: gOO residuals across optimization stages",
    )
    artifact(
        "fig_3_19_20_rdf",
        "Fig 3.19a: initial (non-optimal) parameter curves\n"
        + plot_initial
        + "\n\nFig 3.19b-d: optimized vs TIP4P vs experiment\n"
        + plot_final
        + "\n\n"
        + table,
    )

    worst_initial = max(residuals[f"initial_v{i}"] for i in range(1, 5))
    for alg in ("MN", "PC", "PC+MN"):
        # optimization improved dramatically over the initial curves ...
        assert residuals[alg] < worst_initial / 3.0, residuals
        # ... and fits experiment at least as well as published TIP4P
        assert residuals[alg] <= residuals["TIP4P"] * 1.1, residuals
    benchmark.extra_info["residuals"] = {k: float(v) for k, v in residuals.items()}
