"""Table 3.3 — processor allocation for Rosenbrock optimization on MW.

Exact reproduction (the allocation is a closed-form policy, not a
measurement): workers = servers = d+3, clients = (d+3) Ns, total =
d Ns + 3 Ns + 2d + 7, for d = 20 / 50 / 100 with Ns = 1, checked against a
concrete machinefile assignment on a Palmetto-shaped cluster.
"""

from benchmarks.conftest import bench_seeds  # noqa: F401 (uniform import surface)
from repro.analysis import format_table
from repro.cluster import (
    Cluster,
    ProcessorAllocation,
    allocate_processors,
    machinefile,
)

DIMS = (20, 50, 100)
PAPER_TOTALS = {20: 70, 50: 160, 100: 310}


def run_table():
    rows = []
    jobs = {}
    entries = machinefile(Cluster.palmetto(n_nodes=50))
    for d in DIMS:
        alloc = ProcessorAllocation.for_problem(d, ns=1)
        job = allocate_processors(entries, d, ns=1)
        jobs[d] = (alloc, job)
        rows.append(list(alloc.as_row()))
    return rows, jobs


def test_table_3_3_processor_allocation(benchmark, artifact):
    rows, jobs = benchmark.pedantic(run_table, rounds=1, iterations=1)
    artifact(
        "table_3_3_allocation",
        format_table(
            ["d", "workers (d+3)", "servers (d+3)", "clients (d+3)Ns", "total"],
            rows,
            title="Table 3.3: processor allocation for Rosenbrock on MW (Ns=1)",
        ),
    )
    for d in DIMS:
        alloc, job = jobs[d]
        # exact match with the paper's totals
        assert alloc.total == PAPER_TOTALS[d]
        # the concrete machinefile assignment accounts for every process
        assert job.total == alloc.total
        assert len(job.workers) == d + 3
        assert len(job.servers) == d + 3
        assert sum(len(c) for c in job.clients) == d + 3
