"""Ablation: cost-level vs property-level noise modelling for the water fit.

The fast path propagates all property noise into a single cost-level sigma
(delta method at the true surfaces); the faithful path keeps six per-property
accumulators per vertex and derives the cost estimate/sem from their means
(including the finite-t chi-square bias a real squared-residual objective
has).  If the two disagree on where the optimization lands, the cheap model
would be distorting the benchmark conclusions — this bench checks they agree.
"""

import numpy as np

from benchmarks.conftest import bench_seeds
from repro.analysis import format_table
from repro.water import (
    TIP4P_PUBLISHED,
    parameterize_water,
    parameterize_water_property_level,
)


def run_pair(seed: int):
    kwargs = dict(algorithm="PC", seed=seed, walltime=2e5, max_steps=200, tau=1e-3)
    cost_level = parameterize_water(**kwargs)
    property_level = parameterize_water_property_level(**kwargs)
    return cost_level, property_level


def test_ablation_water_noise_model(benchmark, artifact):
    seed = bench_seeds(6)
    cost_level, property_level = benchmark.pedantic(
        run_pair, args=(seed,), rounds=1, iterations=1
    )
    rows = [
        [
            "cost-level",
            *[round(float(x), 4) for x in cost_level.best_theta],
            round(cost_level.best_true, 4),
            cost_level.n_steps,
        ],
        [
            "property-level",
            *[round(float(x), 4) for x in property_level.best_theta],
            round(property_level.best_true, 4),
            property_level.n_steps,
        ],
        ["TIP4P(pub)", *[round(float(x), 4) for x in TIP4P_PUBLISHED], "-", "-"],
    ]
    artifact(
        "ablation_water_noise_model",
        format_table(
            ["noise model", "epsilon", "sigma", "qH", "final cost", "steps"],
            rows,
            title="Ablation: cost-level vs property-level water noise model (PC)",
        ),
    )
    # both land in the same neighbourhood of published TIP4P
    np.testing.assert_allclose(
        cost_level.best_theta, property_level.best_theta, atol=0.15
    )
    for result in (cost_level, property_level):
        assert abs(result.best_theta[1] - TIP4P_PUBLISHED[1]) < 0.08
