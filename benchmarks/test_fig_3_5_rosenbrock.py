"""Fig. 3.5 — paired log-ratio histograms on 4-d Rosenbrock.

Three panels at noise levels sigma0 in {1, 100, 1000}, initial vertices
uniform over [-5, 5) (paper: 100 initial states):

(a) MN vs DET   — comparable at low noise; a negative tail grows with noise
                  (MN avoids premature convergence).
(b) PC vs MN    — PC ties or outperforms MN ~90% of the time.
(c) PC+MN vs PC — roughly symmetric; PC+MN slightly better.
"""

import numpy as np

from benchmarks._harness import paired_minima
from benchmarks.conftest import bench_seeds
from repro.analysis import format_histogram, ratio_histogram

NOISE_LEVELS = (1.0, 100.0, 1000.0)


def run_panels(n_seeds: int):
    panels = {}
    for sigma0 in NOISE_LEVELS:
        common = dict(function="rosenbrock", dim=4, sigma0=sigma0, n_seeds=n_seeds)
        panels[("MN/DET", sigma0)] = paired_minima(
            "MN", "DET", options_a={"k": 2.0}, **common
        )
        panels[("PC/MN", sigma0)] = paired_minima(
            "PC", "MN", options_a={"k": 1.0}, options_b={"k": 2.0}, **common
        )
        panels[("PC+MN/PC", sigma0)] = paired_minima(
            "PC+MN", "PC", options_b={"k": 1.0}, **common
        )
    return panels


def test_fig_3_5_rosenbrock_histograms(benchmark, artifact):
    n_seeds = bench_seeds(16)
    panels = benchmark.pedantic(run_panels, args=(n_seeds,), rounds=1, iterations=1)
    blocks = []
    hists = {}
    for (pair, sigma0), (mins_a, mins_b) in panels.items():
        h = ratio_histogram(mins_a, mins_b, lo=-8.0, hi=8.0, nbins=16)
        hists[(pair, sigma0)] = h
        blocks.append(
            format_histogram(
                h, title=f"Fig 3.5 log10(min {pair}) at sigma0={sigma0:g} (Rosenbrock 4-d)"
            )
        )
    artifact("fig_3_5_rosenbrock", "\n\n".join(blocks))

    # (a) MN vs DET: median advantage grows with noise and is <= ~0 at high noise
    med_a = {s: hists[("MN/DET", s)].median() for s in NOISE_LEVELS}
    assert med_a[1000.0] <= med_a[1.0] + 0.3, med_a
    assert med_a[1000.0] <= 0.25, med_a
    # (b) PC ties-or-beats MN in a clear majority at high noise
    frac_b = hists[("PC/MN", 1000.0)].fraction_tied_or_below(tie_width=0.5)
    assert frac_b >= 0.6, frac_b
    # (c) PC+MN vs PC is roughly symmetric (|median| small)
    med_c = hists[("PC+MN/PC", 1000.0)].median()
    assert abs(med_c) <= 1.5, med_c
    benchmark.extra_info["medians"] = {
        f"{pair}@{s:g}": float(hists[(pair, s)].median())
        for (pair, s) in hists
    }
