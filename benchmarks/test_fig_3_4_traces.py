"""Fig. 3.4 — function value vs. time for MN (k sweep) and Anderson (k1 sweep).

Five random inputs; each input produces one subfigure per method with four
curves.  Paper shape: for the MN algorithm the curves for different k
overlap (k only changes speed, not destination); for Anderson, the very
small k1 curve stalls far above the others.
"""

import numpy as np

from benchmarks._harness import controlled_run
from benchmarks.conftest import bench_seeds
from repro.analysis import format_loglog_plot, trace_series

MN_KS = (2.0, 3.0, 4.0, 5.0)
ANDERSON_K1S = ((2.0**0, "2^0"), (2.0**10, "2^10"), (2.0**20, "2^20"), (2.0**30, "2^30"))


def run_traces(n_inputs: int):
    figures = {}
    finals = {"MN": {}, "ANDERSON": {}}
    for inp in range(n_inputs):
        mn_series = []
        for k in MN_KS:
            result, _ = controlled_run(
                "MN", function="rosenbrock", dim=3, sigma0=100.0,
                seed=inp, low=-6.0, high=3.0, k=k, record_trace=True,
            )
            mn_series.append(trace_series(result, label=f"k={k:g}"))
            finals["MN"][(inp, k)] = result.best_true
        and_series = []
        for k1, lbl in ANDERSON_K1S:
            result, _ = controlled_run(
                "ANDERSON", function="rosenbrock", dim=3, sigma0=100.0,
                seed=inp, low=-6.0, high=3.0, k1=k1, record_trace=True,
            )
            and_series.append(trace_series(result, label=f"k1={lbl}"))
            finals["ANDERSON"][(inp, k1)] = result.best_true
        figures[inp] = (mn_series, and_series)
    return figures, finals


def test_fig_3_4_value_vs_time(benchmark, artifact):
    n_inputs = min(5, max(2, bench_seeds(3)))
    figures, finals = benchmark.pedantic(
        run_traces, args=(n_inputs,), rounds=1, iterations=1
    )
    blocks = []
    for inp, (mn_series, and_series) in figures.items():
        blocks.append(
            format_loglog_plot(
                mn_series, title=f"Fig 3.4 input {inp + 1} (left): MN, k sweep"
            )
        )
        blocks.append(
            format_loglog_plot(
                and_series,
                title=f"Fig 3.4 input {inp + 1} (right): Anderson, k1 sweep",
            )
        )
    artifact("fig_3_4_traces", "\n\n".join(blocks))
    # shape claim: the worst/best MN final values across k stay within ~2
    # decades (k-insensitivity), while Anderson's k1=2^0 final value is
    # far above its own best k1 in most inputs
    mn_spread_ok = 0
    anderson_gap = 0
    for inp in range(n_inputs):
        mn_vals = np.array([max(finals["MN"][(inp, k)], 1e-9) for k in MN_KS])
        if mn_vals.max() / mn_vals.min() < 1e3:
            mn_spread_ok += 1
        small = finals["ANDERSON"][(inp, ANDERSON_K1S[0][0])]
        best_large = min(finals["ANDERSON"][(inp, k1)] for k1, _ in ANDERSON_K1S[1:])
        if small > best_large:
            anderson_gap += 1
    assert mn_spread_ok >= n_inputs - 1
    assert anderson_gap >= n_inputs - 1
