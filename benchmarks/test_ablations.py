"""Ablation benches for the reproduction's own design choices (DESIGN.md §5).

* estimator mode: ``resample`` (paper's controlled-noise protocol) vs
  ``average`` (consistent running mean) — outcomes should be statistically
  comparable, validating that the protocol choice does not drive the
  algorithm ranking;
* MN wait target: refine all vertices vs only the noisiest — "all" buys at
  least as much accuracy for the same wall time (it samples more);
* PC resample growth factor: larger growth resolves undecided comparisons in
  fewer rounds;
* known vs estimated sigma0: the estimated-sigma variant must remain
  functional (it is the realistic case: "there is no expectation that this
  variance is known ahead of time").
"""

import numpy as np

from benchmarks._harness import controlled_run
from benchmarks.conftest import bench_seeds
from repro.analysis import format_table
from repro.core import MaxNoise, PointComparison, default_termination
from repro.functions import Sphere, random_vertices
from repro.noise import StochasticFunction


def test_ablation_estimator_mode(benchmark, artifact):
    n = bench_seeds(10)

    def run():
        finals = {"resample": [], "average": []}
        for mode in finals:
            for seed in range(n):
                r, _ = controlled_run(
                    "PC", dim=4, sigma0=100.0, seed=seed, noise_mode=mode, k=1.0
                )
                finals[mode].append(r.best_true)
        return finals

    finals = benchmark.pedantic(run, rounds=1, iterations=1)
    med = {m: float(np.median(v)) for m, v in finals.items()}
    artifact(
        "ablation_estimator",
        format_table(
            ["mode", "median final true value"],
            [[m, round(v, 4)] for m, v in med.items()],
            title="Ablation: resample vs average estimator (PC, Rosenbrock 4-d, sigma0=100)",
        ),
    )
    # comparable outcomes: medians within ~2 decades
    lo, hi = sorted(max(v, 1e-9) for v in med.values())
    assert hi / lo < 100.0, med


def test_ablation_mn_wait_target(benchmark, artifact):
    n = bench_seeds(8)

    def run():
        out = {"all": [], "noisiest": []}
        for target in out:
            for seed in range(n):
                rng = np.random.default_rng(seed)
                verts = random_vertices(2, rng=rng)
                func = StochasticFunction(
                    Sphere(2), sigma0=50.0, rng=np.random.default_rng(seed + 99)
                )
                opt = MaxNoise(
                    func,
                    verts,
                    k=2.0,
                    wait_target=target,
                    termination=default_termination(
                        tau=1e-3, walltime=2e4, max_steps=400
                    ),
                )
                result = opt.run()
                out[target].append(
                    (result.best_true, result.total_sampling_time)
                )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    med_true = {}
    for target, vals in out.items():
        med_true[target] = float(np.median([v[0] for v in vals]))
        med_effort = float(np.median([v[1] for v in vals]))
        rows.append([target, round(med_true[target], 4), round(med_effort, 1)])
    artifact(
        "ablation_mn_wait",
        format_table(
            ["wait target", "median final true value", "median sampling effort"],
            rows,
            title="Ablation: MN wait gate refines all vertices vs noisiest only",
        ),
    )
    # 'all' never catastrophically worse; both make progress from U[-5,5)^2
    assert med_true["all"] < 25.0
    assert med_true["noisiest"] < 25.0


def test_ablation_pc_resample_growth(benchmark, artifact):
    n = bench_seeds(8)

    def run():
        out = {}
        for growth in (1.0, 1.6, 3.0):
            rounds = []
            for seed in range(n):
                rng = np.random.default_rng(seed)
                verts = random_vertices(2, rng=rng)
                func = StochasticFunction(
                    Sphere(2), sigma0=20.0, rng=np.random.default_rng(seed + 7)
                )
                opt = PointComparison(
                    func,
                    verts,
                    k=1.0,
                    resample_growth=growth,
                    termination=default_termination(
                        tau=1e-3, walltime=2e4, max_steps=60
                    ),
                )
                opt.run()
                rounds.append(opt.stats.resample_rounds)
            out[growth] = float(np.mean(rounds))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_resample_dt",
        format_table(
            ["growth factor", "mean resample rounds"],
            [[g, round(v, 1)] for g, v in out.items()],
            title="Ablation: PC resample-quantum growth factor",
        ),
    )
    # geometric growth resolves comparisons in fewer rounds than constant dt
    assert out[3.0] <= out[1.0], out


def test_ablation_sigma_known_vs_estimated(benchmark, artifact):
    n = bench_seeds(8)

    def run():
        out = {}
        for known in (True, False):
            finals = []
            for seed in range(n):
                rng = np.random.default_rng(seed)
                verts = random_vertices(2, rng=rng)
                func = StochasticFunction(
                    Sphere(2),
                    sigma0=20.0,
                    rng=np.random.default_rng(seed + 5),
                    sigma_known=known,
                    sigma0_guess=20.0,
                )
                opt = PointComparison(
                    func,
                    verts,
                    k=1.0,
                    termination=default_termination(
                        tau=1e-3, walltime=2e4, max_steps=300
                    ),
                )
                finals.append(opt.run().best_true)
            out["known" if known else "estimated"] = float(np.median(finals))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_sigma_est",
        format_table(
            ["sigma0 knowledge", "median final true value"],
            [[k, round(v, 4)] for k, v in out.items()],
            title="Ablation: known vs block-scatter-estimated noise scale (PC)",
        ),
    )
    # the realistic (estimated) variant still optimizes
    assert out["estimated"] < 25.0, out
