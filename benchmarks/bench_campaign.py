"""End-to-end campaign throughput benchmark for batched evaluation.

Runs a real (small) campaign grid — ANDERSON on the sphere surface, the
algorithm whose large refinement rounds exercise the ask/tell pipeline
hardest — through the production :class:`~repro.campaign.Campaign` path
for a grid of (transport, store, ``--eval-batch``) cells, and reports
end-to-end jobs/s per cell plus the headline *batch speedup*: jobs/s at
``--eval-batch 32`` over jobs/s at ``--eval-batch 1`` on the tcp+sqlite
cell.

Every cell pins the same ``--max-inflight`` so both batch legs run the
same speculative pipeline depth (near-identical evaluations per job);
the speedup therefore isolates what batching the wire and the tell
fan-in buys, not a change in optimizer behaviour.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py
    PYTHONPATH=src python benchmarks/bench_campaign.py --json BENCH_campaign.json
    PYTHONPATH=src python benchmarks/bench_campaign.py \\
        --check benchmarks/baselines/bench_campaign.json --tolerance 0.40

``--json`` writes the measurements for the CI artifact; ``--check``
compares the gated cell's jobs/s *and* the batch speedup ratio against a
committed baseline and exits non-zero when either regressed by more than
``--tolerance`` (the CI bench-campaign gate).  The speedup ratio is the
robust number on shared CI machines — both legs run on the same box, so
machine speed divides out.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import Campaign  # noqa: E402 - path bootstrap above
from repro.campaign.spec import CampaignSpec  # noqa: E402
from repro.core.async_driver import AsyncEvalDriver  # noqa: E402

#: The cell the regression gate checks (others are context).
GATED_TRANSPORT = "tcp"
GATED_STORE = "sqlite"

#: The batch sizes whose jobs/s ratio is the headline speedup.
SPEEDUP_BASE = 1
SPEEDUP_BATCH = 32

#: Default cell grid: (transport, store, eval_batch).
DEFAULT_CELLS = (
    ("threaded", "jsonl", 1),
    ("threaded", "jsonl", 32),
    ("tcp", "sqlite", 1),
    ("tcp", "sqlite", 8),
    ("tcp", "sqlite", 32),
)


def free_port() -> int:
    """An OS-assigned free TCP port (released before use; benign race)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def run_cell(
    transport: str,
    store: str,
    eval_batch: int,
    *,
    seeds: int,
    max_steps: int,
    dim: int,
    workers: int,
    max_inflight: int,
) -> dict:
    """One benchmark cell: a full campaign run, timed end to end.

    Returns jobs/s plus the driver's own evaluation counters (captured by
    wrapping :meth:`AsyncEvalDriver.run`) so the report can show evals/s
    and evals/job — the honesty columns proving both batch legs did the
    same optimization work.
    """
    stats: dict = {}
    orig_run = AsyncEvalDriver.run

    def capture_run(self, sources, on_finished):
        out = orig_run(self, sources, on_finished)
        for key, value in out.items():
            stats[key] = stats.get(key, 0) + value
        return out

    spec = CampaignSpec(
        name="bench",
        algorithms=["ANDERSON"],
        functions=["sphere"],
        dims=[dim],
        seeds=list(range(seeds)),
        sigma0s=[0.3],
        max_steps=max_steps,
    )
    procs: list = []
    tmp = Path(tempfile.mkdtemp(prefix="bench-campaign-"))
    AsyncEvalDriver.run = capture_run
    try:
        if transport == "tcp":
            port = free_port()
            mw_transport = f"tcp://127.0.0.1:{port}"
            env = dict(os.environ)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            procs = [
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "mw-worker", mw_transport,
                        "--connect-timeout", "60",
                        "--executor", "repro.campaign.execution:mw_eval_executor",
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                )
                for _ in range(workers)
            ]
        else:
            mw_transport = transport

        campaign = Campaign(tmp, spec=spec, store=store)
        t0 = time.perf_counter()
        report = campaign.run(
            backend="mw",
            mw_transport=mw_transport,
            max_workers=workers,
            async_mode=True,
            eval_batch=eval_batch,
            batch_size=seeds,
            max_inflight=max_inflight,
        )
        elapsed = time.perf_counter() - t0
        for proc in procs:
            proc.wait(timeout=30)
            procs = []
    finally:
        AsyncEvalDriver.run = orig_run
        for proc in procs:
            proc.kill()
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)

    if report.n_failed:
        raise RuntimeError(
            f"cell {transport}+{store}+q{eval_batch}: "
            f"{report.n_failed} jobs failed"
        )
    evals = int(stats.get("submitted", 0))
    frames = int(stats.get("frames", 0))
    return {
        "transport": transport,
        "store": store,
        "eval_batch": eval_batch,
        "n_jobs": report.n_done,
        "elapsed_s": round(elapsed, 3),
        "jobs_per_s": round(report.n_done / elapsed, 3),
        "evals_per_s": round(evals / elapsed, 1),
        "evals_per_job": round(evals / max(1, report.n_done), 1),
        "avg_frame_fill": round(evals / max(1, frames), 2),
    }


def cell_key(transport: str, store: str, eval_batch: int) -> str:
    return f"{transport}+{store}+q{eval_batch}"


def run_cell_isolated(
    transport: str, store: str, eval_batch: int, args: argparse.Namespace
) -> dict:
    """Run one cell in a fresh interpreter and parse its JSON result.

    Isolation keeps cells honest: a prior cell's worker and engine
    threads (threaded transport runs workers in-process) must not share
    the interpreter with — and steal cycles from — the cell being timed.
    """
    proc = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()),
            "--run-one-cell", transport, store, str(eval_batch),
            "--seeds", str(args.seeds),
            "--max-steps", str(args.max_steps),
            "--dim", str(args.dim),
            "--workers", str(args.workers),
            "--max-inflight", str(args.max_inflight),
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"cell {cell_key(transport, store, eval_batch)} failed:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def run_benchmark(args: argparse.Namespace) -> dict:
    cells = {}
    for transport, store, eval_batch in DEFAULT_CELLS:
        key = cell_key(transport, store, eval_batch)
        print(f"running {key} ...", flush=True)
        cells[key] = run_cell_isolated(transport, store, eval_batch, args)
        c = cells[key]
        print(
            f"  {c['jobs_per_s']:.2f} jobs/s  {c['evals_per_s']:,.0f} evals/s  "
            f"{c['evals_per_job']:,.0f} evals/job  "
            f"frame fill {c['avg_frame_fill']:.1f}",
            flush=True,
        )

    base = cells[cell_key(GATED_TRANSPORT, GATED_STORE, SPEEDUP_BASE)]
    batch = cells[cell_key(GATED_TRANSPORT, GATED_STORE, SPEEDUP_BATCH)]
    speedup = batch["jobs_per_s"] / base["jobs_per_s"]
    results = {
        "benchmark": "bench_campaign",
        "config": {
            "algorithm": "ANDERSON",
            "function": "sphere",
            "dim": args.dim,
            "seeds": args.seeds,
            "max_steps": args.max_steps,
            "workers": args.workers,
            "max_inflight": args.max_inflight,
        },
        "cells": cells,
        "batch_speedup": round(speedup, 2),
    }
    print(
        f"batch speedup [{GATED_TRANSPORT}+{GATED_STORE}] "
        f"q{SPEEDUP_BATCH} vs q{SPEEDUP_BASE}: {speedup:.1f}x"
    )
    return results


def check_regression(results: dict, baseline_path: Path, tolerance: float) -> int:
    """Compare the gated cell and speedup to the baseline; 0 = pass."""
    baseline = json.loads(baseline_path.read_text())
    gated = cell_key(GATED_TRANSPORT, GATED_STORE, SPEEDUP_BATCH)
    rc = 0

    base_jps = baseline["cells"][gated]["jobs_per_s"]
    cur_jps = results["cells"][gated]["jobs_per_s"]
    floor = base_jps * (1.0 - tolerance)
    verdict = "ok" if cur_jps >= floor else "REGRESSION"
    print(
        f"bench-campaign [{gated}]: {cur_jps:.2f} jobs/s vs baseline "
        f"{base_jps:.2f} (floor {floor:.2f} at {tolerance:.0%} tolerance) "
        f"-> {verdict}"
    )
    rc |= 0 if cur_jps >= floor else 1

    base_ratio = baseline["batch_speedup"]
    cur_ratio = results["batch_speedup"]
    ratio_floor = base_ratio * (1.0 - tolerance)
    verdict = "ok" if cur_ratio >= ratio_floor else "REGRESSION"
    print(
        f"bench-campaign [batch_speedup]: {cur_ratio:.1f}x vs baseline "
        f"{base_ratio:.1f}x (floor {ratio_floor:.1f}x) -> {verdict}"
    )
    rc |= 0 if cur_ratio >= ratio_floor else 1
    return rc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--seeds", type=int, default=16,
                        help="jobs per cell (grid seeds; default 16)")
    parser.add_argument("--max-steps", type=int, default=25,
                        help="optimizer steps per job (default 25)")
    parser.add_argument("--dim", type=int, default=16,
                        help="surface dimension (default 16)")
    parser.add_argument("--workers", type=int, default=3,
                        help="worker count per cell (default 3)")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="pinned pipeline depth for every cell (default 64)")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="write results JSON to PATH")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a baseline JSON; non-zero exit "
                             "on regression")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional drop vs baseline "
                             "(default 0.40)")
    parser.add_argument("--run-one-cell", nargs=3, default=None,
                        metavar=("TRANSPORT", "STORE", "Q"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.run_one_cell:
        transport, store, q = args.run_one_cell
        cell = run_cell(
            transport,
            store,
            int(q),
            seeds=args.seeds,
            max_steps=args.max_steps,
            dim=args.dim,
            workers=args.workers,
            max_inflight=args.max_inflight,
        )
        print(json.dumps(cell))
        return 0

    results = run_benchmark(args)
    if args.json:
        args.json.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.check:
        return check_regression(results, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
