"""Benchmark-harness fixtures.

Every benchmark regenerates one paper artifact (table or figure) as text:
it is printed (visible with ``-s``), attached to the pytest-benchmark
``extra_info`` (lands in the benchmark JSON), and written to
``benchmarks/results/<name>.txt`` so the artifacts survive any capture
settings.  ``REPRO_BENCH_SEEDS`` scales the statistical sweeps (the paper
uses 100 initial simplex states; the default here is laptop-sized).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_seeds(default: int = 16) -> int:
    """Number of random initial states per sweep (paper: 100)."""
    return int(os.environ.get("REPRO_BENCH_SEEDS", default))


@pytest.fixture
def artifact():
    """Callable saving a rendered artifact: artifact(name, text)."""

    def _save(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
