"""Table 3.2 — the Anderson et al. criterion on 3-d Rosenbrock.

Paper protocol: same five inputs as Table 3.1; criterion cutoff
k1 in {2^0, 2^10, 2^20, 2^30}, k2 = 0.

Paper shape: "overly small values of parameter k1 generate large errors (R)"
with a small number of iterations N (the sampling demanded per step eats the
whole time budget -> premature stop far from the minimum), while large k1 is
comparable to MN.
"""

import numpy as np

from benchmarks._harness import controlled_run
from benchmarks.conftest import bench_seeds
from repro.analysis import evaluate_result, format_table

K1_VALUES = (2.0**0, 2.0**10, 2.0**20, 2.0**30)
K1_LABELS = ("2^0", "2^10", "2^20", "2^30")


def run_table(n_inputs: int):
    rows = []
    metrics = {}
    for inp in range(n_inputs):
        row = [inp + 1]
        for k1 in K1_VALUES:
            result, f = controlled_run(
                "ANDERSON",
                function="rosenbrock",
                dim=3,
                sigma0=100.0,
                seed=inp,
                low=-6.0,
                high=3.0,
                k1=k1,
            )
            m = evaluate_result(result, f)
            metrics[(inp, k1)] = m
            row.extend([m.n_iterations, round(m.value_error, 3), round(m.distance, 3)])
        rows.append(row)
    return rows, metrics


def test_table_3_2_anderson_criterion(benchmark, artifact):
    n_inputs = min(5, max(3, bench_seeds(5)))
    rows, metrics = benchmark.pedantic(
        run_table, args=(n_inputs,), rounds=1, iterations=1
    )
    headers = ["input"]
    for lbl in K1_LABELS:
        headers += [f"N({lbl})", f"R({lbl})", f"D({lbl})"]
    artifact(
        "table_3_2_anderson",
        format_table(
            headers,
            rows,
            title="Table 3.2: Anderson criterion on 3-d Rosenbrock, controlled noise",
        ),
    )
    mean_n = {
        k1: np.mean([metrics[(i, k1)].n_iterations for i in range(n_inputs)])
        for k1 in K1_VALUES
    }
    mean_r = {
        k1: np.mean([metrics[(i, k1)].value_error for i in range(n_inputs)])
        for k1 in K1_VALUES
    }
    # shape claim 1: small k1 starves the step count within the budget
    assert mean_n[K1_VALUES[0]] < mean_n[K1_VALUES[-1]], mean_n
    # shape claim 2: small k1 converges farther from the minimum than the
    # best-performing large-k1 setting
    assert mean_r[K1_VALUES[0]] > min(mean_r[k] for k in K1_VALUES[1:]), mean_r
    benchmark.extra_info["mean_N_by_k1"] = {
        lbl: float(mean_n[k1]) for lbl, k1 in zip(K1_LABELS, K1_VALUES)
    }
    benchmark.extra_info["mean_R_by_k1"] = {
        lbl: float(mean_r[k1]) for lbl, k1 in zip(K1_LABELS, K1_VALUES)
    }
