"""Fig. 3.6 — the same three paired histograms on the 4-d Powell function.

Same protocol as Fig. 3.5; the Powell singular function stresses late-stage
behaviour (singular Hessian at the optimum).  Paper shape: same ordering as
Rosenbrock, with even longer negative tails for MN vs DET at high noise.
"""

from benchmarks._harness import paired_minima
from benchmarks.conftest import bench_seeds
from repro.analysis import format_histogram, ratio_histogram

NOISE_LEVELS = (1.0, 100.0, 1000.0)


def run_panels(n_seeds: int):
    panels = {}
    for sigma0 in NOISE_LEVELS:
        common = dict(function="powell", dim=4, sigma0=sigma0, n_seeds=n_seeds)
        panels[("MN/DET", sigma0)] = paired_minima(
            "MN", "DET", options_a={"k": 2.0}, **common
        )
        panels[("PC/MN", sigma0)] = paired_minima(
            "PC", "MN", options_a={"k": 1.0}, options_b={"k": 2.0}, **common
        )
        panels[("PC+MN/PC", sigma0)] = paired_minima(
            "PC+MN", "PC", options_b={"k": 1.0}, **common
        )
    return panels


def test_fig_3_6_powell_histograms(benchmark, artifact):
    n_seeds = bench_seeds(16)
    panels = benchmark.pedantic(run_panels, args=(n_seeds,), rounds=1, iterations=1)
    blocks = []
    hists = {}
    for (pair, sigma0), (mins_a, mins_b) in panels.items():
        h = ratio_histogram(mins_a, mins_b, lo=-15.0, hi=5.0, nbins=20)
        hists[(pair, sigma0)] = h
        blocks.append(
            format_histogram(
                h, title=f"Fig 3.6 log10(min {pair}) at sigma0={sigma0:g} (Powell 4-d)"
            )
        )
    artifact("fig_3_6_powell", "\n\n".join(blocks))

    # MN never loses badly to DET at high noise, and wins in a fair share
    h_a = hists[("MN/DET", 1000.0)]
    assert h_a.fraction_tied_or_below(tie_width=1.0) >= 0.5
    # PC ties-or-beats MN in the majority at high noise
    assert hists[("PC/MN", 1000.0)].fraction_tied_or_below(tie_width=0.5) >= 0.55
    # PC+MN vs PC stays roughly symmetric
    assert abs(hists[("PC+MN/PC", 1000.0)].median()) <= 2.0
    benchmark.extra_info["medians"] = {
        f"{pair}@{s:g}": float(hists[(pair, s)].median()) for (pair, s) in hists
    }
