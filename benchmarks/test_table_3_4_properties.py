"""Table 3.4 (properties) — D, RDF residuals, P, U for each optimized model
vs published TIP4P vs experiment.

Paper shapes at the converged parameters:
* internal energy within ~0.5 kJ/mol of the experimental -41.5 kJ/mol
  (TIP4P gives -41.8);
* pressure well below TIP4P's ~373 atm but still far from the 1 atm target
  (pressure is weakly weighted and noisy);
* diffusion between the experimental 2.27e-5 and TIP4P's 3.29e-5 cm^2/s;
* gOO residual at least as good as published TIP4P's.
"""

from benchmarks.conftest import bench_seeds
from repro.analysis import format_table
from repro.water import TIP4P_PUBLISHED, WaterSurrogate, parameterize_water
from repro.water.experiment import EXPERIMENTAL_TARGETS

ALGS = ("MN", "PC", "PC+MN")
PROPS = ("diffusion", "p_ghh", "p_goh", "p_goo", "pressure", "energy")


def run_models(seed: int):
    surrogate = WaterSurrogate()
    models = {}
    for alg in ALGS:
        result = parameterize_water(
            algorithm=alg, seed=seed, walltime=3e5, max_steps=300, tau=1e-3
        )
        models[alg] = surrogate.properties(result.best_theta)
    models["TIP4P"] = surrogate.properties(TIP4P_PUBLISHED)
    return models


def test_table_3_4_property_values(benchmark, artifact):
    models = benchmark.pedantic(
        run_models, args=(bench_seeds(3),), rounds=1, iterations=1
    )
    exp = {name: spec["target"] for name, spec in EXPERIMENTAL_TARGETS.items()}
    rows = []
    for prop in PROPS:
        row = [prop]
        for alg in (*ALGS, "TIP4P"):
            value = models[alg].get(prop)
            row.append(f"{value:.4g}" if value is not None else "-")
        row.append(f"{exp[prop]:.4g}")
        rows.append(row)
    artifact(
        "table_3_4_properties",
        format_table(
            ["property", *ALGS, "TIP4P", "EXP"],
            rows,
            title="Table 3.4 (properties): values per optimized model vs TIP4P vs experiment",
        ),
    )
    for alg in ALGS:
        p = models[alg]
        # energy within ~0.6 kJ/mol of experiment (paper: -41.69..-41.80)
        assert abs(p["energy"] - exp["energy"]) < 0.6, (alg, p["energy"])
        # pressure improved vs TIP4P magnitude but not at 1 atm
        assert abs(p["pressure"]) < abs(models["TIP4P"]["pressure"]) + 50.0
        # diffusion between experiment and TIP4P (loose band)
        assert 1.5e-5 < p["diffusion"] < 3.6e-5, (alg, p["diffusion"])
        # gOO fit at least as good as TIP4P (Fig 3.19 claim)
        assert p["p_goo"] <= models["TIP4P"]["p_goo"] * 1.1, (alg, p["p_goo"])
    benchmark.extra_info["models"] = {
        alg: {k: float(v) for k, v in props.items()} for alg, props in models.items()
    }
