"""Claim+append throughput microbenchmark across store engines.

Simulates the hot path of a lease-coordinated campaign runner — claim a
batch of job ids, then append one result record per claimed job — for
each store engine (single-file JSONL, sharded JSONL, SQLite, and the
``store://`` network engine over a real localhost socket) at
campaign-realistic volume (10k jobs by default), and reports jobs/s.

This is the number the ROADMAP's scaling work steers by: it is what
bounds how fast a fleet of runners can drain a grid, independent of how
expensive the jobs themselves are.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py
    PYTHONPATH=src python benchmarks/bench_store.py --jobs 10000 \\
        --json BENCH_store.json
    PYTHONPATH=src python benchmarks/bench_store.py \\
        --check benchmarks/baselines/bench_store.json --tolerance 0.30

``--json`` writes the measurements for the CI artifact; ``--check``
compares the SQLite engine's claim+append throughput against a committed
baseline and exits non-zero when it regressed by more than
``--tolerance`` (the CI bench-regression gate).  When the run measures
both ``sqlite`` and ``netstore``, ``--check`` also enforces the network
engine's *relative* budget: one framed round trip per batch must keep
it within ``--netstore-factor`` (default 2x) of the same-run local
SQLite throughput — a ratio, so machine speed cancels out.  Other
engines are reported for context but not gated — their absolute numbers
swing more with filesystem behaviour than with code changes.

``--telemetry`` attaches an *enabled* metrics registry to every store
(what a ``--telemetry`` campaign run does), so the loop also pays for
the latency histograms.  ``--overhead-gate FRACTION`` measures both
modes interleaved (best of ``--rounds`` each) on the gated engine and
fails when enabling telemetry costs more than ``FRACTION`` of the
disabled throughput — the CI guard keeping instrumentation
cheap-by-default::

    PYTHONPATH=src python benchmarks/bench_store.py --overhead-gate 0.05
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import open_store  # noqa: E402 - path bootstrap above
from repro.telemetry import Telemetry  # noqa: E402

#: The engine whose throughput the regression gate checks.
GATED_ENGINE = "sqlite"


def make_store(engine: str, directory: Path, shards: int):
    """A fresh store of ``engine`` rooted at ``directory``.

    Resolved through :func:`repro.campaign.open_store` — the same
    production path campaigns use — so the benchmark measures exactly
    what a runner would touch.
    """
    if engine == "jsonl":
        return open_store(directory)
    if engine == "sharded":
        return open_store(directory, shards=shards)
    if engine == "sqlite":
        return open_store(directory, engine="sqlite")
    if engine == "netstore":
        # A real localhost socket in front of the gated engine: what the
        # measurement prices is exactly the wire protocol's overhead.
        from repro.campaign.backends import NetworkStoreBackend, StoreServer

        backing = open_store(directory / "served", engine="sqlite")
        server = StoreServer(backing)
        server.start()
        store = NetworkStoreBackend(server.address)
        store._bench_cleanup = lambda: (server.close(), backing.close())
        return store
    raise ValueError(f"unknown engine {engine!r}")


def synthetic_record(job_id: str) -> dict:
    """A store record shaped like a real campaign outcome."""
    return {
        "job_id": job_id,
        "status": "done",
        "job": {"label": "PC", "algorithm": "PC", "function": "sphere",
                "dim": 4, "sigma0": 1.0, "seed": 0},
        "result": {"best_estimate": 1e-6, "n_steps": 120, "reason": "tolerance"},
        "error": None,
        "elapsed_s": 0.01,
    }


def bench_engine(engine: str, n_jobs: int, batch: int, shards: int,
                 telemetry: bool = False) -> dict:
    """Time the claim+append loop for one engine; returns the measurement.

    With ``telemetry`` an enabled registry is attached to the store, so
    every claim and append also feeds the ``repro_store_op_seconds``
    histogram — the instrumented configuration the overhead gate prices.
    """
    job_ids = [f"job-{i:08d}" for i in range(n_jobs)]
    with tempfile.TemporaryDirectory(prefix=f"bench-store-{engine}-") as tmp:
        store = make_store(engine, Path(tmp), shards)
        if telemetry:
            store.telemetry = Telemetry.create()
        n_claimed = 0
        t0 = time.perf_counter()
        for start in range(0, n_jobs, batch):
            ids = job_ids[start:start + batch]
            granted = store.claim(ids, "bench-runner", ttl=3600.0)
            # one record_many per batch, exactly like CampaignRunner
            store.record_many([synthetic_record(jid) for jid in granted])
            n_claimed += len(granted)
        elapsed = time.perf_counter() - t0
        assert n_claimed == n_jobs, (n_claimed, n_jobs)
        assert len(store.completed_ids()) == n_jobs
        cleanup = getattr(store, "_bench_cleanup", None)
        if cleanup is not None:
            store.close()
            cleanup()
    return {
        "engine": engine,
        "n_jobs": n_jobs,
        "batch": batch,
        "telemetry": bool(telemetry),
        "elapsed_s": elapsed,
        "claim_append_jobs_per_s": n_jobs / elapsed,
    }


def overhead_gate(args) -> int:
    """Price enabled telemetry on the gated engine; 0 = within budget.

    Each round runs the disabled and enabled configurations back to
    back and compares them *within* the round, so slow-disk or noisy-
    neighbour drift cancels out of the ratio; the gate passes if the
    best round kept at least ``1 - gate`` of its own disabled
    throughput.  (Independent best-ofs would let one lucky disabled
    round fail a genuinely-cheap instrumented path.)
    """
    rounds = []
    for _ in range(args.rounds):
        off = bench_engine(GATED_ENGINE, args.jobs, args.batch, args.shards,
                           telemetry=False)["claim_append_jobs_per_s"]
        on = bench_engine(GATED_ENGINE, args.jobs, args.batch, args.shards,
                          telemetry=True)["claim_append_jobs_per_s"]
        rounds.append((off, on))
    off, on = max(rounds, key=lambda pair: pair[1] / pair[0])
    overhead = 1.0 - on / off
    verdict = "ok" if overhead <= args.overhead_gate else "TOO SLOW"
    print(
        f"telemetry-overhead [{GATED_ENGINE}]: off {off:,.0f} jobs/s, "
        f"on {on:,.0f} jobs/s -> {overhead:+.1%} overhead in the best of "
        f"{args.rounds} paired rounds (budget {args.overhead_gate:.0%}) "
        f"-> {verdict}"
    )
    return 0 if verdict == "ok" else 1


def check_regression(results: dict, baseline_path: Path, tolerance: float) -> int:
    """Compare the gated engine against the baseline; 0 = pass, 1 = fail."""
    baseline = json.loads(baseline_path.read_text())
    base = baseline["engines"][GATED_ENGINE]["claim_append_jobs_per_s"]
    current = results["engines"][GATED_ENGINE]["claim_append_jobs_per_s"]
    floor = base * (1.0 - tolerance)
    verdict = "ok" if current >= floor else "REGRESSION"
    print(
        f"bench-regression [{GATED_ENGINE}]: {current:,.0f} jobs/s vs "
        f"baseline {base:,.0f} (floor {floor:,.0f} at "
        f"{tolerance:.0%} tolerance) -> {verdict}"
    )
    return 0 if current >= floor else 1


def check_netstore_factor(results: dict, factor: float) -> int:
    """Gate the network engine relative to same-run local SQLite.

    A ratio within one run, not an absolute baseline: the two engines
    share the machine, the backing database, and the batch size, so
    what's left is the cost of one framed round trip per batch.  0 =
    pass (or nothing to compare), 1 = the wire costs too much.
    """
    engines = results["engines"]
    if "netstore" not in engines or GATED_ENGINE not in engines:
        return 0
    net = engines["netstore"]["claim_append_jobs_per_s"]
    local = engines[GATED_ENGINE]["claim_append_jobs_per_s"]
    floor = local / factor
    verdict = "ok" if net >= floor else "TOO SLOW"
    print(
        f"netstore-factor: {net:,.0f} jobs/s vs local {GATED_ENGINE} "
        f"{local:,.0f} (floor {floor:,.0f} at {factor:g}x budget) "
        f"-> {verdict}"
    )
    return 0 if net >= floor else 1


def main(argv=None) -> int:
    """Run the benchmark; see the module docstring for the modes."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=10_000,
                        help="jobs per engine (default 10000)")
    parser.add_argument("--batch", type=int, default=100,
                        help="claim/append batch size (default 100)")
    parser.add_argument("--shards", type=int, default=8,
                        help="shard count for the sharded engine (default 8)")
    parser.add_argument("--engines", nargs="+",
                        default=["jsonl", "sharded", "sqlite", "netstore"],
                        choices=["jsonl", "sharded", "sqlite", "netstore"])
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the measurements as JSON")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="baseline JSON to gate the sqlite engine against")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional throughput drop (default 0.30)")
    parser.add_argument("--netstore-factor", type=float, default=2.0,
                        metavar="FACTOR",
                        help="with --check, require the netstore engine to "
                             "stay within FACTOR x of same-run local sqlite "
                             "(default 2.0)")
    parser.add_argument("--telemetry", action="store_true",
                        help="attach an enabled metrics registry to every "
                             "store (the instrumented configuration)")
    parser.add_argument("--overhead-gate", type=float, default=None,
                        metavar="FRACTION",
                        help="measure telemetry on vs off interleaved on the "
                             "gated engine; fail if enabling costs more than "
                             "FRACTION of throughput (e.g. 0.05)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved rounds for --overhead-gate "
                             "(default 3, best-of)")
    args = parser.parse_args(argv)

    if args.overhead_gate is not None:
        return overhead_gate(args)

    results = {"n_jobs": args.jobs, "batch": args.batch,
               "telemetry": args.telemetry, "engines": {}}
    mode = " (telemetry on)" if args.telemetry else ""
    print(f"claim+append throughput, {args.jobs} jobs, "
          f"batches of {args.batch}{mode}:")
    for engine in args.engines:
        measurement = bench_engine(engine, args.jobs, args.batch, args.shards,
                                   telemetry=args.telemetry)
        results["engines"][engine] = measurement
        label = f"{engine} ({args.shards} shards)" if engine == "sharded" else engine
        print(
            f"  {label:<20} {measurement['claim_append_jobs_per_s']:>12,.0f} jobs/s"
            f"  ({measurement['elapsed_s']:.2f}s)"
        )

    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.check:
        if GATED_ENGINE not in results["engines"]:
            print(f"--check requires the {GATED_ENGINE} engine to be benchmarked",
                  file=sys.stderr)
            return 2
        rc = check_regression(results, Path(args.check), args.tolerance)
        return rc or check_netstore_factor(results, args.netstore_factor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
