"""Figs. 3.8-3.17 — PC condition-subset ablations at sigma0 = 1000.

Which of the seven comparison sites carry error bars is the ablation axis:

* Fig 3.8   c1 vs c6            — the choice of single site matters; c1
                                  (reflection entry) beats c6 (contraction).
* Figs 3.9-3.15  each ci vs strict c1-7 — the paper finds any single
                                  condition better than all together ("c1-7
                                  ... include some harmful comparisons").
* Fig 3.16  c1 vs c136; Fig 3.17 c136 vs c1-7.

Reproduction note (see EXPERIMENTS.md): the single-vs-strict *direction*
depends on the termination protocol.  Under this harness's scaled-down
budget (step cap 600, walltime 3e4) the single-condition variants are still
mid-descent when cut off, so they measure near-parity with strict rather
than the paper's clear win; removing the cap restores their advantage but
costs tens of minutes per panel.  The assertions below pin the robust
claims: c1 beats c6, and no variant differs from strict by more than an
order of magnitude at this budget.
"""

import numpy as np

from benchmarks._harness import paired_minima
from benchmarks.conftest import bench_seeds
from repro.analysis import format_histogram, ratio_histogram
from repro.core import ConditionSet


def _pc_opts(conds: ConditionSet) -> dict:
    return {"k": 1.0, "conditions": conds}


def run_panels(n_seeds: int):
    common = dict(function="rosenbrock", dim=4, sigma0=1000.0, n_seeds=n_seeds)
    panels = {}
    # Fig 3.8: c1 vs c6
    panels["c1_vs_c6"] = paired_minima(
        "PC", "PC",
        options_a=_pc_opts(ConditionSet.only(1)),
        options_b=_pc_opts(ConditionSet.only(6)),
        **common,
    )
    # Figs 3.9-3.15: each single condition vs strict c1-7
    strict = _pc_opts(ConditionSet.all())
    for site in range(1, 8):
        panels[f"c{site}_vs_c1-7"] = paired_minima(
            "PC", "PC",
            options_a=_pc_opts(ConditionSet.only(site)),
            options_b=strict,
            **common,
        )
    # Fig 3.16: c1 vs c136; Fig 3.17: c136 vs c1-7
    panels["c1_vs_c136"] = paired_minima(
        "PC", "PC",
        options_a=_pc_opts(ConditionSet.only(1)),
        options_b=_pc_opts(ConditionSet.of(1, 3, 6)),
        **common,
    )
    panels["c136_vs_c1-7"] = paired_minima(
        "PC", "PC",
        options_a=_pc_opts(ConditionSet.of(1, 3, 6)),
        options_b=strict,
        **common,
    )
    return panels


def test_figs_3_8_17_condition_subsets(benchmark, artifact):
    n_seeds = bench_seeds(8)
    panels = benchmark.pedantic(run_panels, args=(n_seeds,), rounds=1, iterations=1)
    blocks = []
    medians = {}
    for name, (mins_a, mins_b) in panels.items():
        h = ratio_histogram(mins_a, mins_b, lo=-10.0, hi=4.0, nbins=14)
        medians[name] = h.median()
        blocks.append(
            format_histogram(h, title=f"Figs 3.8-3.17 panel {name} (log10 ratio)")
        )
    artifact("figs_3_8_17_conditions", "\n\n".join(blocks))

    # Fig 3.8 shape: c1 no worse than c6 (the paper's strongest ordering)
    assert medians["c1_vs_c6"] <= 0.25, medians
    # Figs 3.9-3.15 at this budget: every single-condition variant stays
    # within an order of magnitude of strict (paper: they win outright under
    # uncapped budgets — see module docstring / EXPERIMENTS.md)
    single_medians = [medians[f"c{s}_vs_c1-7"] for s in range(1, 8)]
    assert all(abs(m) <= 1.0 for m in single_medians), single_medians
    # Figs 3.16/3.17: combinations likewise comparable
    assert abs(medians["c1_vs_c136"]) <= 1.0, medians
    assert abs(medians["c136_vs_c1-7"]) <= 1.0, medians
    benchmark.extra_info["medians"] = {k: float(v) for k, v in medians.items()}
