"""Shared experiment runners for the benchmark suite.

The controlled-noise protocol follows §3.2/§3.3: draw a random initial
simplex, wrap the test function with ``resample``-mode Gaussian noise of
inherent scale ``sigma0`` (the paper's "artificial Gaussian noise ... with a
variance inversely proportional to the duration for which the vertex had
been active"), run an algorithm under tolerance + walltime + step-cap
termination, and score (N, R, D) against the known optimum.  Noise streams
are decoupled from the initial-state stream so paired comparisons share
initial simplexes, as in the figures.

Both helpers are thin wrappers over :mod:`repro.campaign`: a single run is
one :class:`~repro.campaign.Job` through
:func:`~repro.campaign.execute_job`, and a paired sweep is a two-variant
:class:`~repro.campaign.CampaignSpec` executed by a
:class:`~repro.campaign.CampaignRunner` into an in-memory store.  The
campaign execution layer preserves this protocol's seed discipline exactly,
so results are bitwise identical to the pre-campaign harness.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.campaign import (
    AlgorithmVariant,
    CampaignRunner,
    CampaignSpec,
    Job,
    ResultStore,
    execute_job,
    paired_minima_from_records,
)
from repro.core.state import OptimizationResult
from repro.functions import get_function
from repro.functions.suite import TestFunction

#: Default sweep termination (scaled down from the paper's multi-day runs).
WALLTIME = 3e4
MAX_STEPS = 600
TAU = 1e-3


def controlled_run(
    algorithm: str,
    function: str = "rosenbrock",
    dim: int = 4,
    sigma0: float = 1000.0,
    seed: int = 0,
    low: float = -5.0,
    high: float = 5.0,
    walltime: float = WALLTIME,
    max_steps: int = MAX_STEPS,
    tau: float = TAU,
    noise_mode: str = "resample",
    record_trace: bool = False,
    **options,
) -> Tuple[OptimizationResult, TestFunction]:
    """One §3.2-protocol run; returns (result, test function)."""
    job = Job(
        campaign="adhoc",
        label=algorithm.upper(),
        algorithm=algorithm.upper(),
        function=function,
        dim=dim,
        sigma0=sigma0,
        seed=seed,
        noise_mode=noise_mode,
        tau=tau,
        walltime=walltime,
        max_steps=max_steps,
        low=low,
        high=high,
        options=dict(options),
    )
    return execute_job(job, record_trace=record_trace), get_function(function, dim)


def paired_minima(
    algo_a: str,
    algo_b: str,
    options_a: Optional[Dict] = None,
    options_b: Optional[Dict] = None,
    n_seeds: int = 16,
    function: str = "rosenbrock",
    dim: int = 4,
    sigma0: float = 1000.0,
    low: float = -5.0,
    high: float = 5.0,
    walltime: float = WALLTIME,
    max_steps: int = MAX_STEPS,
    tau: float = TAU,
    noise_mode: str = "resample",
    backend: str = "serial",
) -> Tuple[np.ndarray, np.ndarray]:
    """Converged true minima of two algorithms from the same initial states.

    Runs a two-variant campaign (labels ``"A"``/``"B"`` so identical
    algorithm names with different options — the Fig. 3.7/3.8-17 ablations —
    stay distinct cells) over seeds ``0..n_seeds-1``.
    """
    spec = CampaignSpec(
        name=f"paired-{algo_a}-{algo_b}",
        algorithms=[
            AlgorithmVariant(algo_a, dict(options_a or {}), label="A"),
            AlgorithmVariant(algo_b, dict(options_b or {}), label="B"),
        ],
        functions=[function],
        dims=[dim],
        sigma0s=[sigma0],
        seeds=list(range(n_seeds)),
        noise_mode=noise_mode,
        tau=tau,
        walltime=walltime,
        max_steps=max_steps,
        low=low,
        high=high,
    )
    store = ResultStore()
    CampaignRunner(spec, store, backend=backend).run()
    return paired_minima_from_records(store.completed(), "A", "B")
