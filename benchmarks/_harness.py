"""Shared experiment runners for the benchmark suite.

The controlled-noise protocol follows §3.2/§3.3: draw a random initial
simplex, wrap the test function with ``resample``-mode Gaussian noise of
inherent scale ``sigma0`` (the paper's "artificial Gaussian noise ... with a
variance inversely proportional to the duration for which the vertex had
been active"), run an algorithm under tolerance + walltime + step-cap
termination, and score (N, R, D) against the known optimum.  Noise streams
are decoupled from the initial-state stream so paired comparisons share
initial simplexes, as in the figures.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core import ALGORITHMS, default_termination
from repro.core.state import OptimizationResult
from repro.functions import get_function, random_vertices
from repro.functions.suite import TestFunction
from repro.noise import StochasticFunction

#: Default sweep termination (scaled down from the paper's multi-day runs).
WALLTIME = 3e4
MAX_STEPS = 600
TAU = 1e-3


def controlled_run(
    algorithm: str,
    function: str = "rosenbrock",
    dim: int = 4,
    sigma0: float = 1000.0,
    seed: int = 0,
    low: float = -5.0,
    high: float = 5.0,
    walltime: float = WALLTIME,
    max_steps: int = MAX_STEPS,
    tau: float = TAU,
    noise_mode: str = "resample",
    record_trace: bool = False,
    **options,
) -> Tuple[OptimizationResult, TestFunction]:
    """One §3.2-protocol run; returns (result, test function)."""
    f = get_function(function, dim)
    init_rng = np.random.default_rng(seed)
    vertices = random_vertices(dim, low=low, high=high, rng=init_rng)
    noise_rng = np.random.default_rng(seed + 1_000_003)
    func = StochasticFunction(f, sigma0=sigma0, mode=noise_mode, rng=noise_rng)
    termination = default_termination(tau=tau, walltime=walltime, max_steps=max_steps)
    opt = ALGORITHMS[algorithm.upper()](
        func, vertices, termination=termination, record_trace=record_trace, **options
    )
    return opt.run(), f


def paired_minima(
    algo_a: str,
    algo_b: str,
    options_a: Optional[Dict] = None,
    options_b: Optional[Dict] = None,
    n_seeds: int = 16,
    **common,
) -> Tuple[np.ndarray, np.ndarray]:
    """Converged true minima of two algorithms from the same initial states."""
    mins_a = []
    mins_b = []
    for seed in range(n_seeds):
        ra, _ = controlled_run(algo_a, seed=seed, **(options_a or {}), **common)
        rb, _ = controlled_run(algo_b, seed=seed, **(options_b or {}), **common)
        mins_a.append(max(ra.best_true, 0.0))
        mins_b.append(max(rb.best_true, 0.0))
    return np.array(mins_a), np.array(mins_b)
