"""Fig. 3.7 — PC with k=1 vs k=2 confidence widths, sigma0 = 1000.

Paper shape: "no substantial change in the performance was observed" —
the distribution of log(min k1 / min k2) is centred near zero.
"""

from benchmarks._harness import paired_minima
from benchmarks.conftest import bench_seeds
from repro.analysis import format_histogram, ratio_histogram


def run_pair(n_seeds: int):
    return paired_minima(
        "PC",
        "PC",
        options_a={"k": 1.0},
        options_b={"k": 2.0},
        function="rosenbrock",
        dim=4,
        sigma0=1000.0,
        n_seeds=n_seeds,
    )


def test_fig_3_7_pc_confidence_width(benchmark, artifact):
    n_seeds = bench_seeds(16)
    mins_k1, mins_k2 = benchmark.pedantic(
        run_pair, args=(n_seeds,), rounds=1, iterations=1
    )
    h = ratio_histogram(mins_k1, mins_k2, lo=-10.0, hi=6.0, nbins=16)
    artifact(
        "fig_3_7_pc_k1_vs_k2",
        format_histogram(
            h, title="Fig 3.7: PC log10(min k=1 / min k=2), sigma0=1000, Rosenbrock 4-d"
        ),
    )
    # centred near zero: median within ~1.5 decades, majority near ties
    assert abs(h.median()) <= 1.5, h.median()
    assert h.fraction_tied_or_below(tie_width=2.0) >= 0.5
    benchmark.extra_info["median"] = float(h.median())
