"""Integration tests: telemetry threaded through real campaign runs.

Everything here drives actual :class:`~repro.campaign.runner.Campaign`
runs (small sphere grids) and asserts on the artifacts the observability
layer promises: a schema-valid ``telemetry.jsonl``, metrics snapshots
covering runner + store (+ mw) series, span ids that correlate store
records with trace events, and the ``campaign metrics`` CLI on top.
"""

import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    CampaignSpec,
    workers_from_trace,
)
from repro.cli import main as cli_main
from repro.telemetry import (
    TELEMETRY_FILENAME,
    Telemetry,
    last_event,
    merge_snapshots,
    read_trace,
    validate_trace,
)


def tiny_spec(n_seeds=2, **overrides) -> CampaignSpec:
    kwargs = dict(
        name="tele",
        algorithms=["DET", "PC"],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=list(range(n_seeds)),
        tau=1e-3,
        walltime=1e3,
        max_steps=20,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def metric_names(snapshot) -> set:
    return {
        entry["name"]
        for kind in ("counters", "gauges", "histograms")
        for entry in snapshot[kind]
    }


class TestRunTrace:
    def test_serial_run_produces_valid_trace(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        campaign = Campaign(tmp_path, spec=tiny_spec())
        report = campaign.run()
        assert report.n_done == 4
        path = tmp_path / TELEMETRY_FILENAME
        events = validate_trace(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds.count("job") == 4
        assert "run_end" in kinds and "metrics" in kinds
        run_start = events[0]
        assert run_start["campaign"] == "tele"
        assert run_start["backend"] == "serial" and run_start["n_total"] == 4

    def test_trace_spans_correlate_with_store_records(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        campaign = Campaign(tmp_path, spec=tiny_spec())
        campaign.run()
        records = {
            r["job_id"]: r
            for r in campaign.store.records()
            if r["status"] == "done"
        }
        events = list(read_trace(tmp_path / TELEMETRY_FILENAME))
        run_id = events[0]["run_id"]
        job_events = {e["job_id"]: e for e in events if e["event"] == "job"}
        assert set(job_events) == set(records)
        for job_id, record in records.items():
            assert record["run_id"] == run_id
            assert job_events[job_id]["span_id"] == record["span_id"]

    def test_disabled_by_default_leaves_no_trace(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        campaign = Campaign(tmp_path, spec=tiny_spec())
        campaign.run()
        assert not (tmp_path / TELEMETRY_FILENAME).exists()

    def test_resumed_campaign_appends_a_second_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        campaign = Campaign(tmp_path, spec=tiny_spec())
        campaign.run(max_jobs=2)
        Campaign(tmp_path).run()
        events = validate_trace(tmp_path / TELEMETRY_FILENAME)
        starts = [e for e in events if e["event"] == "run_start"]
        assert len(starts) == 2
        assert len({e["run_id"] for e in starts}) == 2


class TestMetricsCoverage:
    def test_runner_metrics_cover_the_catalogue(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        campaign = Campaign(tmp_path, spec=tiny_spec())
        campaign.run()
        snap = last_event(tmp_path / TELEMETRY_FILENAME, "metrics")["metrics"]
        assert {
            "repro_runner_passes_total",
            "repro_runner_jobs_total",
            "repro_job_seconds",
            "repro_span_seconds",
            "repro_store_op_seconds",
        } <= metric_names(snap)
        jobs_total = [
            c for c in snap["counters"]
            if c["name"] == "repro_runner_jobs_total"
        ]
        assert sum(c["value"] for c in jobs_total) == 4

    def test_store_latency_labelled_by_engine(self, store_backend):
        # the store_backend fixture turns $REPRO_TELEMETRY on
        telemetry = Telemetry.create()
        runner = CampaignRunner(tiny_spec(), store_backend(),
                                telemetry=telemetry)
        runner.run()
        engine = {"jsonl": "jsonl", "sharded": "sharded",
                  "sqlite": "sqlite", "netstore": "netstore"}[store_backend.engine]
        hists = {
            (h["labels"].get("op"), h["labels"].get("engine"))
            for h in telemetry.registry.snapshot()["histograms"]
            if h["name"] == "repro_store_op_seconds"
        }
        assert ("append", engine) in hists
        assert ("claim", engine) in hists


class TestMwWorkers:
    def test_mw_run_reports_worker_utilization(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        campaign = Campaign(tmp_path, spec=tiny_spec(n_seeds=4))
        report = campaign.run(backend="mw", max_workers=2,
                              mw_transport="threaded")
        assert report.n_done == 8
        event = last_event(tmp_path / TELEMETRY_FILENAME, "workers")
        assert event is not None
        rows = workers_from_trace(tmp_path)
        assert [w.rank for w in rows] == [1, 2]
        assert sum(w.tasks for w in rows) == 8
        assert all(w.busy_s >= 0 and 0 <= w.utilization for w in rows)
        snap = last_event(tmp_path / TELEMETRY_FILENAME, "metrics")["metrics"]
        assert {
            "repro_mw_tasks_dispatched_total",
            "repro_mw_replies_total",
        } <= metric_names(snap)

    def test_watch_cells_carries_worker_rows(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        campaign = Campaign(tmp_path, spec=tiny_spec(n_seeds=4))
        campaign.run(backend="mw", max_workers=2, mw_transport="threaded")
        from repro.campaign import watch_campaign

        snap = next(watch_campaign(Campaign(tmp_path), max_ticks=1))
        assert len(snap.workers) == 2
        assert snap.to_dict()["workers"][0]["rank"] == 1


class TestMetricsCli:
    def run_cli(self, *argv):
        return cli_main([str(a) for a in argv])

    def test_prometheus_exposition(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        Campaign(tmp_path, spec=tiny_spec()).run()
        assert self.run_cli("campaign", "metrics", tmp_path) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_runner_jobs_total counter" in out
        assert "# TYPE repro_store_op_seconds histogram" in out
        assert 'repro_store_op_seconds_bucket{engine="jsonl",le="+Inf",op="append"}' in out

    def test_json_snapshot_merges_runs(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        Campaign(tmp_path, spec=tiny_spec()).run(max_jobs=2)
        Campaign(tmp_path).run()
        assert self.run_cli("campaign", "metrics", tmp_path, "--json") == 0
        snap = json.loads(capsys.readouterr().out)
        merged_jobs = sum(
            c["value"] for c in snap["counters"]
            if c["name"] == "repro_runner_jobs_total"
        )
        assert merged_jobs == 4  # 2 from each run, summed across snapshots
        # the merged snapshot renders — same path `campaign metrics` prints
        assert merge_snapshots([snap])["counters"]

    def test_errors_without_a_trace(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        Campaign(tmp_path, spec=tiny_spec()).run()
        assert self.run_cli("campaign", "metrics", tmp_path) == 2
        assert "telemetry" in capsys.readouterr().err

    def test_errors_without_snapshots(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        campaign = Campaign(tmp_path, spec=tiny_spec())
        telemetry = Telemetry.create(tmp_path)
        telemetry.event("run_start", campaign="tele", backend="serial",
                        n_total=4)
        telemetry.close()
        assert self.run_cli("campaign", "metrics", tmp_path) == 2
        assert "no metrics snapshots" in capsys.readouterr().err

    def test_run_flag_enables_telemetry(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps(tiny_spec().to_dict()))
        directory = tmp_path / "camp"
        assert self.run_cli("campaign", "run", directory, "--spec", spec_path,
                            "--telemetry") == 0
        assert (directory / TELEMETRY_FILENAME).exists()
        validate_trace(directory / TELEMETRY_FILENAME)
