"""Unit and property tests for VertexEvaluation merge math."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise import VertexEvaluation


class TestBasics:
    def test_initial_state(self):
        ev = VertexEvaluation([1.0, 2.0], sigma0=1.0)
        assert ev.time == 0.0
        assert not ev.started
        assert math.isnan(ev.estimate)
        assert ev.sem == math.inf

    def test_theta_is_copied_and_readonly(self):
        src = np.array([1.0, 2.0])
        ev = VertexEvaluation(src, sigma0=1.0)
        src[0] = 99.0
        assert ev.theta[0] == 1.0
        with pytest.raises(ValueError):
            ev.theta[0] = 5.0

    def test_single_block_sets_estimate(self):
        ev = VertexEvaluation([0.0], sigma0=2.0)
        ev.merge_block(4.0, 10.0)
        assert ev.estimate == 10.0
        assert ev.time == 4.0
        assert ev.sem == pytest.approx(1.0)  # 2/sqrt(4)

    def test_merge_is_time_weighted(self):
        ev = VertexEvaluation([0.0], sigma0=1.0)
        ev.merge_block(1.0, 0.0)
        ev.merge_block(3.0, 4.0)
        assert ev.estimate == pytest.approx(3.0)  # (1*0 + 3*4)/4
        assert ev.time == pytest.approx(4.0)

    def test_replace_overwrites(self):
        ev = VertexEvaluation([0.0], sigma0=1.0)
        ev.merge_block(1.0, 5.0)
        ev.replace(10.0, -2.0)
        assert ev.estimate == -2.0
        assert ev.time == 10.0

    def test_invalid_blocks_rejected(self):
        ev = VertexEvaluation([0.0], sigma0=1.0)
        with pytest.raises(ValueError):
            ev.merge_block(0.0, 1.0)
        with pytest.raises(ValueError):
            ev.merge_block(-1.0, 1.0)
        with pytest.raises(ValueError):
            ev.merge_block(1.0, math.nan)
        with pytest.raises(ValueError):
            ev.replace(0.0, 1.0)

    def test_negative_sigma0_rejected(self):
        with pytest.raises(ValueError):
            VertexEvaluation([0.0], sigma0=-1.0)


class TestMergeMath:
    @given(
        blocks=st.lists(
            st.tuples(st.floats(0.1, 100.0), st.floats(-1e3, 1e3)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60)
    def test_estimate_is_weighted_mean(self, blocks):
        ev = VertexEvaluation([0.0], sigma0=1.0)
        for dt, s in blocks:
            ev.merge_block(dt, s)
        total = sum(dt for dt, _ in blocks)
        expected = sum(dt * s for dt, s in blocks) / total
        assert ev.time == pytest.approx(total)
        assert ev.estimate == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @given(
        dt1=st.floats(0.1, 50.0),
        dt2=st.floats(0.1, 50.0),
        s1=st.floats(-10, 10),
        s2=st.floats(-10, 10),
    )
    @settings(max_examples=60)
    def test_merge_order_independent_for_two_blocks(self, dt1, dt2, s1, s2):
        a = VertexEvaluation([0.0], sigma0=1.0)
        a.merge_block(dt1, s1)
        a.merge_block(dt2, s2)
        b = VertexEvaluation([0.0], sigma0=1.0)
        b.merge_block(dt2, s2)
        b.merge_block(dt1, s1)
        assert a.estimate == pytest.approx(b.estimate, rel=1e-9, abs=1e-12)

    def test_sem_decreases_with_sampling(self):
        ev = VertexEvaluation([0.0], sigma0=1.0)
        ev.merge_block(1.0, 0.0)
        sems = [ev.sem]
        for _ in range(5):
            ev.merge_block(2.0, 0.0)
            sems.append(ev.sem)
        assert all(b < a for a, b in zip(sems, sems[1:]))

    def test_known_sigma0_used_directly(self):
        ev = VertexEvaluation([0.0], sigma0=3.0)
        ev.merge_block(9.0, 1.0)
        assert ev.sem == pytest.approx(1.0)
        assert ev.variance == pytest.approx(1.0)


class TestSigmaEstimation:
    def test_guess_used_before_two_blocks(self):
        ev = VertexEvaluation([0.0], sigma0=None, sigma0_guess=4.0)
        assert ev.sigma0_estimate() == 4.0
        ev.merge_block(1.0, 0.0)
        assert ev.sigma0_estimate() == 4.0

    def test_estimator_is_consistent(self):
        """The block-scatter estimator converges to the true sigma0."""
        rng = np.random.default_rng(3)
        sigma0 = 2.5
        f = 7.0
        ev = VertexEvaluation([0.0], sigma0=None, sigma0_guess=1.0)
        for _ in range(4000):
            dt = rng.uniform(0.5, 2.0)
            ev.merge_block(dt, f + rng.normal(0, sigma0 / math.sqrt(dt)))
        assert ev.sigma0_estimate() == pytest.approx(sigma0, rel=0.05)
        assert ev.estimate == pytest.approx(f, abs=0.15)

    def test_zero_scatter_gives_zero_sigma(self):
        ev = VertexEvaluation([0.0], sigma0=None, sigma0_guess=1.0)
        ev.merge_block(1.0, 5.0)
        ev.merge_block(1.0, 5.0)
        assert ev.sigma0_estimate() == pytest.approx(0.0, abs=1e-6)
