"""Unit tests for the :mod:`repro.campaign.progress` helpers.

The watch loop and heartbeat share these primitives; the suite pins the
formatting edge cases (negative, NaN, day-scale durations), the JSON
snapshot shape, the stable per-cell ordering, and the first-tick rate
seeding / worker-utilization plumbing added with the telemetry layer.
"""

import json
import math
import os

from repro.campaign.progress import (
    CellProgress,
    ProgressSnapshot,
    WorkerUtilization,
    cells_from_status,
    format_duration,
    seed_rate,
    watch_campaign,
    workers_from_trace,
)
from repro.telemetry import TELEMETRY_FILENAME, TraceWriter


class TestFormatDuration:
    def test_none_is_unknown(self):
        assert format_duration(None) == "?"

    def test_negative_is_unknown(self):
        assert format_duration(-1.0) == "?"
        assert format_duration(-0.4) == "?"

    def test_nan_is_unknown(self):
        assert format_duration(float("nan")) == "?"

    def test_seconds(self):
        assert format_duration(0) == "0s"
        assert format_duration(42.4) == "42s"

    def test_rounds_up_across_the_minute_boundary(self):
        assert format_duration(59.6) == "1m00s"

    def test_minutes(self):
        assert format_duration(192) == "3m12s"

    def test_hours(self):
        assert format_duration(2 * 3600 + 5 * 60) == "2h05m"

    def test_beyond_24h_stays_in_hours(self):
        assert format_duration(25 * 3600) == "25h00m"
        assert format_duration(100 * 3600 + 59 * 60) == "100h59m"


def sample_snapshot(**overrides):
    """A fully-populated snapshot (cells + workers) for shape tests."""
    kwargs = dict(
        campaign="camp",
        n_total=10,
        done=4,
        failed=1,
        elapsed_s=20.0,
        rate=2.0,
        claimed=2,
        cells=(
            CellProgress(
                label="PC", algorithm="PC", function="sphere", dim=2,
                sigma0=1.0, total=5, done=2, failed=1, claimed=2,
            ),
        ),
        workers=(
            WorkerUtilization(
                rank=1, tasks=3, busy_s=1.5, elapsed_s=2.0,
                utilization=0.75, alive=True,
            ),
        ),
    )
    kwargs.update(overrides)
    return ProgressSnapshot(**kwargs)


class TestProgressSnapshot:
    def test_to_dict_round_trips_through_json(self):
        snap = sample_snapshot()
        payload = json.loads(json.dumps(snap.to_dict()))
        assert payload == snap.to_dict()
        rebuilt = ProgressSnapshot(
            campaign=payload["campaign"],
            n_total=payload["n_total"],
            done=payload["done"],
            failed=payload["failed"],
            elapsed_s=payload["elapsed_s"],
            rate=payload["rate"],
            claimed=payload["claimed"],
            cells=tuple(CellProgress(**c) for c in payload["cells"]),
            workers=tuple(WorkerUtilization(**w) for w in payload["workers"]),
        )
        assert rebuilt == snap

    def test_to_dict_materializes_derived_fields(self):
        snap = sample_snapshot()
        payload = snap.to_dict()
        assert payload["remaining"] == 6
        assert payload["eta_s"] == snap.eta_s == 3.0

    def test_eta_is_none_without_a_rate(self):
        assert sample_snapshot(rate=0.0).to_dict()["eta_s"] is None

    def test_eta_is_none_when_drained(self):
        snap = sample_snapshot(done=10, failed=0)
        assert snap.remaining == 0
        assert snap.eta_s is None

    def test_remaining_never_negative(self):
        assert sample_snapshot(done=15).remaining == 0

    def test_line_mentions_worker_free_fields_only(self):
        line = sample_snapshot().line()
        assert "4/10 done" in line and "2.00 jobs/s" in line


def status_dict(cell_keys):
    """A ``Campaign.status()``-shaped dict with the given cell keys."""
    return {
        "name": "camp",
        "n_jobs": 4,
        "done": 1,
        "failed": 0,
        "claimed": 0,
        "cells": {
            key: {"total": 1, "done": 0, "failed": 0, "claimed": 0}
            for key in cell_keys
        },
    }


class TestCellsFromStatus:
    KEYS = [
        ("PC", "PC", "sphere", 2, 1.0),
        ("DET", "DET", "sphere", 2, 1.0),
        ("DET", "DET", "rosenbrock", 4, 0.5),
        ("MN", "MN", "sphere", 8, 2.0),
    ]

    def test_rows_come_back_sorted(self):
        rows = cells_from_status(status_dict(self.KEYS))
        keys = [(c.label, c.algorithm, c.function, c.dim, c.sigma0) for c in rows]
        assert keys == sorted(self.KEYS)

    def test_ordering_is_insertion_independent(self):
        forward = cells_from_status(status_dict(self.KEYS))
        backward = cells_from_status(status_dict(list(reversed(self.KEYS))))
        assert forward == backward

    def test_numeric_fields_are_coerced(self):
        rows = cells_from_status(status_dict([("A", "A", "sphere", "2", "1.5")]))
        assert rows[0].dim == 2 and rows[0].sigma0 == 1.5


class FakeCampaign:
    """The minimal surface ``seed_rate`` / ``watch_campaign`` touch."""

    def __init__(self, directory, store_path=None, status=None):
        self.directory = str(directory)
        self.store = type("S", (), {"path": store_path})()
        self._status = status

    def status(self):
        return self._status


class TestSeedRate:
    def make_campaign(self, tmp_path, window=10.0, status=None):
        spec = tmp_path / "spec.json"
        spec.write_text("{}")
        store = tmp_path / "results.jsonl"
        store.write_text("")
        t0 = spec.stat().st_mtime
        os.utime(store, (t0 + window, t0 + window))
        return FakeCampaign(tmp_path, store_path=store, status=status)

    def test_rate_is_done_over_store_window(self, tmp_path):
        campaign = self.make_campaign(tmp_path, window=10.0)
        assert math.isclose(seed_rate(campaign, 20), 2.0, rel_tol=1e-6)

    def test_zero_done_gives_zero(self, tmp_path):
        assert seed_rate(self.make_campaign(tmp_path), 0) == 0.0

    def test_missing_spec_gives_zero(self, tmp_path):
        campaign = FakeCampaign(tmp_path, store_path=tmp_path / "results.jsonl")
        assert seed_rate(campaign, 5) == 0.0

    def test_pathless_store_gives_zero(self, tmp_path):
        (tmp_path / "spec.json").write_text("{}")
        assert seed_rate(FakeCampaign(tmp_path, store_path=None), 5) == 0.0

    def test_non_positive_window_gives_zero(self, tmp_path):
        campaign = self.make_campaign(tmp_path, window=-5.0)
        assert seed_rate(campaign, 5) == 0.0

    def test_sharded_directory_uses_newest_shard(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text("{}")
        shards = tmp_path / "store"
        shards.mkdir()
        t0 = spec.stat().st_mtime
        for k, dt in enumerate((2.0, 8.0)):
            shard = shards / f"results-{k}.jsonl"
            shard.write_text("")
            os.utime(shard, (t0 + dt, t0 + dt))
        campaign = FakeCampaign(tmp_path, store_path=shards)
        assert math.isclose(seed_rate(campaign, 16), 2.0, rel_tol=1e-6)

    def test_watch_first_tick_rate_is_seeded(self, tmp_path):
        status = status_dict([("PC", "PC", "sphere", 2, 1.0)])
        status["n_jobs"] = 40
        status["done"] = 20
        campaign = self.make_campaign(tmp_path, window=10.0, status=status)
        snap = next(watch_campaign(campaign, max_ticks=1))
        assert math.isclose(snap.rate, 2.0, rel_tol=1e-6)
        assert snap.eta_s is not None


class TestWorkersFromTrace:
    def write_workers(self, directory, rows):
        writer = TraceWriter(
            directory / TELEMETRY_FILENAME, run_id="r1", runner="tester"
        )
        writer.write("workers", workers=rows)
        writer.close()

    def row(self, rank, util, alive=True, tasks=1):
        return {
            "rank": rank, "tasks": tasks, "busy_s": util * 2.0,
            "elapsed_s": 2.0, "utilization": util, "alive": alive,
        }

    def test_no_trace_gives_empty(self, tmp_path):
        assert workers_from_trace(tmp_path) == ()

    def test_no_workers_event_gives_empty(self, tmp_path):
        writer = TraceWriter(tmp_path / TELEMETRY_FILENAME, run_id="r1")
        writer.write("run_start", campaign="c", backend="mw", n_total=1)
        writer.close()
        assert workers_from_trace(tmp_path) == ()

    def test_rows_sorted_by_rank(self, tmp_path):
        self.write_workers(tmp_path, [self.row(2, 0.5), self.row(1, 0.6)])
        rows = workers_from_trace(tmp_path)
        assert [w.rank for w in rows] == [1, 2]

    def test_straggler_below_half_median(self, tmp_path):
        self.write_workers(
            tmp_path,
            [self.row(1, 0.8), self.row(2, 0.9), self.row(3, 0.1)],
        )
        rows = workers_from_trace(tmp_path)
        assert [w.straggler for w in rows] == [False, False, True]

    def test_single_worker_never_straggles(self, tmp_path):
        self.write_workers(tmp_path, [self.row(1, 0.01)])
        assert workers_from_trace(tmp_path)[0].straggler is False

    def test_dead_worker_flagged_in_line(self, tmp_path):
        self.write_workers(tmp_path, [self.row(1, 0.4, alive=False)])
        assert "[dead]" in workers_from_trace(tmp_path)[0].line()
