"""Tests for MWDriver / MWWorker / MWTask across all three backends."""

import os
import signal
import time

import numpy as np
import pytest

from repro.mw import MWDriver, MWTask, Message, TaskState, decode_message, encode_message
from repro.mw.messages import MSG_RESULT, MSG_TASK
from repro.mw.task import MWTask as Task
from repro.mw.worker import MWWorker


# module-level executors (picklable for the process backend)
def square(work, ctx):
    return work * work


def failing(work, ctx):
    raise RuntimeError("boom")


def flaky(work, ctx):
    """Fails on the first attempt of each value, succeeds later (uses rng
    state as a crude per-worker attempt counter)."""
    # first call on a given worker fails; subsequent calls succeed
    if not hasattr(ctx, "_seen"):
        ctx._seen = set()
    if work not in ctx._seen:
        ctx._seen.add(work)
        raise RuntimeError("first attempt fails")
    return work


def rank_reporter(work, ctx):
    return ctx.rank


def noisy_draw(work, ctx):
    return float(ctx.rng.normal())


def slow_square(work, ctx):
    time.sleep(0.02)
    return work * work


class TestMessages:
    def test_message_roundtrip(self):
        msg = Message(tag=MSG_TASK, sender=0, payload={"task_id": 1, "work": 2})
        out = decode_message(encode_message(msg))
        assert out == msg

    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            Message(tag="bogus", sender=0)

    def test_negative_sender_rejected(self):
        with pytest.raises(ValueError):
            Message(tag=MSG_TASK, sender=-1)


class TestTaskLifecycle:
    def test_initial_state(self):
        t = Task({"x": 1})
        assert t.state is TaskState.PENDING
        assert not t.done and not t.failed

    def test_done_flow(self):
        t = Task(1)
        t.mark_running(2)
        assert t.worker == 2 and t.attempts == 1
        t.mark_done(42)
        assert t.done and t.result == 42

    def test_retry_flow(self):
        t = Task(1)
        t.mark_running(1)
        t.mark_retry("err")
        assert t.state is TaskState.PENDING
        assert t.worker is None
        assert t.error == "err"

    def test_ids_are_unique(self):
        assert Task(0).task_id != Task(0).task_id


class TestWorker:
    def test_execute_success(self):
        w = MWWorker(1, square)
        msg = w.execute(5, 3)
        assert msg.tag == MSG_RESULT
        assert msg.payload == {"task_id": 5, "result": 9}
        assert w.n_executed == 1

    def test_execute_error_is_contained(self):
        w = MWWorker(1, failing)
        msg = w.execute(5, 3)
        assert msg.tag == "error"
        assert "boom" in msg.payload["error"]
        assert w.n_errors == 1

    def test_rank_zero_rejected(self):
        with pytest.raises(ValueError):
            MWWorker(0, square)


@pytest.mark.parametrize("backend", ["inproc", "threaded", "process"])
class TestDriverBackends:
    def test_tasks_complete_with_results(self, backend):
        with MWDriver(square, n_workers=2, backend=backend, seed=0) as driver:
            tasks = [driver.submit(i) for i in range(6)]
            driver.wait_all(timeout=30)
            assert all(t.done for t in tasks)
            assert [t.result for t in tasks] == [i * i for i in range(6)]

    def test_failed_tasks_marked_after_retries(self, backend):
        with MWDriver(failing, n_workers=2, backend=backend, max_retries=1, seed=0) as driver:
            task = driver.submit(1)
            driver.wait_all(timeout=30)
            assert task.failed
            assert "boom" in task.error
            assert task.attempts == 2  # original + 1 retry

    def test_stats_accounting(self, backend):
        with MWDriver(square, n_workers=2, backend=backend, seed=0) as driver:
            for i in range(4):
                driver.submit(i)
            driver.wait_all(timeout=30)
            s = driver.stats()
            assert s["done"] == 4
            assert s["failed"] == 0
            assert s["n_tasks"] == 4

    def test_submit_after_shutdown_rejected(self, backend):
        driver = MWDriver(square, n_workers=1, backend=backend, seed=0)
        driver.shutdown()
        with pytest.raises(RuntimeError):
            driver.submit(1)

    def test_shutdown_idempotent(self, backend):
        driver = MWDriver(square, n_workers=1, backend=backend, seed=0)
        driver.shutdown()
        driver.shutdown()


class TestDriverSchedulingInproc:
    def test_affinity_honoured_when_idle(self):
        with MWDriver(rank_reporter, n_workers=3, backend="inproc", seed=0) as driver:
            tasks = [driver.submit(None, affinity=r) for r in (3, 1, 2)]
            driver.wait_all()
            assert [t.result for t in tasks] == [3, 1, 2]

    def test_invalid_affinity_rejected(self):
        with MWDriver(square, n_workers=2, backend="inproc", seed=0) as driver:
            with pytest.raises(ValueError):
                driver.submit(1, affinity=5)

    def test_worker_rngs_are_independent_streams(self):
        with MWDriver(noisy_draw, n_workers=2, backend="inproc", seed=7) as driver:
            a = driver.submit(None, affinity=1)
            b = driver.submit(None, affinity=2)
            driver.wait_all()
            assert a.result != b.result

    def test_seeded_runs_reproduce(self):
        def run():
            with MWDriver(noisy_draw, n_workers=2, backend="inproc", seed=9) as d:
                tasks = [d.submit(None, affinity=1 + (i % 2)) for i in range(4)]
                d.wait_all()
                return [t.result for t in tasks]

        assert run() == run()

    def test_flaky_task_retried_to_success(self):
        with MWDriver(flaky, n_workers=1, backend="inproc", max_retries=2, seed=0) as driver:
            task = driver.submit(5)
            driver.wait_all()
            assert task.done
            assert task.result == 5
            assert task.attempts == 2

    def test_more_tasks_than_workers(self):
        with MWDriver(square, n_workers=2, backend="inproc", seed=0) as driver:
            tasks = [driver.submit(i) for i in range(20)]
            driver.wait_all()
            assert all(t.done for t in tasks)

    def test_completion_hook_called(self):
        seen = []

        class Hooked(MWDriver):
            def act_on_completed_task(self, task):
                seen.append(task.task_id)

        with Hooked(square, n_workers=1, backend="inproc", seed=0) as driver:
            tasks = [driver.submit(i) for i in range(3)]
            driver.wait_all()
        assert sorted(seen) == sorted(t.task_id for t in tasks)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            MWDriver(square, n_workers=0)
        with pytest.raises(ValueError):
            MWDriver(square, backend="carrier-pigeon")
        with pytest.raises(ValueError):
            MWDriver(square, max_retries=-1)


class TestThreadedConcurrency:
    def test_parallel_tasks_overlap(self):
        with MWDriver(slow_square, n_workers=4, backend="threaded", seed=0) as driver:
            start = time.monotonic()
            for i in range(8):
                driver.submit(i)
            driver.wait_all(timeout=30)
            elapsed = time.monotonic() - start
        # 8 tasks x 20ms on 4 workers should take well under 8x serial time
        assert elapsed < 8 * 0.02 * 2

    def test_timeout_raises(self):
        def sleeper(work, ctx):
            time.sleep(1.0)
            return work

        driver = MWDriver(sleeper, n_workers=1, backend="threaded", seed=0)
        try:
            driver.submit(1)
            with pytest.raises(TimeoutError):
                driver.wait_all(timeout=0.05)
        finally:
            driver.shutdown()


class TestProcessFailureInjection:
    def test_dead_worker_task_reassigned(self):
        """Killing a worker process mid-run requeues its tasks to survivors."""
        with MWDriver(slow_square, n_workers=2, backend="process", seed=0) as driver:
            for i in range(6):
                driver.submit(i)
            # kill one worker outright
            victim = driver._procs[1]
            os.kill(victim.pid, signal.SIGKILL)
            driver.wait_all(timeout=60)
            s = driver.stats()
            assert s["done"] == 6
            assert s["live_workers"] == 1


class TestBatchAccounting:
    """Eval-weighted accounting: a batched frame counts its n_evals."""

    def test_n_evals_validated(self):
        with pytest.raises(ValueError):
            Task({"x": 1}, n_evals=0)
        assert Task({"x": 1}).n_evals == 1
        assert Task({"x": 1}, n_evals=7).n_evals == 7

    def test_pump_returns_outstanding_evals_not_frames(self):
        with MWDriver(slow_square, n_workers=1, backend="threaded", seed=0) as driver:
            driver.submit(2, n_evals=5)
            driver.submit(3)
            # both frames still in flight: 5 + 1 evaluations outstanding
            assert driver.pump(timeout=0.0) == 6
            driver.wait_all(timeout=30)
            assert driver.pump(timeout=0.0) == 0

    def test_utilization_rows_weight_evals(self):
        with MWDriver(square, n_workers=2, backend="threaded", seed=0) as driver:
            driver.submit(2, n_evals=4)
            driver.submit(3, n_evals=2)
            driver.wait_all(timeout=30)
            rows = driver.utilization()
            assert sum(r["tasks"] for r in rows) == 2
            assert sum(r["evals"] for r in rows) == 6
            assert all(r["inflight"] == 0 for r in rows)

    def test_inflight_gauge_counts_evals(self):
        with MWDriver(slow_square, n_workers=1, backend="threaded", seed=0) as driver:
            driver.submit(2, n_evals=8)
            driver.pump(timeout=0.0)  # dispatch the frame
            rows = driver.utilization()
            assert sum(r["inflight"] for r in rows) == 8
            driver.wait_all(timeout=30)


class TestCapsAndConstraints:
    """Hard constraint vectors vs soft affinity (the scheduling seam
    ``campaign serve`` builds on)."""

    def caps_driver(self, executor=rank_reporter, n_workers=3,
                    backend="inproc", **caps):
        worker_caps = {1: ["md"], 2: ["md", "fast"]}  # rank 3: no caps
        worker_caps.update(caps)
        return MWDriver(executor, n_workers=n_workers, backend=backend,
                        seed=0, transport_options={"worker_caps": worker_caps})

    def test_constrained_task_lands_on_capable_worker(self):
        with self.caps_driver() as driver:
            tasks = [driver.submit(None, constraints=["md"]) for _ in range(6)]
            driver.wait_all(timeout=30)
            assert all(t.result in (1, 2) for t in tasks)

    def test_unconstrained_tasks_prefer_plain_workers(self):
        """The fewest-caps eligible worker wins, so unconstrained work
        doesn't burn the capable ranks constrained work needs."""
        with self.caps_driver() as driver:
            task = driver.submit(None)
            driver.wait_all(timeout=30)
            assert task.result == 3

    def test_unsatisfiable_constraints_fail_on_static_transport(self):
        with self.caps_driver() as driver:
            task = driver.submit(None, constraints=["gpu"])
            driver.wait_all(timeout=30)
            assert task.failed
            assert "no live worker satisfies constraints" in task.error
            assert "gpu" in task.error

    def test_constraints_do_not_block_tasks_behind_them(self):
        """A deferred constrained task must not head-of-line block the
        dispatchable tasks submitted after it."""
        with self.caps_driver() as driver:
            doomed = driver.submit(None, constraints=["gpu"])
            fine = [driver.submit(None) for _ in range(4)]
            driver.wait_all(timeout=30)
            assert doomed.failed
            assert all(t.done for t in fine)

    def test_worker_caps_surface_in_utilization(self):
        with self.caps_driver() as driver:
            driver.submit(None)
            driver.wait_all(timeout=30)
            caps = {r["rank"]: r["caps"] for r in driver.utilization()}
            assert caps == {1: ["md"], 2: ["fast", "md"], 3: []}

    def test_dead_affinity_falls_back_with_counter(self):
        """Satellite fix: a task pinned to a dead rank is dispatched
        elsewhere with a warning and a repro_sched_fallbacks_total tick
        (never silently, never stuck)."""
        from repro.telemetry import Telemetry

        telemetry = Telemetry.create()
        with MWDriver(rank_reporter, n_workers=2, backend="process", seed=0,
                      telemetry=telemetry) as driver:
            os.kill(driver._procs[1].pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while driver._alive.get(1, False) and time.monotonic() < deadline:
                driver.pump(timeout=0.05)
            assert not driver._alive[1], "death never detected"
            task = driver.submit(None, affinity=1)
            driver.wait_all(timeout=30)
            assert task.done and task.result == 2
        assert telemetry.counter("repro_sched_fallbacks_total").value >= 1

    def test_live_busy_affinity_is_not_a_fallback(self):
        """Waiting for a busy (but alive) preferred rank is normal
        scheduling, not a fallback: the counter must stay silent."""
        from repro.telemetry import Telemetry

        telemetry = Telemetry.create()
        with MWDriver(square, n_workers=2, backend="inproc", seed=0,
                      telemetry=telemetry) as driver:
            tasks = [driver.submit(k, affinity=1) for k in range(4)]
            driver.wait_all(timeout=30)
            assert all(t.done for t in tasks)
        assert telemetry.counter("repro_sched_fallbacks_total").value == 0
