"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.function == "rosenbrock"
        assert args.algorithm == "PC"

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "SGD"])


class TestCommands:
    def test_run_command(self, capsys):
        rc = main(
            [
                "run", "--function", "sphere", "--dim", "2",
                "--algorithm", "DET", "--sigma0", "0.0",
                "--max-steps", "50", "--tau", "1e-10",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "best theta" in out
        assert "DET" in out

    def test_run_anderson_uses_k1(self, capsys):
        rc = main(
            [
                "run", "--algorithm", "ANDERSON", "--dim", "2",
                "--function", "sphere", "--sigma0", "1.0",
                "--max-steps", "20", "--walltime", "1e3",
            ]
        )
        assert rc == 0
        assert "Anderson" in capsys.readouterr().out

    def test_water_command(self, capsys):
        rc = main(
            ["water", "--algorithm", "MN", "--max-steps", "40",
             "--walltime", "2e4", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "epsilon" in out
        assert "published TIP4P" in out

    def test_scaleup_command(self, capsys):
        rc = main(
            ["scaleup", "--dims", "5", "8", "--nodes", "10",
             "--max-steps", "10", "--walltime", "1e3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "d=   5" in out
        assert "time/step" in out

    def test_campaign_lifecycle(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        base = [
            "campaign", "run", directory,
            "--algorithms", "DET", "PC",
            "--functions", "sphere", "--dims", "2",
            "--sigma0s", "1.0", "--seeds", "0", "1",
            "--max-steps", "40", "--walltime", "1e3",
        ]
        rc = main(base + ["--max-jobs", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 completed" in out and "resume" in out

        rc = main(base)  # resume: spec comes from the directory
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 already done" in out and "3 completed" in out

        rc = main(["campaign", "status", directory])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 total, 4 done" in out and "2/2" in out

        rc = main(["campaign", "summary", directory])
        out = capsys.readouterr().out
        assert rc == 0
        assert "DET" in out and "PC" in out and "mean true min" in out

        rc = main(["campaign", "compare", directory, "PC", "DET"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 shared seeds" in out and "sign test" in out

    def _small_campaign_args(self, directory):
        return [
            "campaign", "run", directory,
            "--algorithms", "DET", "PC",
            "--functions", "sphere", "--dims", "2",
            "--sigma0s", "1.0", "--seeds", "0", "1",
            "--max-steps", "40", "--walltime", "1e3",
        ]

    def test_campaign_run_mw_backend(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        rc = main(
            self._small_campaign_args(directory)
            + ["--backend", "mw", "--mw-transport", "inproc", "--mw-affinity"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend   : mw" in out and "4 completed" in out

    def test_campaign_run_progress_heartbeat(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        rc = main(self._small_campaign_args(directory) + ["--progress"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = [l for l in out.splitlines() if l.startswith("[campaign]")]
        assert len(lines) == 4  # serial: one heartbeat per job
        assert "4/4 done" in lines[-1] and "jobs/s" in lines[-1]

    def test_campaign_watch_once(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        main(self._small_campaign_args(directory) + ["--max-jobs", "1"])
        capsys.readouterr()
        rc = main(["campaign", "watch", directory, "--once"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1/4 done" in out and "3 remaining" in out and "eta" in out

    def test_campaign_compact_cli_keeps_summary_identical(self, tmp_path, capsys):
        from repro.campaign import Campaign

        directory = str(tmp_path / "camp")
        main(self._small_campaign_args(directory))
        capsys.readouterr()
        # duplicate every record, as overlapping runners would
        store = Campaign(directory).store
        for rec in store.records():
            store.record(rec)
        rc = main(["campaign", "summary", directory])
        before = capsys.readouterr().out
        assert rc == 0
        rc = main(["campaign", "compact", directory])
        out = capsys.readouterr().out
        assert rc == 0
        assert "8 -> 4" in out and "4 duplicate/stale dropped" in out
        rc = main(["campaign", "summary", directory])
        after = capsys.readouterr().out
        assert rc == 0
        assert before == after  # byte-identical aggregation
        rc = main(["campaign", "compare", directory, "PC", "DET"])
        assert rc == 0

    def _mixed_state_campaign(self, tmp_path):
        """A campaign with one done, one live-claimed, one expired-claim,
        and one plain-pending job (the watch per-cell fixture)."""
        import time

        from repro.campaign import Campaign

        directory = str(tmp_path / "camp")
        main(self._small_campaign_args(directory) + ["--max-jobs", "1"])
        campaign = Campaign(directory)
        done = campaign.store.completed_ids()
        pending = [j for j in campaign.jobs() if j.job_id not in done]
        campaign.store.claim([pending[0].job_id], "live-peer", ttl=3600)
        campaign.store.claim([pending[1].job_id], "dead-peer", ttl=1,
                             now=time.time() - 100)
        return directory, pending

    def test_campaign_watch_cells_plain(self, tmp_path, capsys):
        directory, _ = self._mixed_state_campaign(tmp_path)
        capsys.readouterr()
        rc = main(["campaign", "watch", directory, "--once", "--cells"])
        out = capsys.readouterr().out
        assert rc == 0
        # heartbeat counts only the live claim, not the expired one
        assert "1/4 done" in out and "1 claimed" in out
        cell_lines = [l for l in out.splitlines() if l.startswith("  ")]
        assert len(cell_lines) == 2  # DET and PC cells
        assert any("DET sphere d=2" in l for l in cell_lines)
        assert any("1 claimed" in l for l in cell_lines)

    def test_campaign_watch_cells_json(self, tmp_path, capsys):
        import json

        directory, pending = self._mixed_state_campaign(tmp_path)
        capsys.readouterr()
        rc = main(["campaign", "watch", directory, "--once", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        snap = json.loads(out.strip())
        assert snap["done"] == 1 and snap["claimed"] == 1
        cells = {(c["label"], c["function"]): c for c in snap["cells"]}
        assert set(cells) == {("DET", "sphere"), ("PC", "sphere")}
        assert sum(c["total"] for c in cells.values()) == 4
        assert sum(c["claimed"] for c in cells.values()) == 1  # expired excluded
        claimed_cell = pending[0].label
        assert cells[(claimed_cell, "sphere")]["claimed"] == 1

    def test_campaign_run_with_shards_lifecycle(self, tmp_path, capsys):
        from repro.campaign.sharding import MANIFEST_FILENAME

        directory = str(tmp_path / "camp")
        rc = main(self._small_campaign_args(directory) + ["--shards", "2"])
        out = capsys.readouterr().out
        assert rc == 0 and "4 completed" in out
        assert (tmp_path / "camp" / MANIFEST_FILENAME).exists()
        assert (tmp_path / "camp" / "results-0.jsonl").exists()

        rc = main(self._small_campaign_args(directory))  # layout auto-detected
        out = capsys.readouterr().out
        assert rc == 0 and "4 already done" in out

        rc = main(["campaign", "status", directory])
        out = capsys.readouterr().out
        assert rc == 0
        assert "store     : 2 shards" in out and "4 total, 4 done" in out

        rc = main(["campaign", "summary", directory])
        out = capsys.readouterr().out
        assert rc == 0 and "DET" in out and "PC" in out

        rc = main(["campaign", "compact", directory])
        out = capsys.readouterr().out
        assert rc == 0 and "(2 shards)" in out and "4 -> 4" in out

    def test_campaign_run_shard_count_conflict_is_clean(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        main(self._small_campaign_args(directory) + ["--shards", "2"])
        capsys.readouterr()
        rc = main(self._small_campaign_args(directory) + ["--shards", "8"])
        err = capsys.readouterr().err
        assert rc == 2 and "already sharded into 2" in err

    def test_campaign_run_with_sqlite_store_lifecycle(self, tmp_path, capsys):
        from repro.campaign import SQLiteStoreBackend, Campaign
        from repro.campaign.backends import DB_FILENAME

        directory = str(tmp_path / "camp")
        rc = main(self._small_campaign_args(directory) + ["--store", "sqlite"])
        out = capsys.readouterr().out
        assert rc == 0 and "4 completed" in out
        assert (tmp_path / "camp" / DB_FILENAME).exists()

        rc = main(self._small_campaign_args(directory))  # engine auto-detected
        out = capsys.readouterr().out
        assert rc == 0 and "4 already done" in out
        assert isinstance(Campaign(directory).store, SQLiteStoreBackend)

        rc = main(["campaign", "status", directory])
        out = capsys.readouterr().out
        assert rc == 0
        assert "store     : sqlite" in out and "4 total, 4 done" in out

        rc = main(["campaign", "summary", directory])
        out = capsys.readouterr().out
        assert rc == 0 and "DET" in out and "PC" in out

        rc = main(["campaign", "compact", directory])
        out = capsys.readouterr().out
        assert rc == 0 and "results.sqlite" in out and "4 -> 4" in out

    def test_campaign_run_store_engine_conflict_is_clean(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        main(self._small_campaign_args(directory) + ["--store", "sqlite"])
        capsys.readouterr()
        rc = main(self._small_campaign_args(directory) + ["--shards", "4"])
        err = capsys.readouterr().err
        assert rc == 2 and "migrate-store" in err
        rc = main(self._small_campaign_args(directory) + ["--store", "parquet"])
        err = capsys.readouterr().err
        assert rc == 2 and "unknown store engine" in err

    def test_campaign_migrate_store_cli_round_trip(self, tmp_path, capsys):
        src = str(tmp_path / "src")
        main(self._small_campaign_args(src))
        main(["campaign", "compact", src])
        capsys.readouterr()
        source_bytes = (tmp_path / "src" / "results.jsonl").read_bytes()

        rc = main(["campaign", "migrate-store", src, str(tmp_path / "mid"),
                   "--store", "sqlite"])
        out = capsys.readouterr().out
        assert rc == 0 and "4 copied" in out and "engine    : sqlite" in out
        rc = main(["campaign", "migrate-store", str(tmp_path / "mid"),
                   str(tmp_path / "dst"), "--store", "jsonl"])
        out = capsys.readouterr().out
        assert rc == 0 and "4 copied" in out

        rc = main(["campaign", "compact", str(tmp_path / "dst")])
        capsys.readouterr()
        assert rc == 0
        assert (tmp_path / "dst" / "results.jsonl").read_bytes() == source_bytes
        # the migrated campaign is fully usable (spec travelled along)
        rc = main(["campaign", "status", str(tmp_path / "dst")])
        out = capsys.readouterr().out
        assert rc == 0 and "4 total, 4 done" in out

    def test_campaign_migrate_store_errors_are_clean(self, tmp_path, capsys):
        rc = main(["campaign", "migrate-store", str(tmp_path / "nowhere"),
                   str(tmp_path / "dst"), "--store", "sqlite"])
        err = capsys.readouterr().err
        assert rc == 2 and "no campaign store" in err
        src = str(tmp_path / "src")
        main(self._small_campaign_args(src))
        capsys.readouterr()
        rc = main(["campaign", "migrate-store", src, src, "--store", "sqlite"])
        err = capsys.readouterr().err
        assert rc == 2 and "fresh destination" in err

    def test_campaign_watch_missing_directory(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "watch", str(tmp_path / "nowhere"), "--once"])

    def test_campaign_summary_before_any_results(self, tmp_path, capsys):
        from repro.campaign import Campaign, CampaignSpec

        directory = tmp_path / "empty"
        Campaign(directory, spec=CampaignSpec(name="e", algorithms=["DET"],
                                              functions=["sphere"], dims=[2],
                                              sigma0s=[1.0], seeds=[0]))
        rc = main(["campaign", "summary", str(directory)])
        assert rc == 0
        assert "no completed jobs" in capsys.readouterr().out

    def test_campaign_run_from_spec_file(self, tmp_path, capsys):
        from repro.campaign import CampaignSpec

        spec_path = CampaignSpec(
            name="from-file", algorithms=["DET"], functions=["sphere"],
            dims=[2], sigma0s=[1.0], seeds=[0], max_steps=40, walltime=1e3,
        ).save(tmp_path / "spec.json")
        rc = main(["campaign", "run", str(tmp_path / "camp"), "--spec", str(spec_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "from-file" in out and "1 completed" in out

    def test_optroot_command(self, tmp_path, capsys):
        from repro.optroot import OptRoot
        from repro.optroot.config import write_input, write_property_spec

        root = OptRoot.create(tmp_path / "opt")
        root.add_system("sysA")
        write_property_spec(root, "y", target=1.0)
        write_input(root, ["a"], np.array([[0.0], [1.0]]))
        rc = main(["optroot", str(root.root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sysA" in out
        assert "('a',)" in out
