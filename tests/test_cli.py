"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.function == "rosenbrock"
        assert args.algorithm == "PC"

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "SGD"])


class TestCommands:
    def test_run_command(self, capsys):
        rc = main(
            [
                "run", "--function", "sphere", "--dim", "2",
                "--algorithm", "DET", "--sigma0", "0.0",
                "--max-steps", "50", "--tau", "1e-10",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "best theta" in out
        assert "DET" in out

    def test_run_anderson_uses_k1(self, capsys):
        rc = main(
            [
                "run", "--algorithm", "ANDERSON", "--dim", "2",
                "--function", "sphere", "--sigma0", "1.0",
                "--max-steps", "20", "--walltime", "1e3",
            ]
        )
        assert rc == 0
        assert "Anderson" in capsys.readouterr().out

    def test_water_command(self, capsys):
        rc = main(
            ["water", "--algorithm", "MN", "--max-steps", "40",
             "--walltime", "2e4", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "epsilon" in out
        assert "published TIP4P" in out

    def test_scaleup_command(self, capsys):
        rc = main(
            ["scaleup", "--dims", "5", "8", "--nodes", "10",
             "--max-steps", "10", "--walltime", "1e3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "d=   5" in out
        assert "time/step" in out

    def test_optroot_command(self, tmp_path, capsys):
        from repro.optroot import OptRoot
        from repro.optroot.config import write_input, write_property_spec

        root = OptRoot.create(tmp_path / "opt")
        root.add_system("sysA")
        write_property_spec(root, "y", target=1.0)
        write_input(root, ["a"], np.array([[0.0], [1.0]]))
        rc = main(["optroot", str(root.root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sysA" in out
        assert "('a',)" in out
