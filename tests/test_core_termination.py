"""Tests for termination criteria (eq. 2.9 tolerance, walltime, composites)."""

import numpy as np
import pytest

from repro.core import (
    CompositeTermination,
    DiameterTermination,
    MaxStepsTermination,
    Simplex,
    ToleranceTermination,
    WalltimeTermination,
    default_termination,
)
from repro.noise import VertexEvaluation


class FakeOptimizer:
    """Minimal stand-in exposing what criteria inspect."""

    def __init__(self, values, elapsed=0.0, n_steps=0, spread=1.0):
        evs = []
        for i, v in enumerate(values):
            ev = VertexEvaluation(np.array([float(i) * spread, 0.0]), sigma0=0.0)
            ev.merge_block(1.0, v)
            evs.append(ev)
        self.simplex = Simplex(evs)
        self._elapsed = elapsed
        self.n_steps = n_steps

    def elapsed_walltime(self):
        return self._elapsed


class TestTolerance:
    def test_fires_when_spread_within_tau(self):
        opt = FakeOptimizer([1.0, 1.0005, 1.001])
        assert ToleranceTermination(0.01).check(opt) == "tolerance"

    def test_silent_when_spread_exceeds_tau(self):
        opt = FakeOptimizer([1.0, 1.5, 3.0])
        assert ToleranceTermination(0.01).check(opt) is None

    def test_eq_2_9_uses_max_deviation_from_min(self):
        opt = FakeOptimizer([0.0, 0.05, 0.2])
        assert ToleranceTermination(0.21).check(opt) == "tolerance"
        assert ToleranceTermination(0.19).check(opt) is None

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            ToleranceTermination(0.0)


class TestWalltime:
    def test_fires_at_limit(self):
        assert WalltimeTermination(10.0).check(FakeOptimizer([0, 1, 2], elapsed=10.0)) == "walltime"

    def test_silent_before_limit(self):
        assert WalltimeTermination(10.0).check(FakeOptimizer([0, 1, 2], elapsed=9.9)) is None

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            WalltimeTermination(0.0)


class TestMaxSteps:
    def test_fires_at_step_count(self):
        assert MaxStepsTermination(5).check(FakeOptimizer([0, 1, 2], n_steps=5)) == "max_steps"

    def test_silent_before(self):
        assert MaxStepsTermination(5).check(FakeOptimizer([0, 1, 2], n_steps=4)) is None

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            MaxStepsTermination(0)


class TestDiameter:
    def test_fires_when_small(self):
        opt = FakeOptimizer([0, 1, 2], spread=1e-8)
        assert DiameterTermination(1e-6).check(opt) == "diameter"

    def test_silent_when_large(self):
        opt = FakeOptimizer([0, 1, 2], spread=10.0)
        assert DiameterTermination(1e-6).check(opt) is None


class TestComposite:
    def test_first_firing_reason_wins(self):
        comp = CompositeTermination(
            [WalltimeTermination(5.0), MaxStepsTermination(3)]
        )
        opt = FakeOptimizer([0, 1, 2], elapsed=6.0, n_steps=10)
        assert comp.check(opt) == "walltime"

    def test_silent_when_none_fire(self):
        comp = CompositeTermination(
            [WalltimeTermination(5.0), MaxStepsTermination(3)]
        )
        assert comp.check(FakeOptimizer([0, 1, 2])) is None

    def test_flattens_nested_composites(self):
        inner = CompositeTermination([MaxStepsTermination(3)])
        outer = CompositeTermination([inner, WalltimeTermination(5.0)])
        assert len(outer.criteria) == 2

    def test_or_operator(self):
        comp = WalltimeTermination(5.0) | MaxStepsTermination(3)
        assert isinstance(comp, CompositeTermination)
        assert comp.check(FakeOptimizer([0, 1, 2], n_steps=3)) == "max_steps"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeTermination([])

    def test_default_termination_bundle(self):
        comp = default_termination(tau=0.5, walltime=100.0, max_steps=7)
        opt = FakeOptimizer([1.0, 1.1, 1.2])
        assert comp.check(opt) == "tolerance"
