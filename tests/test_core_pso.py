"""Tests for the PSO + noise-aware polish extension (paper future work §5.2)."""

import numpy as np
import pytest

from repro.core.pso import NoisyPSO, pso_polish
from repro.functions import Rastrigin, Sphere
from repro.noise import StochasticFunction


def noisy(f, sigma0=1.0, seed=0):
    return StochasticFunction(f, sigma0=sigma0, rng=seed)


class TestNoisyPSO:
    def test_swarm_improves_on_sphere(self):
        func = noisy(Sphere(3), sigma0=0.5, seed=1)
        swarm = NoisyPSO(func, bounds=(-5.0, 5.0), dim=3, n_particles=10, rng=2)
        initial = func.true_value(swarm.gbest_pos)
        best = swarm.run(25)
        assert func.true_value(best) < initial

    def test_positions_respect_bounds(self):
        func = noisy(Sphere(2), sigma0=1.0, seed=3)
        swarm = NoisyPSO(func, bounds=(-2.0, 2.0), dim=2, n_particles=8, rng=4)
        swarm.run(10)
        assert np.all(swarm.pos >= -2.0) and np.all(swarm.pos <= 2.0)

    def test_incumbent_update_needs_confidence(self):
        """With huge noise, the global best barely churns."""
        func = noisy(Sphere(2), sigma0=1000.0, seed=5)
        swarm = NoisyPSO(func, bounds=(-5.0, 5.0), dim=2, n_particles=6, rng=6, k=2.0)
        g0 = swarm.gbest_val
        swarm.run(5)
        # incumbent can only have moved by confident improvement
        assert swarm.gbest_val <= g0

    def test_validation(self):
        func = noisy(Sphere(2))
        with pytest.raises(ValueError):
            NoisyPSO(func, bounds=(-1.0, 1.0), dim=2, n_particles=1)
        with pytest.raises(ValueError):
            NoisyPSO(func, bounds=(1.0, -1.0), dim=2)
        with pytest.raises(ValueError):
            NoisyPSO(func, bounds=(-1.0, 1.0), dim=2, eval_time=0.0)

    def test_seeded_runs_reproduce(self):
        def run():
            func = noisy(Sphere(2), sigma0=1.0, seed=7)
            swarm = NoisyPSO(func, bounds=(-3.0, 3.0), dim=2, n_particles=6, rng=8)
            return swarm.run(8)

        np.testing.assert_array_equal(run(), run())


class TestPsoPolish:
    def test_hybrid_on_multimodal_rastrigin(self):
        """PSO escapes local wells; the polish refines — the §5.2 pitch."""
        func = noisy(Rastrigin(2), sigma0=0.3, seed=9)
        result = pso_polish(
            func,
            bounds=(-4.0, 4.0),
            dim=2,
            pso_iterations=40,
            n_particles=16,
            walltime=5e4,
            max_steps=400,
            seed=10,
        )
        # global minimum is 0 at origin; nearest local wells are ~1 apart
        assert result.best_true < 3.0
        assert result.algorithm == "PSO+PC"
        assert result.extra["pso_iterations"] == 40

    def test_polish_algorithm_selectable(self):
        func = noisy(Sphere(2), sigma0=0.5, seed=11)
        result = pso_polish(
            func, bounds=(-3.0, 3.0), dim=2, polish_algorithm="MN",
            pso_iterations=10, walltime=2e4, max_steps=200, seed=12,
        )
        assert result.algorithm == "PSO+MN"
        assert result.best_true < 1.0
