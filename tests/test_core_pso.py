"""Tests for the PSO + noise-aware polish extension (paper future work §5.2)."""

import numpy as np
import pytest

from repro.core.pso import NoisyPSO, pso_polish
from repro.functions import Rastrigin, Sphere
from repro.noise import StochasticFunction


def noisy(f, sigma0=1.0, seed=0):
    return StochasticFunction(f, sigma0=sigma0, rng=seed)


class TestNoisyPSO:
    def test_swarm_improves_on_sphere(self):
        func = noisy(Sphere(3), sigma0=0.5, seed=1)
        swarm = NoisyPSO(func, bounds=(-5.0, 5.0), dim=3, n_particles=10, rng=2)
        initial = func.true_value(swarm.gbest_pos)
        best = swarm.run(25)
        assert func.true_value(best) < initial

    def test_positions_respect_bounds(self):
        func = noisy(Sphere(2), sigma0=1.0, seed=3)
        swarm = NoisyPSO(func, bounds=(-2.0, 2.0), dim=2, n_particles=8, rng=4)
        swarm.run(10)
        assert np.all(swarm.pos >= -2.0) and np.all(swarm.pos <= 2.0)

    def test_incumbent_update_needs_confidence(self):
        """With huge noise, the global best barely churns."""
        func = noisy(Sphere(2), sigma0=1000.0, seed=5)
        swarm = NoisyPSO(func, bounds=(-5.0, 5.0), dim=2, n_particles=6, rng=6, k=2.0)
        g0 = swarm.gbest_val
        swarm.run(5)
        # incumbent can only have moved by confident improvement
        assert swarm.gbest_val <= g0

    def test_validation(self):
        func = noisy(Sphere(2))
        with pytest.raises(ValueError):
            NoisyPSO(func, bounds=(-1.0, 1.0), dim=2, n_particles=1)
        with pytest.raises(ValueError):
            NoisyPSO(func, bounds=(1.0, -1.0), dim=2)
        with pytest.raises(ValueError):
            NoisyPSO(func, bounds=(-1.0, 1.0), dim=2, eval_time=0.0)

    def test_seeded_runs_reproduce(self):
        def run():
            func = noisy(Sphere(2), sigma0=1.0, seed=7)
            swarm = NoisyPSO(func, bounds=(-3.0, 3.0), dim=2, n_particles=6, rng=8)
            return swarm.run(8)

        np.testing.assert_array_equal(run(), run())


class TestPsoPolish:
    def test_hybrid_on_multimodal_rastrigin(self):
        """PSO escapes local wells; the polish refines — the §5.2 pitch."""
        func = noisy(Rastrigin(2), sigma0=0.3, seed=9)
        result = pso_polish(
            func,
            bounds=(-4.0, 4.0),
            dim=2,
            pso_iterations=40,
            n_particles=16,
            walltime=5e4,
            max_steps=400,
            seed=10,
        )
        # global minimum is 0 at origin; nearest local wells are ~1 apart
        assert result.best_true < 3.0
        assert result.algorithm == "PSO+PC"
        assert result.extra["pso_iterations"] == 40

    def test_polish_algorithm_selectable(self):
        func = noisy(Sphere(2), sigma0=0.5, seed=11)
        result = pso_polish(
            func, bounds=(-3.0, 3.0), dim=2, polish_algorithm="MN",
            pso_iterations=10, walltime=2e4, max_steps=200, seed=12,
        )
        assert result.algorithm == "PSO+MN"
        assert result.best_true < 1.0


class TestPsoAskTell:
    """step() routes through the native ask/tell seam (generation-batched)."""

    def mk_pair(self, seed=20):
        def one():
            func = noisy(Sphere(2), sigma0=0.5, seed=seed)
            return NoisyPSO(func, bounds=(-3.0, 3.0), dim=2, n_particles=6, rng=seed + 1)

        return one(), one()

    def test_out_of_order_tells_match_step(self):
        """Reversed-order tells reproduce the step() trajectory exactly —
        noise merges in particle order regardless of arrival order."""
        a, b = self.mk_pair()
        for _ in range(8):
            a.step()
            for p in reversed(b.ask()):
                b.tell(p.id, float(b.func.f(np.asarray(p.theta))))
        np.testing.assert_array_equal(a.gbest_pos, b.gbest_pos)
        np.testing.assert_array_equal(a.best_val, b.best_val)
        assert a.gbest_val == b.gbest_val
        assert a.n_iterations == b.n_iterations

    def test_ask_is_generation_batched_and_stable(self):
        func = noisy(Sphere(2), sigma0=0.5, seed=22)
        swarm = NoisyPSO(func, bounds=(-3.0, 3.0), dim=2, n_particles=5, rng=23)
        first = swarm.ask()
        assert len(first) == 5
        # re-asking mid-generation returns the still-untold proposals, no new mints
        again = swarm.ask()
        assert [p.id for p in again] == [p.id for p in first]
        swarm.tell(first[0].id, 1.0)
        assert len(swarm.ask()) == 4

    def test_duplicate_and_unknown_tells(self):
        func = noisy(Sphere(2), sigma0=0.5, seed=24)
        swarm = NoisyPSO(func, bounds=(-3.0, 3.0), dim=2, n_particles=4, rng=25)
        proposals = swarm.ask()
        assert swarm.tell(proposals[0].id, 0.5) == "applied"
        assert swarm.tell(proposals[0].id, 9.9) == "duplicate"
        assert swarm.n_duplicate_tells == 1
        with pytest.raises(KeyError):
            swarm.tell("nope", 0.0)

    def test_last_tell_finishes_the_iteration(self):
        func = noisy(Sphere(2), sigma0=0.5, seed=26)
        swarm = NoisyPSO(func, bounds=(-3.0, 3.0), dim=2, n_particles=4, rng=27)
        proposals = swarm.ask()
        for p in proposals[:-1]:
            swarm.tell(p.id, float(func.f(np.asarray(p.theta))))
            assert swarm.n_iterations == 0
        swarm.tell(proposals[-1].id, float(func.f(np.asarray(proposals[-1].theta))))
        assert swarm.n_iterations == 1
