"""Unit tests for the :mod:`repro.telemetry` substrate.

Covers the three layers on their own terms: the metrics registry
(instruments, snapshots, merging, Prometheus rendering), the event trace
(durability contract, schema validation, torn-line tolerance), and the
:class:`~repro.telemetry.Telemetry` facade (enabled/disabled dispatch,
spans, timers, environment gating).
"""

import json
import os

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    NULL_TELEMETRY,
    TELEMETRY_ENV,
    TELEMETRY_FILENAME,
    MetricsRegistry,
    Telemetry,
    TraceWriter,
    last_event,
    merge_snapshots,
    new_run_id,
    new_span_id,
    read_trace,
    render_prometheus,
    telemetry_enabled,
    validate_trace,
)
from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Histogram,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "Jobs.", status="done")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_identity_per_label_set(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", status="done")
        b = reg.counter("jobs_total", status="failed")
        assert a is reg.counter("jobs_total", status="done")
        assert a is not b

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("inflight")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_histogram_bucketing(self):
        h = Histogram("lat", {}, buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", {}, buckets=(1.0, 0.1))

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_disabled_registry_hands_out_shared_nulls(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_COUNTER
        assert reg.gauge("b") is NULL_GAUGE
        assert reg.histogram("c") is NULL_HISTOGRAM
        # the null instruments swallow updates without state
        NULL_COUNTER.inc()
        NULL_GAUGE.set(9)
        NULL_HISTOGRAM.observe(1.0)
        assert reg.snapshot() == {"counters": [], "gauges": [], "histograms": []}


class TestSnapshotMergeRender:
    def make_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs.", status="done").inc(3)
        reg.gauge("inflight", "In flight.").set(2)
        reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0),
                      op="claim").observe(0.05)
        return reg.snapshot()

    def test_snapshot_is_plain_json(self):
        snap = self.make_snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_sums_counters_and_histograms(self):
        a, b = self.make_snapshot(), self.make_snapshot()
        merged = merge_snapshots([a, b])
        assert merged["counters"][0]["value"] == 6
        hist = merged["histograms"][0]
        assert hist["count"] == 2 and hist["counts"] == [2, 0, 0]

    def test_merge_gauges_last_wins(self):
        a, b = self.make_snapshot(), self.make_snapshot()
        b["gauges"][0]["value"] = 7
        assert merge_snapshots([a, b])["gauges"][0]["value"] == 7

    def test_merge_rejects_bucket_mismatch(self):
        a, b = self.make_snapshot(), self.make_snapshot()
        b["histograms"][0]["buckets"] = [0.5, 2.0]
        with pytest.raises(ValueError, match="bucket boundaries"):
            merge_snapshots([a, b])

    def test_render_prometheus_shape(self):
        text = render_prometheus(self.make_snapshot())
        assert "# HELP jobs_total Jobs." in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{status="done"} 3' in text
        assert "# TYPE inflight gauge" in text
        assert 'lat_seconds_bucket{le="0.1",op="claim"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf",op="claim"} 1' in text
        assert 'lat_seconds_count{op="claim"} 1' in text
        assert text.endswith("\n")

    def test_render_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = render_prometheus(reg.snapshot())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text

    def test_render_empty_snapshot(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""


class TestTrace:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        writer = TraceWriter(path, run_id="r1", runner="host-1")
        writer.write("run_start", campaign="c", backend="serial", n_total=4)
        writer.write("run_end", done=4, failed=0, elapsed_s=0.1)
        writer.close()
        events = list(read_trace(path))
        assert [e["event"] for e in events] == ["run_start", "run_end"]
        assert all(e["run_id"] == "r1" and e["runner"] == "host-1"
                   for e in events)
        assert validate_trace(path) == events

    def test_reader_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        TraceWriter(path, run_id="r1").write("workers", workers=[])
        with open(path, "a") as fh:
            fh.write('{"ts": 1.0, "event": "ru')  # killed mid-write
        assert [e["event"] for e in read_trace(path)] == ["workers"]

    def test_reader_raises_on_interior_corruption(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        path.write_text('not json\n{"ts": 1.0}\n')
        with pytest.raises(json.JSONDecodeError):
            list(read_trace(path))

    def test_missing_file_reads_empty(self, tmp_path):
        assert list(read_trace(tmp_path / "absent.jsonl")) == []

    def test_last_event_picks_the_latest(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        writer = TraceWriter(path, run_id="r1")
        writer.write("workers", workers=[{"rank": 1}])
        writer.write("workers", workers=[{"rank": 2}])
        assert last_event(path, "workers")["workers"] == [{"rank": 2}]
        assert last_event(path, "run_start") is None

    def test_validate_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        TraceWriter(path, run_id="r1").write("nonsense")
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_trace(path)

    def test_validate_rejects_missing_required_field(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        TraceWriter(path, run_id="r1").write("run_start", campaign="c")
        with pytest.raises(ValueError, match="missing 'backend'"):
            validate_trace(path)

    def test_ids_are_fresh_and_sized(self):
        assert new_run_id() != new_run_id()
        assert len(new_run_id()) == 12
        assert len(new_span_id()) == 16


class TestFacade:
    def test_env_gating(self, monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        assert not telemetry_enabled()
        assert Telemetry.from_env() is NULL_TELEMETRY
        for falsy in ("", "0", "false", "no", "off", "OFF"):
            monkeypatch.setenv(TELEMETRY_ENV, falsy)
            assert not telemetry_enabled()
        monkeypatch.setenv(TELEMETRY_ENV, "1")
        assert telemetry_enabled()
        assert Telemetry.from_env().enabled

    def test_disabled_facade_is_inert(self, tmp_path):
        t = NULL_TELEMETRY
        t.counter("c").inc()
        with t.timer("t"):
            pass
        with t.span("claim", n_jobs=3) as span:
            assert span.span_id == ""
        t.event("run_start", campaign="c")
        t.write_metrics()
        assert t.registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }
        assert not (tmp_path / TELEMETRY_FILENAME).exists()

    def test_timer_observes_into_histogram(self):
        t = Telemetry.create()
        with t.timer("op_seconds", op="claim"):
            pass
        hist = t.registry.histogram("op_seconds", op="claim")
        assert hist.count == 1

    def test_span_writes_event_and_histogram(self, tmp_path):
        t = Telemetry.create(tmp_path, runner="r")
        with t.span("claim", n_jobs=5) as span:
            assert len(span.span_id) == 16
        t.close()
        events = validate_trace(tmp_path / TELEMETRY_FILENAME)
        assert len(events) == 1
        event = events[0]
        assert event["event"] == "span" and event["name"] == "claim"
        assert event["span_id"] == span.span_id
        assert event["n_jobs"] == 5 and event["ok"] is True
        assert t.registry.histogram("repro_span_seconds", span="claim").count == 1

    def test_span_records_failure(self, tmp_path):
        t = Telemetry.create(tmp_path)
        with pytest.raises(RuntimeError):
            with t.span("evaluate"):
                raise RuntimeError("boom")
        t.close()
        assert last_event(tmp_path / TELEMETRY_FILENAME, "span")["ok"] is False

    def test_write_metrics_persists_snapshot(self, tmp_path):
        t = Telemetry.create(tmp_path)
        t.counter("jobs_total").inc(4)
        t.write_metrics()
        t.close()
        event = last_event(tmp_path / TELEMETRY_FILENAME, "metrics")
        assert event["metrics"]["counters"][0]["value"] == 4

    def test_create_without_directory_has_no_trace(self):
        t = Telemetry.create()
        t.event("run_start", campaign="c")  # no-op, no trace attached
        assert t.trace is None and t.enabled

    def test_concurrent_writers_interleave_whole_lines(self, tmp_path):
        path = tmp_path / TELEMETRY_FILENAME
        writers = [TraceWriter(path, run_id=f"r{i}") for i in range(4)]
        for _ in range(25):
            for w in writers:
                w.write("workers", workers=[])
        for w in writers:
            w.close()
        assert len(validate_trace(path)) == 100

    def test_facade_run_id_rides_every_event(self, tmp_path):
        t = Telemetry.create(tmp_path, run_id="abc123abc123")
        t.event("run_start", campaign="c", backend="serial", n_total=1)
        with t.span("claim"):
            pass
        t.close()
        assert {e["run_id"] for e in read_trace(tmp_path / TELEMETRY_FILENAME)} \
            == {"abc123abc123"}
