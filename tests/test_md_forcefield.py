"""Force-field correctness: finite-difference forces, symmetries, M-site."""

import math

import numpy as np
import pytest

from repro.md import PeriodicBox, TIP4PForceField, WaterParameters, build_water_box


def two_waters(separation=3.5, seed=0):
    """Two molecules a fixed O-O distance apart in a roomy box."""
    params = WaterParameters()
    box = PeriodicBox(20.0)
    sys_ = build_water_box(2, params=params, rng=seed)
    pos = sys_.pos.copy()
    # place molecule 1 at a controlled offset from molecule 0
    offset = np.array([separation, 0.3, -0.2]) - (pos[3] - pos[0])
    pos[3:] += offset
    return params, box, pos


class TestWaterParameters:
    def test_published_tip4p_defaults(self):
        p = WaterParameters()
        assert p.epsilon == pytest.approx(0.1550)
        assert p.sigma == pytest.approx(3.1536)
        assert p.q_h == pytest.approx(0.52)
        assert p.q_m == pytest.approx(-1.04)

    def test_m_coeff_places_site_at_d_om(self):
        p = WaterParameters()
        # template molecule at equilibrium geometry
        half = p.theta / 2
        O = np.zeros(3)
        H1 = np.array([p.r_oh * math.sin(half), p.r_oh * math.cos(half), 0.0])
        H2 = np.array([-p.r_oh * math.sin(half), p.r_oh * math.cos(half), 0.0])
        M = O + p.m_coeff * (H1 - O) + p.m_coeff * (H2 - O)
        assert np.linalg.norm(M - O) == pytest.approx(p.d_om, abs=1e-12)

    def test_from_vector(self):
        p = WaterParameters.from_vector([0.2, 3.0, 0.5])
        assert (p.epsilon, p.sigma, p.q_h) == (0.2, 3.0, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            WaterParameters(epsilon=-0.1)
        with pytest.raises(ValueError):
            WaterParameters(sigma=0.0)
        with pytest.raises(ValueError):
            WaterParameters(theta_deg=200.0)


class TestForceCorrectness:
    def _finite_difference_check(self, params, box, pos, atol=2e-4):
        ff = TIP4PForceField(params, pos.shape[0] // 3, cutoff=8.0)
        result = ff.compute(pos, box)
        eps = 1e-5
        rng = np.random.default_rng(0)
        # spot-check 12 random (site, axis) combinations
        for _ in range(12):
            i = int(rng.integers(pos.shape[0]))
            ax = int(rng.integers(3))
            pp, pm = pos.copy(), pos.copy()
            pp[i, ax] += eps
            pm[i, ax] -= eps
            ep = ff.compute(pp, box).potential_energy
            em = ff.compute(pm, box).potential_energy
            fd = -(ep - em) / (2 * eps)
            assert result.forces[i, ax] == pytest.approx(fd, abs=atol), (
                f"site {i} axis {ax}"
            )

    def test_forces_match_finite_differences(self):
        params, box, pos = two_waters()
        self._finite_difference_check(params, box, pos)

    def test_forces_match_fd_at_close_range(self):
        params, box, pos = two_waters(separation=2.8)
        self._finite_difference_check(params, box, pos, atol=5e-4)

    def test_forces_match_fd_with_distorted_geometry(self):
        params, box, pos = two_waters()
        rng = np.random.default_rng(3)
        pos = pos + rng.normal(0, 0.05, pos.shape)
        self._finite_difference_check(params, box, pos, atol=5e-4)

    def test_total_force_is_zero(self):
        """Newton's third law: internal forces sum to zero."""
        params, box, pos = two_waters()
        ff = TIP4PForceField(params, 2, cutoff=8.0)
        result = ff.compute(pos, box)
        np.testing.assert_allclose(result.forces.sum(axis=0), 0.0, atol=1e-10)

    def test_translation_invariance(self):
        params, box, pos = two_waters()
        ff = TIP4PForceField(params, 2, cutoff=8.0)
        e1 = ff.compute(pos, box).potential_energy
        e2 = ff.compute(pos + np.array([3.0, -2.0, 7.0]), box).potential_energy
        assert e1 == pytest.approx(e2, abs=1e-9)

    def test_periodic_image_invariance(self):
        params, box, pos = two_waters()
        ff = TIP4PForceField(params, 2, cutoff=8.0)
        e1 = ff.compute(pos, box).potential_energy
        shifted = pos.copy()
        shifted[3:] += box.lengths  # move molecule 1 by a full box
        e2 = ff.compute(shifted, box).potential_energy
        assert e1 == pytest.approx(e2, abs=1e-9)


class TestEnergyTerms:
    def test_equilibrium_geometry_has_zero_intramolecular_energy(self):
        params, box, pos = two_waters()
        ff = TIP4PForceField(params, 2, cutoff=8.0)
        result = ff.compute(pos, box)
        assert result.energies["bond"] == pytest.approx(0.0, abs=1e-10)
        assert result.energies["angle"] == pytest.approx(0.0, abs=1e-10)

    def test_lj_minimum_near_sigma_times_2_to_sixth(self):
        """Scan the O-O LJ energy: the minimum sits near 2^(1/6) sigma."""
        params = WaterParameters(q_h=0.0)  # charges off isolates LJ
        box = PeriodicBox(30.0)
        ff = TIP4PForceField(params, 2, cutoff=14.0)
        _, _, base = two_waters()
        energies = {}
        for r in np.linspace(3.0, 4.5, 31):
            pos = base.copy()
            pos[3:] += (np.array([r, 0, 0]) - (pos[3] - pos[0]))[None, :]
            energies[r] = ff.compute(pos, box).energies["lj"]
        r_min = min(energies, key=energies.get)
        assert r_min == pytest.approx(2 ** (1 / 6) * params.sigma, abs=0.15)

    def test_opposite_charges_attract(self):
        """Two waters H-bond oriented have negative Coulomb energy."""
        params, box, pos = two_waters()
        ff = TIP4PForceField(params, 2, cutoff=8.0)
        result = ff.compute(pos, box)
        assert "coulomb" in result.energies

    def test_charge_neutrality(self):
        params = WaterParameters()
        ff = TIP4PForceField(params, 4)
        assert ff._charges.sum() == pytest.approx(0.0, abs=1e-12)

    def test_zero_epsilon_kills_lj(self):
        params, box, pos = two_waters()
        p0 = WaterParameters(epsilon=0.0)
        ff = TIP4PForceField(p0, 2, cutoff=8.0)
        assert ff.compute(pos, box).energies["lj"] == 0.0

    def test_zero_charge_kills_coulomb(self):
        params, box, pos = two_waters()
        p0 = WaterParameters(q_h=0.0)
        ff = TIP4PForceField(p0, 2, cutoff=8.0)
        assert ff.compute(pos, box).energies["coulomb"] == 0.0

    def test_energy_shift_continuous_at_cutoff(self):
        """With shift=True, pair energy goes to ~0 as r -> rc."""
        params = WaterParameters(q_h=0.0)
        box = PeriodicBox(30.0)
        rc = 6.0
        ff = TIP4PForceField(params, 2, cutoff=rc, shift=True)
        _, _, base = two_waters()

        def energy_at(r):
            pos = base.copy()
            pos[3:] += (np.array([r, 0, 0]) - (pos[3] - pos[0]))[None, :]
            return ff.compute(pos, box).energies["lj"]

        assert abs(energy_at(rc - 1e-4)) < 1e-5

    def test_beyond_cutoff_no_interaction(self):
        params, box, pos = two_waters(separation=12.0)
        ff = TIP4PForceField(params, 2, cutoff=6.0)
        result = ff.compute(pos, box)
        assert result.energies["lj"] == 0.0
        assert result.energies["coulomb"] == 0.0

    def test_position_shape_validated(self):
        params = WaterParameters()
        ff = TIP4PForceField(params, 2)
        with pytest.raises(ValueError):
            ff.compute(np.zeros((5, 3)), PeriodicBox(10.0))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TIP4PForceField(WaterParameters(), 0)
        with pytest.raises(ValueError):
            TIP4PForceField(WaterParameters(), 2, cutoff=0.0)
