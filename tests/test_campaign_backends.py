"""The pluggable store-backend layer: contract, SQLite engine, migration.

The lease-protocol semantics shared by every engine are covered by the
``any_store`` fixture in ``test_campaign_sharded.py`` and the chaos /
hypothesis suites (via the parametrized ``store_backend`` fixture); this
module covers what is *specific* to the backend layer — the
:class:`StoreBackend` seam itself, SQLite's representation (upsert
dedup, incremental reads, WAL, indexes), engine resolution through
manifests, and ``migrate_store`` (including the acceptance criterion:
a jsonl → sqlite → jsonl round trip reproduces the compacted source
byte-for-byte).
"""

import json
import sqlite3
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import (
    Campaign,
    CampaignSpec,
    ResultStore,
    ShardedResultStore,
    SQLiteStoreBackend,
    StoreBackend,
    migrate_store,
    open_store,
    parse_store_spec,
    read_manifest,
)
from repro.campaign.backends import DB_FILENAME


def small_spec(**overrides) -> CampaignSpec:
    """A fast 2-algorithm x 3-seed sphere grid (6 jobs)."""
    kwargs = dict(
        name="backendtest",
        algorithms=["DET", "PC"],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=[0, 1, 2],
        tau=1e-3,
        walltime=1e3,
        max_steps=40,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestContract:
    def test_every_engine_implements_the_abc(self, tmp_path):
        stores = [
            ResultStore(),
            ResultStore(tmp_path / "r.jsonl"),
            ShardedResultStore(tmp_path / "sharded", n_shards=2),
            SQLiteStoreBackend(tmp_path / "sq"),
        ]
        for store in stores:
            assert isinstance(store, StoreBackend)
        with pytest.raises(TypeError):
            StoreBackend()  # abstract: the seam cannot be instantiated

    def test_engine_identifiers(self, tmp_path):
        assert ResultStore().engine == "jsonl"
        assert ShardedResultStore(tmp_path / "s", n_shards=2).engine == "jsonl"
        assert SQLiteStoreBackend(tmp_path / "q").engine == "sqlite"

    def test_counts_agree_across_engines(self, store_backend):
        store = store_backend()
        for i in range(5):
            store.record({"job_id": f"d{i}", "status": "done"})
        for i in range(3):
            store.record({"job_id": f"f{i}", "status": "failed"})
        store.record({"job_id": "f0", "status": "done"})  # retry overwrote
        assert store.counts() == {"total": 8, "done": 6, "failed": 2}

    def test_parse_store_spec(self):
        assert parse_store_spec(None) == (None, None)
        assert parse_store_spec("jsonl") == ("jsonl", None)
        assert parse_store_spec("jsonl:8") == ("jsonl", 8)
        assert parse_store_spec("sqlite") == ("sqlite", None)
        # store:// specs come back whole — the address is the selection
        assert parse_store_spec("store://db.host:9090") == ("store://db.host:9090", None)
        for bad in ("sqlite:4", "jsonl:x", "jsonl:0", "parquet",
                    "store://nohost", "store://h:notaport", "store://h:99999"):
            with pytest.raises(ValueError):
                parse_store_spec(bad)


class TestSQLiteBackend:
    def test_wal_mode_and_schema_indexes(self, tmp_path):
        store = SQLiteStoreBackend(tmp_path)
        conn = sqlite3.connect(store.path)
        (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        indexes = {row[0] for row in conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )}
        # indexed by job id (the implicit UNIQUE index) and by cell
        assert any("job_id" in name or "autoindex" in name for name in indexes)
        assert "idx_results_cell" in indexes

    def test_upsert_keeps_first_appearance_order(self, tmp_path):
        store = SQLiteStoreBackend(tmp_path)
        store.record({"job_id": "a", "status": "failed"})
        store.record({"job_id": "b", "status": "done"})
        store.record({"job_id": "a", "status": "done"})  # retry corrects a
        assert [r["job_id"] for r in store.records()] == ["a", "b"]
        assert store.records()[0]["status"] == "done"
        assert len(store) == 2  # no duplicate rows accumulate

    def test_incremental_reads_across_instances(self, tmp_path):
        writer = SQLiteStoreBackend(tmp_path)
        reader = SQLiteStoreBackend(tmp_path)
        writer.record({"job_id": "a", "status": "done"})
        assert {r["job_id"] for r in reader.records()} == {"a"}
        writer.record({"job_id": "b", "status": "done"})
        writer.record({"job_id": "a", "status": "failed"})  # mutation, not insert
        records = {r["job_id"]: r for r in reader.records()}
        assert set(records) == {"a", "b"}
        assert records["a"]["status"] == "failed"  # the update was folded in

    def test_returned_records_are_isolated_copies(self, tmp_path):
        store = SQLiteStoreBackend(tmp_path)
        store.record({"job_id": "a", "status": "done", "result": {"v": 1}})
        store.records()[0]["result"]["v"] = 999
        assert store.records()[0]["result"]["v"] == 1

    def test_cell_index_populated_from_job_payload(self, tmp_path):
        store = SQLiteStoreBackend(tmp_path)
        job = small_spec().expand()[0]
        store.record({"job_id": job.job_id, "status": "done",
                      "job": job.to_dict(), "result": None})
        store.record({"job_id": "synthetic", "status": "done"})
        rows = dict(sqlite3.connect(store.path).execute(
            "SELECT job_id, cell FROM results"
        ).fetchall())
        assert rows["synthetic"] is None
        assert json.loads(rows[job.job_id]) == list(job.cell)

    def test_counts_by_cell_matches_python_side_aggregation(self, tmp_path):
        store = SQLiteStoreBackend(tmp_path)
        jobs = small_spec().expand()  # 2 cells x 3 seeds
        for i, job in enumerate(jobs):
            status = "failed" if i == 0 else "done"
            store.record({"job_id": job.job_id, "status": status,
                          "job": job.to_dict(), "result": None})
        store.record({"job_id": jobs[0].job_id, "status": "done",
                      "job": jobs[0].to_dict(), "result": None})  # retry wins
        store.record({"job_id": "synthetic", "status": "done"})  # no cell
        by_cell = store.counts_by_cell()
        assert set(by_cell) == {job.cell for job in jobs}
        for counts in by_cell.values():
            assert counts == {"total": 3, "done": 3, "failed": 0}

    def test_concurrent_instances_partition_claims(self, tmp_path):
        """Two store instances, two threads, overlapping batches: the
        BEGIN IMMEDIATE transaction partitions them (the flock analogue)."""
        ids = [f"j{i}" for i in range(40)]
        grants = [None, None]
        barrier = threading.Barrier(2)

        def claim(slot):
            store = SQLiteStoreBackend(tmp_path)
            barrier.wait()
            grants[slot] = store.claim(ids, f"r{slot}", ttl=60)

        threads = [threading.Thread(target=claim, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert set(grants[0]) & set(grants[1]) == set()
        assert set(grants[0]) | set(grants[1]) == set(ids)

    def test_compact_prunes_expired_leases_and_shrinks(self, tmp_path):
        store = SQLiteStoreBackend(tmp_path)
        now = time.time()
        for i in range(50):
            store.record({"job_id": f"j{i}", "status": "done",
                          "result": {"pad": "x" * 200}})
        store.claim(["live"], "r1", ttl=3600, now=now)
        store.claim(["expired"], "r1", ttl=1, now=now - 100)
        before = store.compact(now=now)
        assert before.n_records_before == before.n_records_after == 50
        assert set(store.leases(now=now)) == {"live"}
        # mutual exclusion survived compaction
        assert store.claim(["live"], "r2", ttl=60, now=now) == []
        # the expired lease's job is requeueable
        assert store.claim(["expired"], "r2", ttl=60, now=now) == ["expired"]

    def test_manifest_pins_the_engine(self, tmp_path):
        SQLiteStoreBackend(tmp_path)
        manifest = read_manifest(tmp_path)
        assert manifest["engine"] == "sqlite"
        assert (tmp_path / DB_FILENAME).exists()
        with pytest.raises(ValueError, match="migrate-store"):
            ShardedResultStore(tmp_path, n_shards=4)
        ShardedResultStore(tmp_path / "j", n_shards=2)
        with pytest.raises(ValueError, match="migrate-store"):
            SQLiteStoreBackend(tmp_path / "j")


class TestOpenStoreEngines:
    def test_engine_resolution(self, tmp_path):
        # fresh + engine=sqlite -> sqlite store, manifest written
        store = open_store(tmp_path / "a", engine="sqlite")
        assert isinstance(store, SQLiteStoreBackend)
        # manifest wins on re-open with no arguments
        assert isinstance(open_store(tmp_path / "a"), SQLiteStoreBackend)
        # conflicting explicit engine is a clean error
        with pytest.raises(ValueError, match="migrate-store"):
            open_store(tmp_path / "a", engine="jsonl")
        open_store(tmp_path / "b", shards=2)
        with pytest.raises(ValueError, match="migrate-store"):
            open_store(tmp_path / "b", engine="sqlite")
        # sqlite + shards is contradictory
        with pytest.raises(ValueError, match="shard count"):
            open_store(tmp_path / "c", engine="sqlite", shards=4)

    def test_legacy_directory_migrates_to_sqlite_in_place(self, tmp_path):
        legacy = ResultStore(tmp_path / "results.jsonl")
        for i in range(6):
            legacy.record({"job_id": f"j{i}", "status": "done", "result": {"v": i}})
        expected = {r["job_id"]: r for r in legacy.records()}
        store = open_store(tmp_path, engine="sqlite")
        assert isinstance(store, SQLiteStoreBackend)
        assert {r["job_id"]: r for r in store.records()} == expected
        assert not (tmp_path / "results.jsonl").exists()
        assert (tmp_path / "results.jsonl.migrated").exists()
        # idempotent: re-resolving folds nothing new
        again = open_store(tmp_path)
        assert {r["job_id"]: r for r in again.records()} == expected


class TestMigrateStore:
    def _run_campaign(self, directory, **campaign_kwargs):
        campaign = Campaign(directory, spec=small_spec(), **campaign_kwargs)
        campaign.run()
        return campaign

    def test_round_trip_jsonl_sqlite_jsonl_byte_identical(self, tmp_path):
        """Acceptance: migrating jsonl -> sqlite -> jsonl reproduces the
        compacted source file byte-for-byte."""
        src = self._run_campaign(tmp_path / "src")
        src.compact()
        source_bytes = (tmp_path / "src" / "results.jsonl").read_bytes()

        migrate_store(tmp_path / "src", tmp_path / "mid", engine="sqlite")
        migrate_store(tmp_path / "mid", tmp_path / "dst", engine="jsonl")
        Campaign(tmp_path / "dst").compact()
        assert (tmp_path / "dst" / "results.jsonl").read_bytes() == source_bytes

    def test_migrated_campaign_aggregates_identically(self, tmp_path):
        src = self._run_campaign(tmp_path / "src", store="sqlite")
        _, n = migrate_store(tmp_path / "src", tmp_path / "dst", engine="jsonl",
                             shards=4)
        assert n == 6
        dst = Campaign(tmp_path / "dst")  # spec.json travelled along
        assert isinstance(dst.store, ShardedResultStore) and dst.store.n_shards == 4
        assert dst.summary() == src.summary()
        assert dst.status()["done"] == 6
        cmp_a, cmp_b = src.compare("DET", "PC"), dst.compare("DET", "PC")
        assert cmp_a.log_ratios.tolist() == cmp_b.log_ratios.tolist()

    def test_resharding_via_fresh_directory(self, tmp_path):
        src = self._run_campaign(tmp_path / "src", shards=2)
        migrate_store(tmp_path / "src", tmp_path / "dst", engine="jsonl",
                      shards=8)
        dst = Campaign(tmp_path / "dst")
        assert dst.store.n_shards == 8
        assert dst.store.completed_ids() == src.store.completed_ids()
        assert dst.summary() == src.summary()

    def test_leases_are_not_migrated(self, tmp_path):
        store = open_store(tmp_path / "src", engine="sqlite")
        store.record({"job_id": "a", "status": "done"})
        store.claim(["b"], "runner", ttl=3600)
        dst, n = migrate_store(tmp_path / "src", tmp_path / "dst", engine="jsonl")
        assert n == 1
        assert dst.leases() == {}
        assert dst.claim(["b"], "someone-else", ttl=60) == ["b"]

    def test_migrate_is_idempotent(self, tmp_path):
        self._run_campaign(tmp_path / "src")
        _, first = migrate_store(tmp_path / "src", tmp_path / "dst", engine="sqlite")
        _, again = migrate_store(tmp_path / "src", tmp_path / "dst", engine="sqlite")
        assert first == again == 6
        assert len(open_store(tmp_path / "dst")) == 6

    def test_migrate_errors(self, tmp_path):
        with pytest.raises(ValueError, match="no campaign store"):
            migrate_store(tmp_path / "empty", tmp_path / "dst", engine="sqlite")
        self._run_campaign(tmp_path / "src")
        with pytest.raises(ValueError, match="fresh destination"):
            migrate_store(tmp_path / "src", tmp_path / "src", engine="sqlite")


class TestCampaignStoreSelection:
    def test_campaign_sqlite_lifecycle_and_resume(self, tmp_path):
        directory = tmp_path / "camp"
        first = Campaign(directory, spec=small_spec(), store="sqlite")
        report = first.run(max_jobs=2)
        assert report.n_done == 2
        reopened = Campaign(directory)  # engine auto-detected from manifest
        assert isinstance(reopened.store, SQLiteStoreBackend)
        assert reopened.status()["engine"] == "sqlite"
        report = reopened.run()
        assert report.n_done == 4 and report.n_skipped == 2
        # parity with a serial jsonl run of the same spec
        jsonl = Campaign(tmp_path / "flat", spec=small_spec())
        jsonl.run()
        assert jsonl.summary() == reopened.summary()

    def test_store_spec_and_shards_must_agree(self, tmp_path):
        with pytest.raises(ValueError, match="conflicting shard counts"):
            Campaign(tmp_path / "x", spec=small_spec(), shards=2, store="jsonl:4")
        # agreeing spellings are fine
        campaign = Campaign(tmp_path / "y", spec=small_spec(), shards=4,
                            store="jsonl:4")
        assert campaign.store.n_shards == 4
