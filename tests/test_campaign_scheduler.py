"""Multi-tenant scheduling: DRR policy properties and the serve loop.

The policy half (:class:`CampaignScheduler`) is tested as pure math —
hypothesis drives random tenant populations through thousands of dispatch
slots and checks the fairness contract (proportional share, bounded
starvation, per-tenant FIFO within a priority band).  The serve half
(:class:`MultiCampaignMaster`) is tested end to end over the same-host
transports: two tenants with disjoint grids drain through one fleet,
constraint placement is proven from the execution audit log's worker
column, and completion is exactly-once per job.  The tcp flavor of the
same scenario (heterogeneous ``mw-worker --caps`` processes) lives in
CI's scheduler-smoke job.
"""

import math
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    Campaign,
    CampaignScheduler,
    CampaignSpec,
    JOB_AUDIT_ENV,
    MultiCampaignMaster,
    serve_status,
)
from repro.telemetry import Telemetry

NULL = Telemetry(enabled=False)

drr_settings = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# A tenant population: 2-6 tenants with weights spanning two orders of
# magnitude — wide enough to expose starvation of light tenants.
weights_strategy = st.lists(
    st.sampled_from([0.1, 0.5, 1.0, 2.0, 5.0, 10.0]), min_size=2, max_size=6
)


def saturated_scheduler(weights, backlog=4000):
    """A scheduler whose every tenant always has queued work."""
    sched = CampaignScheduler(telemetry=NULL)
    names = [f"t{i}" for i in range(len(weights))]
    for name, weight in zip(names, weights):
        sched.add_tenant(name, weight=weight)
        for k in range(backlog):
            sched.enqueue(name, (name, k))
    return sched, names


class TestDeficitRoundRobin:
    @given(weights=weights_strategy)
    @drr_settings
    def test_share_proportional_to_weight(self, weights):
        """Over S slots every saturated tenant wins S*w/W slots, within a
        slack independent of S (here: n_tenants + 1 — the deficit scheme
        is *exactly* proportional up to rounding)."""
        sched, names = saturated_scheduler(weights)
        total = sum(weights)
        slots = 1000
        wins = Counter()
        for _ in range(slots):
            name, _ = sched.select()
            sched.mark_complete(name)
            wins[name] += 1
        for name, weight in zip(names, weights):
            expected = slots * weight / total
            assert abs(wins[name] - expected) <= len(weights) + 1

    @given(weights=weights_strategy)
    @drr_settings
    def test_no_tenant_starves(self, weights):
        """The gap between consecutive wins of a saturated tenant is
        bounded by 2*ceil(W/w) + 2n slots — bounded starvation, however
        light the tenant (empirical worst observed: 1.5 * (W/w + n))."""
        sched, names = saturated_scheduler(weights)
        total = sum(weights)
        bound = {
            name: 2 * math.ceil(total / weight) + 2 * len(weights)
            for name, weight in zip(names, weights)
        }
        last = {name: -1 for name in names}
        for slot in range(1500):
            name, _ = sched.select()
            sched.mark_complete(name)
            assert slot - last[name] <= bound[name], (
                f"{name} waited {slot - last[name]} slots (bound {bound[name]})"
            )
            last[name] = slot

    @given(
        items=st.lists(
            st.tuples(st.sampled_from(["a", "b"]), st.sampled_from(["high", "low"])),
            min_size=1,
            max_size=60,
        )
    )
    @drr_settings
    def test_per_tenant_fifo_within_band(self, items):
        """Whatever the interleaving across tenants, each tenant's items
        dispatch in arrival order within a band, and its high band fully
        drains before its low band."""
        sched = CampaignScheduler(telemetry=NULL)
        for name in ("a", "b"):
            sched.add_tenant(name)
        arrivals = {("a", "high"): [], ("a", "low"): [],
                    ("b", "high"): [], ("b", "low"): []}
        for seq, (name, band) in enumerate(items):
            sched.enqueue(name, seq, priority=band)
            arrivals[(name, band)].append(seq)
        dispatched = {"a": [], "b": []}
        while True:
            selected = sched.select()
            if selected is None:
                break
            name, seq = selected
            dispatched[name].append(seq)
            sched.mark_complete(name)
        for name in ("a", "b"):
            expected = arrivals[(name, "high")] + arrivals[(name, "low")]
            assert dispatched[name] == expected

    def test_inflight_cap_blocks_then_releases(self):
        sched = CampaignScheduler(telemetry=NULL)
        sched.add_tenant("capped", max_inflight=2)
        for k in range(4):
            sched.enqueue("capped", k)
        assert sched.select()[1] == 0
        assert sched.select()[1] == 1
        assert sched.select() is None  # at the cap
        sched.mark_complete("capped")
        assert sched.select()[1] == 2

    def test_unplaceable_head_blocks_only_its_tenant(self):
        """A tenant whose head item can't place earns no credit and the
        other tenants keep dispatching (no head-of-line blocking across
        tenants)."""
        sched = CampaignScheduler(telemetry=NULL)
        sched.add_tenant("pinned")
        sched.add_tenant("free")
        sched.enqueue("pinned", "needs-md")
        for k in range(3):
            sched.enqueue("free", k)
        grants = [sched.select(lambda item: item != "needs-md") for _ in range(4)]
        assert [g[1] for g in grants[:3]] == [0, 1, 2]
        assert grants[3] is None  # only the unplaceable head remains
        assert sched.select(lambda item: True) == ("pinned", "needs-md")

    def test_blocked_tenant_banks_no_burst(self):
        """Slots a capped tenant sat out earn it nothing: once unblocked
        it resumes at its weight share instead of monopolizing the fleet."""
        sched = CampaignScheduler(telemetry=NULL)
        sched.add_tenant("a", max_inflight=1)
        sched.add_tenant("b")
        for k in range(100):
            sched.enqueue("a", k)
            sched.enqueue("b", k)
        name, _ = sched.select()
        while True:  # drain slots until "a" is at its cap
            selected = sched.select()
            if selected is None or sched.tenants["a"].inflight == 1:
                break
        for _ in range(50):  # "a" capped: all slots go to "b"
            selected = sched.select()
            assert selected is None or selected[0] == "b"
            if selected:
                sched.mark_complete("b")
        assert sched.tenants["a"].deficit <= 1.0  # no banked credit

    def test_validation(self):
        sched = CampaignScheduler(telemetry=NULL)
        sched.add_tenant("t")
        with pytest.raises(ValueError, match="already registered"):
            sched.add_tenant("t")
        with pytest.raises(ValueError, match="weight"):
            sched.add_tenant("w", weight=0)
        with pytest.raises(ValueError, match="max_inflight"):
            sched.add_tenant("q", max_inflight=0)
        with pytest.raises(ValueError, match="priority"):
            sched.enqueue("t", "x", priority="urgent")
        with pytest.raises(ValueError, match="no inflight"):
            sched.mark_complete("t")


def tenant_spec(name, algorithm, **overrides):
    """A small, fast grid; distinct algorithms keep tenant grids disjoint."""
    kwargs = dict(
        name=name,
        algorithms=[algorithm],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=list(range(6)),
        tau=1e-3,
        walltime=1e3,
        max_steps=10,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestMultiCampaignMaster:
    def serve_two_tenants(self, tmp_path, monkeypatch, **master_kwargs):
        """Drain a constrained + an unconstrained tenant over one fleet."""
        audit = tmp_path / "audit.log"
        monkeypatch.setenv(JOB_AUDIT_ENV, str(audit))
        spec_a = tenant_spec("tenant-a", "DET", constraints=["md"],
                             priority="high", weight=2.0)
        spec_b = tenant_spec("tenant-b", "PC")
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        Campaign(dir_a, spec=spec_a)
        Campaign(dir_b, spec=spec_b)
        master = MultiCampaignMaster(
            [dir_a, dir_b],
            transport="threaded",
            max_workers=3,
            worker_caps={1: ["md"], 2: ["md", "fast"]},  # rank 3: no caps
            batch_size=4,
            telemetry=NULL,
            **master_kwargs,
        )
        reports = master.serve(timeout=120)
        return spec_a, spec_b, reports, audit, dir_a, dir_b

    def test_drains_both_tenants_with_constraint_placement(
        self, tmp_path, monkeypatch
    ):
        spec_a, spec_b, reports, audit, dir_a, dir_b = self.serve_two_tenants(
            tmp_path, monkeypatch
        )
        assert reports["tenant-a"].n_done == 6
        assert reports["tenant-b"].n_done == 6
        assert not reports["tenant-a"].interrupted
        # placement: every constrained execution names an md-capable rank
        ids_a = {j.job_id for j in spec_a.expand()}
        entries = [line.split() for line in audit.read_text().splitlines()]
        for job_id, _run, _span, worker in entries:
            if job_id in ids_a:
                rank, _, caps = worker.partition(":")
                assert rank in ("1", "2"), f"constrained job on rank {rank}"
                assert "md" in caps.split(",")
        # exactly-once per job, across both tenants
        counts = Counter(entry[0] for entry in entries)
        assert len(counts) == 12 and all(n == 1 for n in counts.values())
        # both stores are complete
        assert Campaign(dir_a).store.completed_ids() == ids_a
        assert Campaign(dir_b).store.completed_ids() == {
            j.job_id for j in spec_b.expand()
        }

    def test_serve_is_resumable_and_idempotent(self, tmp_path, monkeypatch):
        """A second serve over drained directories does nothing."""
        *_, dir_a, dir_b = self.serve_two_tenants(tmp_path, monkeypatch)
        master = MultiCampaignMaster([dir_a, dir_b], transport="inproc",
                                     max_workers=1, telemetry=NULL)
        reports = master.serve(timeout=60)
        assert reports["tenant-a"].n_skipped == 6
        assert reports["tenant-a"].n_run == 0
        assert reports["tenant-b"].n_run == 0

    def test_quota_override_caps_inflight(self, tmp_path, monkeypatch):
        """--quota NAME=1 serializes a tenant without blocking the other."""
        spec_a, spec_b, reports, *_ = self.serve_two_tenants(
            tmp_path, monkeypatch, quotas={"tenant-a": 1}
        )
        assert reports["tenant-a"].n_done == 6
        assert reports["tenant-b"].n_done == 6

    def test_unknown_override_name_rejected(self, tmp_path):
        Campaign(tmp_path / "a", spec=tenant_spec("only", "DET"))
        with pytest.raises(ValueError, match="match no tenant"):
            MultiCampaignMaster([tmp_path / "a"], weights={"ghost": 2.0},
                                telemetry=NULL)

    def test_duplicate_tenant_names_rejected(self, tmp_path):
        Campaign(tmp_path / "a", spec=tenant_spec("same", "DET"))
        Campaign(tmp_path / "b", spec=tenant_spec("same", "PC"))
        with pytest.raises(ValueError, match="duplicate tenant name"):
            MultiCampaignMaster([tmp_path / "a", tmp_path / "b"],
                                telemetry=NULL)

    def test_unsatisfiable_constraints_fail_not_hang(self, tmp_path):
        """On a static fleet with no capable worker, constrained jobs fail
        (recorded as failed) instead of waiting forever."""
        spec = tenant_spec("pinned", "DET", constraints=["gpu"])
        directory = tmp_path / "camp"
        Campaign(directory, spec=spec)
        master = MultiCampaignMaster([directory], transport="inproc",
                                     max_workers=2, telemetry=NULL)
        reports = master.serve(timeout=60)
        assert reports["pinned"].n_failed == 6
        records = list(Campaign(directory).store.records())
        assert all("constraints" in (r["error"] or "") for r in records)

    def test_serve_status_reports_policy_fields(self, tmp_path):
        Campaign(tmp_path / "a", spec=tenant_spec(
            "tenant-a", "DET", constraints=["md"], weight=2.0, max_inflight=3,
        ))
        rows = serve_status([tmp_path / "a"])
        assert rows[0]["name"] == "tenant-a"
        assert rows[0]["weight"] == 2.0
        assert rows[0]["max_inflight"] == 3
        assert rows[0]["constraints"] == ["md"]
        assert rows[0]["pending"] == 6
