"""Shared store-engine helpers for backend-parity tests.

A module (not conftest) so test files can import it by a unique name —
``import conftest`` is ambiguous from the repo root, where
``benchmarks/conftest.py`` also exists.
"""

from pathlib import Path

#: Store engines every backend-parity test runs against: the legacy
#: single JSONL file, the sharded JSONL layout, and the SQLite database.
STORE_BACKENDS = ("jsonl", "sharded", "sqlite")


def open_store_backend(engine, directory, n_shards=3):
    """Open a store instance of ``engine`` over ``directory``.

    Shared by the ``store_backend`` fixture and the hypothesis store-op
    properties (which build fresh stores per example, where a
    function-scoped fixture cannot).  Calling it again on the same
    directory reopens the same underlying store — two instances model
    two runner processes.
    """
    from repro.campaign import ResultStore, ShardedResultStore, SQLiteStoreBackend

    directory = Path(directory)
    if engine == "jsonl":
        return ResultStore(directory / "results.jsonl")
    if engine == "sharded":
        return ShardedResultStore(directory, n_shards=n_shards)
    if engine == "sqlite":
        return SQLiteStoreBackend(directory)
    raise ValueError(f"unknown store backend {engine!r}")
