"""Tests for the TCP socket transport: framing, handshake, cross-host flows.

Workers run as in-process threads (same protocol as ``python -m repro
mw-worker``, minus the process boundary) so the suite stays fast; the
subprocess-level acceptance path is covered in test_campaign_tcp.py.
"""

import socket
import threading
import time

import pytest

from repro.mw import MWDriver
from repro.mw.codec import CodecError, encode_frame
from repro.mw.messages import (
    MSG_HELLO,
    MSG_SHUTDOWN,
    MSG_TASK,
    MSG_WELCOME,
    Message,
    encode_message,
)
from repro.mw.tcp import (
    PROTOCOL_VERSION,
    TcpWorkerEndpoint,
    parse_tcp_url,
    recv_frame,
    run_worker,
    send_frame,
)


def square(work, ctx):
    return work * work


def slow_square(work, ctx):
    time.sleep(0.05)
    return work * work


def tcp_driver(executor, n_workers=2, **kwargs):
    """A driver listening on an ephemeral localhost port, fast heartbeats."""
    options = {"heartbeat_interval": 0.1}
    options.update(kwargs.pop("transport_options", {}))
    return MWDriver(
        executor,
        n_workers=n_workers,
        backend="tcp://127.0.0.1:0",
        transport_options=options,
        **kwargs,
    )


def start_worker(address, executor, **kwargs):
    """One endpoint worker on a thread; returns (thread, result-holder)."""
    holder = {}

    def run():
        try:
            holder["stats"] = TcpWorkerEndpoint(address, executor=executor, **kwargs).run()
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            holder["error"] = exc

    t = threading.Thread(target=run, daemon=True)
    t.start()
    return t, holder


class TestUrlParsing:
    def test_host_port(self):
        assert parse_tcp_url("tcp://10.0.0.5:7777") == ("10.0.0.5", 7777)

    def test_ephemeral_port_allowed(self):
        assert parse_tcp_url("tcp://0.0.0.0:0") == ("0.0.0.0", 0)

    @pytest.mark.parametrize("bad", [
        "127.0.0.1:7777", "tcp://", "tcp://host", "tcp://host:port",
        "tcp://host:70000", "tcp://:5555",
    ])
    def test_malformed_urls_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_tcp_url(bad)

    def test_worker_rejects_ephemeral_master_port(self):
        with pytest.raises(ValueError, match="explicit master port"):
            TcpWorkerEndpoint("tcp://127.0.0.1:0")


class TestSocketFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            msg = Message(tag=MSG_TASK, sender=0,
                          payload={"task_id": 3, "work": [1.0, 2.0]})
            send_frame(a, msg)
            assert recv_frame(b) == msg
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises_codec_error(self):
        """EOF mid-frame must raise, never hang or return partial data."""
        a, b = socket.socketpair()
        try:
            frame = encode_frame(encode_message(Message(tag=MSG_TASK, sender=0,
                                                        payload={"x": 1})))
            a.sendall(frame[:-3])
            a.close()
            with pytest.raises(CodecError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_header_raises_codec_error(self):
        import struct

        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 2**30 + 1) + b"xxxx")
            with pytest.raises(CodecError, match="exceeds"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestEndToEnd:
    def test_two_workers_complete_all_tasks(self):
        with tcp_driver(square) as driver:
            tasks = [driver.submit(i) for i in range(10)]
            addr = driver.transport.address
            t1, h1 = start_worker(addr, square)
            t2, h2 = start_worker(addr, square)
            driver.wait_all(timeout=30)
            assert [t.result for t in tasks] == [i * i for i in range(10)]
            assert driver.stats()["live_workers"] >= 1
        # master shutdown fans out to both workers; they exit cleanly
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert not t1.is_alive() and not t2.is_alive()
        executed = [h.get("stats", {}).get("executed", 0) for h in (h1, h2)]
        assert sum(executed) == 10

    def test_worker_joining_after_wait_all_starts_receives_work(self):
        """Late joiners: the master waits, a worker shows up, work flows."""
        with tcp_driver(square, n_workers=1) as driver:
            tasks = [driver.submit(i) for i in range(3)]
            addr = driver.transport.address

            def late_join():
                time.sleep(0.4)
                start_worker(addr, square)

            threading.Thread(target=late_join, daemon=True).start()
            driver.wait_all(timeout=30)
            assert [t.result for t in tasks] == [0, 1, 4]

    def test_worker_errors_are_retried_then_failed(self):
        def failing(work, ctx):
            raise RuntimeError("boom")

        with tcp_driver(failing, n_workers=1, max_retries=1) as driver:
            task = driver.submit(1)
            start_worker(driver.transport.address, failing)
            driver.wait_all(timeout=30)
            assert task.failed
            assert "boom" in task.error
            assert task.attempts == 2

    def test_worker_rng_streams_match_inproc(self):
        """Rank seed streams travel the wire intact (entropy + spawn key)."""
        def draw(work, ctx):
            return float(ctx.rng.normal())

        def inproc_draws():
            with MWDriver(draw, n_workers=2, backend="inproc", seed=5) as d:
                ts = [d.submit(None, affinity=r) for r in (1, 2)]
                d.wait_all()
                return sorted(t.result for t in ts)

        with tcp_driver(draw, seed=5) as driver:
            t1, _ = start_worker(driver.transport.address, draw)
            t2, _ = start_worker(driver.transport.address, draw)
            # both ranks must be connected before dispatch so each affinity
            # lands on its own rank (otherwise the draws come from one stream)
            deadline = time.monotonic() + 10
            while len(driver.transport.stats()["connected"]) < 2 \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            tasks = [driver.submit(None, affinity=r) for r in (1, 2)]
            driver.wait_all(timeout=30)
            assert sorted(t.result for t in tasks) == inproc_draws()


class TestCrashRecovery:
    def test_worker_crash_mid_task_triggers_requeue(self):
        """A worker whose connection drops mid-task has it requeued."""
        with tcp_driver(slow_square, n_workers=2) as driver:
            addr = driver.transport.address
            tasks = [driver.submit(i) for i in range(6)]

            # a misbehaving worker: handshakes, reads one task, drops dead
            def crashing_worker():
                sock = socket.create_connection(
                    (driver.transport.host, driver.transport.port), timeout=5)
                send_frame(sock, Message(tag=MSG_HELLO, sender=0,
                                         payload={"version": PROTOCOL_VERSION}))
                welcome = recv_frame(sock)
                assert welcome.tag == MSG_WELCOME
                task = recv_frame(sock)  # receive work, never answer
                assert task.tag == MSG_TASK
                sock.close()  # crash

            crash = threading.Thread(target=crashing_worker, daemon=True)
            crash.start()
            deadline = time.monotonic() + 10
            while not driver.transport.stats()["connected"] \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            survivor, _ = start_worker(addr, slow_square)
            driver.wait_all(timeout=30)
            crash.join(timeout=10)
            assert all(t.done for t in tasks)
            assert [t.result for t in tasks] == [i * i for i in range(6)]
            # the dropped task was re-attempted
            assert any(t.attempts > 1 for t in tasks)

    def test_silent_worker_is_presumed_dead_by_heartbeat_timeout(self):
        """A connected-but-silent peer is swept after the heartbeat window."""
        with tcp_driver(square, n_workers=2,
                        transport_options={"heartbeat_interval": 0.05,
                                           "heartbeat_timeout": 0.3}) as driver:
            addr = driver.transport.address
            tasks = [driver.submit(i) for i in range(4)]

            # handshake, then go completely silent (no heartbeats, no reads)
            sock = socket.create_connection(
                (driver.transport.host, driver.transport.port), timeout=5)
            send_frame(sock, Message(tag=MSG_HELLO, sender=0,
                                     payload={"version": PROTOCOL_VERSION}))
            assert recv_frame(sock).tag == MSG_WELCOME
            try:
                start_worker(addr, square)
                driver.wait_all(timeout=30)
                assert [t.result for t in tasks] == [i * i for i in range(4)]
            finally:
                sock.close()

    def test_replacement_worker_takes_over_the_dead_rank(self):
        """A rank freed by a dead worker is reissued to the next joiner —
        the paper's "restarted on the same processors"."""
        with tcp_driver(square, n_workers=1) as driver:
            addr = driver.transport.address
            task = driver.submit(3)
            t1, h1 = start_worker(addr, square)
            driver.wait_all(timeout=30)
            assert task.result == 9
            rank1 = None
            # tear the first worker down by closing from the master side
            with driver.transport._lock:
                sock = driver.transport._conns[1]
            sock.close()
            t1.join(timeout=10)
            rank1 = h1["stats"]["rank"] if "stats" in h1 else None
            # wait until the master notices the death
            deadline = time.monotonic() + 10
            while driver.transport.stats()["connected"] and time.monotonic() < deadline:
                driver._poll_transport()
                time.sleep(0.05)
            t2, h2 = start_worker(addr, square)
            task2 = driver.submit(4)
            driver.wait_all(timeout=30)
            assert task2.result == 16
            assert driver.transport.stats()["connected"] == [1]
            assert rank1 == 1


class TestShutdownAndRefusal:
    def test_master_shutdown_closes_all_sockets(self):
        driver = tcp_driver(square)
        addr = driver.transport.address
        t1, h1 = start_worker(addr, square)
        t2, h2 = start_worker(addr, square)
        deadline = time.monotonic() + 10
        while len(driver.transport.stats()["connected"]) < 2 \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        driver.shutdown()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert not t1.is_alive() and not t2.is_alive()
        assert h1["stats"]["executed"] == 0 and h2["stats"]["executed"] == 0
        # every master-side socket is gone
        assert driver.transport.stats()["connected"] == []
        # (no "connect now fails" probe here: a connect to a closed ephemeral
        # port from the same host can TCP-self-connect and appear open)

    def test_excess_worker_is_turned_away(self):
        with tcp_driver(square, n_workers=1) as driver:
            addr = driver.transport.address
            t1, _ = start_worker(addr, square)
            deadline = time.monotonic() + 10
            while not driver.transport.stats()["connected"] \
                    and time.monotonic() < deadline:
                time.sleep(0.05)
            stats = run_worker(addr, executor=square, connect_timeout=5)
            assert stats["refused"]
            assert stats["rank"] is None

    def test_version_mismatch_is_refused(self):
        with tcp_driver(square, n_workers=1) as driver:
            sock = socket.create_connection(
                (driver.transport.host, driver.transport.port), timeout=5)
            try:
                send_frame(sock, Message(tag=MSG_HELLO, sender=0,
                                         payload={"version": 999}))
                reply = recv_frame(sock)
                assert reply.tag == MSG_SHUTDOWN
                assert "version" in reply.payload["reason"]
            finally:
                sock.close()

    def test_worker_without_any_executor_errors_cleanly(self):
        """No local override and no master wire spec -> a loud ValueError."""
        unshippable = lambda work, ctx: work  # noqa: E731 - deliberately unimportable

        with tcp_driver(unshippable, n_workers=1) as driver:
            with pytest.raises(ValueError, match="--executor"):
                run_worker(driver.transport.address, connect_timeout=5)

    def test_connect_timeout_raises_oserror(self):
        # nothing listens on this port (bound-then-closed)
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            run_worker(f"tcp://127.0.0.1:{port}", executor=square,
                       connect_timeout=0.5)


class TestCapabilityHandshake:
    def test_worker_caps_declared_in_hello_reach_the_master(self):
        """A worker's --caps vector rides its hello and gates placement:
        constrained tasks land only on workers whose caps cover them."""

        def rank_reporter(work, ctx):
            return ctx.rank

        with tcp_driver(rank_reporter, n_workers=2) as driver:
            addr = driver.transport.address
            t1, h1 = start_worker(addr, rank_reporter, caps=["md", "fast"])
            t2, h2 = start_worker(addr, rank_reporter)
            constrained = [driver.submit(None, constraints=["md"])
                           for _ in range(4)]
            plain = [driver.submit(None) for _ in range(4)]
            driver.wait_all(timeout=30)
            # whichever rank the caps worker got, all constrained tasks
            # ran there — and its caps surface in stats/utilization
            caps_by_rank = driver.transport.stats()["caps"]
            assert list(caps_by_rank.values()) == [["fast", "md"]]
            (md_rank,) = caps_by_rank
            assert {t.result for t in constrained} == {md_rank}
            assert all(t.done for t in plain)
            rows = {r["rank"]: r["caps"] for r in driver.utilization()}
            assert rows[md_rank] == ["fast", "md"]
        t1.join(timeout=10)
        t2.join(timeout=10)

    def test_capless_worker_declares_nothing(self):
        """An old-style worker (no caps) still handshakes fine — the caps
        field is additive and absent means the empty vector."""
        with tcp_driver(square, n_workers=1) as driver:
            addr = driver.transport.address
            t, holder = start_worker(addr, square)
            task = driver.submit(3)
            driver.wait_all(timeout=30)
            assert task.result == 9
            assert driver.transport.stats()["caps"] == {}
            assert driver.worker_caps(1) == frozenset()
        t.join(timeout=10)
