"""Tests for the virtual cluster substrate."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    EventSimulator,
    JobRequest,
    NetworkModel,
    Node,
    PBSScheduler,
    ProcessorAllocation,
    SimulatedMWPool,
    allocate_processors,
    machinefile,
    parse_machinefile,
    write_machinefile,
)
from repro.core import MaxStepsTermination, NelderMead
from repro.functions import Rosenbrock, initial_simplex
from repro.noise import StochasticFunction


class TestNodesAndCluster:
    def test_node_validation(self):
        with pytest.raises(ValueError):
            Node("", 8)
        with pytest.raises(ValueError):
            Node("n", 0)

    def test_cluster_total_cores(self):
        c = Cluster([Node("a", 8), Node("b", 4)])
        assert c.total_cores == 12
        assert len(c) == 2

    def test_homogeneous_builder(self):
        c = Cluster.homogeneous(3, cores_per_node=2)
        assert c.total_cores == 6
        assert [n.name for n in c] == ["node0000", "node0001", "node0002"]

    def test_palmetto_preset_shape(self):
        c = Cluster.palmetto(n_nodes=10)
        assert all(n.cores == 8 for n in c)
        assert c.total_cores == 80

    def test_paper_full_palmetto(self):
        """§4.1: 1541 nodes x 8 cores = 12328 compute cores."""
        c = Cluster.palmetto()
        assert c.total_cores == 12328

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Cluster([Node("a"), Node("a")])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])


class TestMachinefile:
    def test_eight_entries_per_node(self):
        c = Cluster.palmetto(n_nodes=2)
        entries = machinefile(c)
        assert len(entries) == 16
        assert entries[:8] == ["palmetto0000"] * 8

    def test_write_and_parse_roundtrip(self, tmp_path):
        c = Cluster.homogeneous(2, cores_per_node=3)
        path = write_machinefile(c, tmp_path / "machinefile")
        assert parse_machinefile(path) == machinefile(c)

    def test_parse_rejects_empty(self, tmp_path):
        p = tmp_path / "mf"
        p.write_text("\n\n")
        with pytest.raises(ValueError):
            parse_machinefile(p)


class TestProcessorAllocation:
    @pytest.mark.parametrize(
        "dim,workers,clients,total",
        [(20, 23, 23, 70), (50, 53, 53, 160), (100, 103, 103, 310)],
    )
    def test_table_3_3_rows(self, dim, workers, clients, total):
        """Table 3.3 with Ns=1 (the printed 23s in the d=50/100 client rows
        are OCR artifacts; the formula (d+3)*Ns and the totals agree)."""
        a = ProcessorAllocation.for_problem(dim, ns=1)
        assert a.n_workers == workers
        assert a.n_servers == workers
        assert a.n_clients == clients
        assert a.total == total

    def test_closed_form_matches_role_sum(self):
        for d in (1, 3, 7, 33):
            for ns in (1, 2, 5):
                a = ProcessorAllocation.for_problem(d, ns)
                assert a.total == 1 + a.n_workers + a.n_servers + a.n_clients
                assert a.total == d * ns + 3 * ns + 2 * d + 7

    def test_invalid_problem_rejected(self):
        with pytest.raises(ValueError):
            ProcessorAllocation.for_problem(0)
        with pytest.raises(ValueError):
            ProcessorAllocation.for_problem(3, ns=0)

    def test_concrete_assignment_order(self):
        entries = [f"c{i}" for i in range(100)]
        job = allocate_processors(entries, dim=2, ns=2)
        assert job.master == "c0"
        assert job.workers == ["c1", "c2", "c3", "c4", "c5"]  # d+3 = 5
        assert job.servers[0] == "c6"
        assert job.clients[0] == ["c7", "c8"]
        assert job.servers[1] == "c9"
        assert job.total == ProcessorAllocation.for_problem(2, 2).total

    def test_assignment_rejects_small_machinefile(self):
        with pytest.raises(ValueError):
            allocate_processors(["a"] * 10, dim=20, ns=1)

    def test_node_usage_accounting(self):
        entries = machinefile(Cluster.homogeneous(10, 8))
        job = allocate_processors(entries, dim=2, ns=1)
        usage = job.node_usage()
        assert sum(usage.values()) == job.total


class TestNetworkModel:
    def test_transfer_time_formula(self):
        net = NetworkModel(latency=1e-3, bandwidth=1e6)
        assert net.transfer_time(1000) == pytest.approx(1e-3 + 1e-3)

    def test_round_trip(self):
        net = NetworkModel(latency=1e-3, bandwidth=1e6)
        assert net.round_trip(0, 0) == pytest.approx(2e-3)

    def test_myrinet_preset_matches_paper(self):
        net = NetworkModel.myrinet_10g()
        assert net.latency == pytest.approx(2.3e-6)
        assert net.bandwidth == pytest.approx(1.2e9)

    def test_fileio_slower_than_mpi(self):
        assert NetworkModel.file_io().transfer_time(100) > NetworkModel.myrinet_10g().transfer_time(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(-1.0, 1.0)
        with pytest.raises(ValueError):
            NetworkModel(0.0, 0.0)
        with pytest.raises(ValueError):
            NetworkModel(0.0, 1.0).transfer_time(-1)


class TestEventSimulator:
    def test_events_run_in_time_order(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append("b"))
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(3.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == pytest.approx(3.0)

    def test_fifo_among_ties(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(1.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1, 2]

    def test_run_until_stops_early(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(2))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == pytest.approx(2.0)
        assert len(sim) == 1

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["first", "second"]
        assert sim.now == pytest.approx(2.0)

    def test_past_scheduling_rejected(self):
        sim = EventSimulator(start=5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_event_storm_guard(self):
        sim = EventSimulator()

        def rearm():
            sim.schedule(0.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestPBSScheduler:
    def test_immediate_start_when_cores_free(self):
        sched = PBSScheduler(Cluster.homogeneous(2, 4))
        job = sched.submit(JobRequest(n_procs=5, name="j1"))
        assert job is not None
        assert len(job.entries) == 5
        assert sched.free_cores == 3

    def test_queueing_when_full(self):
        sched = PBSScheduler(Cluster.homogeneous(1, 4))
        j1 = sched.submit(JobRequest(n_procs=3))
        j2 = sched.submit(JobRequest(n_procs=3))
        assert j1 is not None
        assert j2 is None
        assert sched.queued == 1

    def test_release_admits_queued_fifo(self):
        sched = PBSScheduler(Cluster.homogeneous(1, 4))
        j1 = sched.submit(JobRequest(n_procs=4))
        sched.submit(JobRequest(n_procs=2, name="q1"))
        sched.submit(JobRequest(n_procs=2, name="q2"))
        started = sched.release(j1.request.job_id)
        assert [j.request.name for j in started] == ["q1", "q2"]
        assert sched.utilization() == pytest.approx(1.0)

    def test_oversized_job_rejected(self):
        sched = PBSScheduler(Cluster.homogeneous(1, 4))
        with pytest.raises(ValueError):
            sched.submit(JobRequest(n_procs=5))

    def test_release_unknown_job_rejected(self):
        sched = PBSScheduler(Cluster.homogeneous(1, 4))
        with pytest.raises(KeyError):
            sched.release(99999)

    def test_counters(self):
        sched = PBSScheduler(Cluster.homogeneous(1, 8))
        j = sched.submit(JobRequest(n_procs=2))
        sched.release(j.request.job_id)
        assert sched.n_started == 1
        assert sched.n_completed == 1


class TestSimulatedMWPool:
    def _pool(self, dim=4, **kw):
        func = StochasticFunction(Rosenbrock(dim), sigma0=0.0, rng=0)
        cluster = Cluster.palmetto(n_nodes=50)
        return SimulatedMWPool(func, cluster, dim=dim, **kw), func

    def test_overhead_charged_per_cycle(self):
        pool, func = self._pool()
        pool.activate(np.zeros(4))
        assert pool.n_dispatch_cycles == 1
        assert pool.comm_overhead > 0.0
        assert pool.now > 1.0  # warmup + overhead

    def test_overhead_grows_with_active_vertices(self):
        pool, _ = self._pool()
        pool.activate(np.zeros(4))
        first = pool.comm_overhead
        for i in range(4):
            pool.activate(np.ones(4) * (i + 1))
        pool.comm_overhead = 0.0
        pool.advance(1.0)
        assert pool.comm_overhead > first

    def test_rejects_cluster_too_small(self):
        func = StochasticFunction(Rosenbrock(100), sigma0=0.0, rng=0)
        with pytest.raises(ValueError):
            SimulatedMWPool(func, Cluster.homogeneous(2, 8), dim=100)

    def test_optimizer_runs_on_simulated_cluster(self):
        pool, func = self._pool()
        verts = initial_simplex(np.full(4, 2.0), step=0.5)
        result = NelderMead(
            func, verts, pool=pool, termination=MaxStepsTermination(50)
        ).run()
        assert result.n_steps == 50
        assert pool.comm_overhead > 0.0

    def test_time_per_step_grows_mildly_with_dimension(self):
        """Fig 3.18c shape: overhead/step increases with d but stays small
        relative to sampling time."""
        per_step = {}
        for d in (5, 20):
            func = StochasticFunction(Rosenbrock(d), sigma0=0.0, rng=0)
            pool = SimulatedMWPool(func, Cluster.palmetto(60), dim=d)
            verts = initial_simplex(np.full(d, 2.0), step=0.5)
            result = NelderMead(
                func, verts, pool=pool, termination=MaxStepsTermination(20)
            ).run()
            per_step[d] = result.walltime / result.n_steps
        assert per_step[20] > per_step[5]
