"""Unit and property tests for the eq. 1.2 noise model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise import NoiseModel


class TestNoiseModelMoments:
    def test_variance_decays_inversely_with_time(self):
        model = NoiseModel(sigma0=3.0)
        assert model.variance(1.0) == pytest.approx(9.0)
        assert model.variance(9.0) == pytest.approx(1.0)

    def test_sigma_is_sqrt_variance(self):
        model = NoiseModel(sigma0=2.0)
        assert model.sigma(4.0) == pytest.approx(1.0)

    def test_zero_time_gives_infinite_variance(self):
        assert NoiseModel(1.0).variance(0.0) == math.inf
        assert NoiseModel(1.0).sigma(0.0) == math.inf

    def test_noiseless_model(self):
        model = NoiseModel(0.0)
        assert model.variance(0.0) == 0.0
        assert model.sigma(10.0) == 0.0

    def test_negative_sigma0_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(-1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(1.0).variance(-1.0)

    @given(
        sigma0=st.floats(0.01, 1e3),
        t=st.floats(0.01, 1e6),
        factor=st.floats(1.5, 100.0),
    )
    @settings(max_examples=50)
    def test_more_sampling_never_increases_noise(self, sigma0, t, factor):
        model = NoiseModel(sigma0)
        assert model.sigma(t * factor) <= model.sigma(t)

    @given(sigma0=st.floats(0.1, 100.0), t=st.floats(0.1, 1e4))
    @settings(max_examples=50)
    def test_variance_scaling_identity(self, sigma0, t):
        """sigma(t)**2 * t == sigma0**2 identically."""
        model = NoiseModel(sigma0)
        assert model.variance(t) * t == pytest.approx(sigma0**2, rel=1e-9)


class TestNoiseModelDensity:
    def test_pdf_matches_gaussian(self):
        model = NoiseModel(sigma0=2.0)
        t = 4.0
        var = model.variance(t)
        x = 0.7
        expected = math.exp(-(x**2) / (2 * var)) / math.sqrt(2 * math.pi * var)
        assert model.pdf(x, t) == pytest.approx(expected)

    def test_pdf_is_symmetric(self):
        model = NoiseModel(1.5)
        assert model.pdf(0.3, 2.0) == pytest.approx(model.pdf(-0.3, 2.0))

    def test_pdf_integrates_to_one(self):
        model = NoiseModel(1.0)
        xs = np.linspace(-20, 20, 20001)
        total = np.trapezoid(model.pdf(xs, t=2.0), xs)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_pdf_sharpens_with_time(self):
        model = NoiseModel(1.0)
        assert model.pdf(0.0, 100.0) > model.pdf(0.0, 1.0)

    def test_pdf_rejects_zero_time(self):
        with pytest.raises(ValueError):
            NoiseModel(1.0).pdf(0.0, 0.0)

    def test_pdf_rejects_degenerate_model(self):
        with pytest.raises(ValueError):
            NoiseModel(0.0).pdf(0.0, 1.0)

    def test_pdf_vectorizes(self):
        out = NoiseModel(1.0).pdf(np.array([0.0, 1.0, 2.0]), 1.0)
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)


class TestNoiseModelSampling:
    def test_sample_statistics(self):
        model = NoiseModel(sigma0=5.0)
        rng = np.random.default_rng(0)
        draws = model.sample(rng, t=25.0, size=200_000)
        assert np.mean(draws) == pytest.approx(0.0, abs=0.02)
        assert np.std(draws) == pytest.approx(1.0, rel=0.02)  # 5/sqrt(25)

    def test_noiseless_sampling_returns_zero(self):
        model = NoiseModel(0.0)
        rng = np.random.default_rng(0)
        assert model.sample(rng, 1.0) == 0.0
        assert np.all(model.sample(rng, 1.0, size=5) == 0.0)

    def test_sample_rejects_zero_time(self):
        with pytest.raises(ValueError):
            NoiseModel(1.0).sample(np.random.default_rng(0), 0.0)

    def test_sampling_is_reproducible_with_seed(self):
        model = NoiseModel(1.0)
        a = model.sample(np.random.default_rng(7), 2.0, size=10)
        b = model.sample(np.random.default_rng(7), 2.0, size=10)
        np.testing.assert_array_equal(a, b)
