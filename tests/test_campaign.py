"""Tests for the campaign orchestration subsystem."""

import json

import numpy as np
import pytest

from repro.campaign import (
    AlgorithmVariant,
    Campaign,
    CampaignRunner,
    CampaignSpec,
    Job,
    ResultStore,
    canonical_json,
    compare_labels,
    execute_job,
    run_job,
    summarize,
)
from repro.core import ConditionSet


def small_spec(**overrides) -> CampaignSpec:
    """A fast 2-algorithm x 1-function x 3-seed grid (6 jobs)."""
    kwargs = dict(
        name="test",
        algorithms=["DET", AlgorithmVariant("PC", {"k": 1.0}, label="PC(k=1)")],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=[0, 1, 2],
        tau=1e-3,
        walltime=1e3,
        max_steps=40,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestSpec:
    def test_expansion_is_deterministic_product(self):
        spec = small_spec()
        jobs = spec.expand()
        assert len(jobs) == 2 * 1 * 1 * 1 * 3
        assert jobs == spec.expand()
        assert [j.label for j in jobs[:3]] == ["DET"] * 3
        assert [j.seed for j in jobs[:3]] == [0, 1, 2]

    def test_job_ids_stable_and_distinct(self):
        jobs = small_spec().expand()
        ids = [j.job_id for j in jobs]
        assert len(set(ids)) == len(ids)
        assert ids == [j.job_id for j in small_spec().expand()]

    def test_job_id_changes_with_any_identity_field(self):
        base = small_spec().expand()[0]
        changed = small_spec(sigma0s=[2.0]).expand()[0]
        assert base.job_id != changed.job_id

    def test_duplicate_variant_labels_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CampaignSpec(name="x", algorithms=["PC", "PC"])

    def test_spawned_seeds_deterministic_and_distinct(self):
        spec = small_spec(seeds=None, n_seeds=6, base_seed=7)
        seeds = spec.resolved_seeds()
        assert seeds == spec.resolved_seeds()
        assert len(set(seeds)) == 6
        assert seeds != small_spec(seeds=None, n_seeds=6, base_seed=8).resolved_seeds()

    def test_overrides_apply_where_matched(self):
        spec = small_spec(
            overrides=[{"where": {"label": "PC(k=1)", "seed": 1}, "options": {"k": 2.0}}]
        )
        by_key = {(j.label, j.seed): j for j in spec.expand()}
        assert by_key[("PC(k=1)", 1)].options == {"k": 2.0}
        assert by_key[("PC(k=1)", 0)].options == {"k": 1.0}
        assert by_key[("DET", 1)].options == {}

    def test_canonical_json_handles_rich_options(self):
        a = canonical_json({"conditions": ConditionSet.of(1, 3, 6), "k": 1.0})
        b = canonical_json({"k": 1.0, "conditions": ConditionSet.of(1, 3, 6)})
        assert a == b
        assert "ConditionSet" in a

    def test_spec_json_round_trip(self, tmp_path):
        spec = small_spec()
        path = spec.save(tmp_path / "spec.json")
        loaded = CampaignSpec.load(path)
        assert loaded.same_grid(spec)
        assert [j.job_id for j in loaded.expand()] == [j.job_id for j in spec.expand()]

    def test_save_rejects_rich_options(self, tmp_path):
        spec = small_spec(
            algorithms=[AlgorithmVariant("PC", {"conditions": ConditionSet.only(1)})]
        )
        spec.expand()  # rich options are fine in memory...
        with pytest.raises(ValueError, match="non-JSON options"):
            spec.save(tmp_path / "spec.json")  # ...but must not be persisted

    def test_save_rejects_rich_overrides(self, tmp_path):
        spec = small_spec(
            overrides=[{"where": {"seed": 0},
                        "options": {"conditions": ConditionSet.only(1)}}]
        )
        with pytest.raises(ValueError, match="override"):
            spec.save(tmp_path / "spec.json")


class TestResultStore:
    def test_requires_identity_fields(self):
        with pytest.raises(ValueError):
            ResultStore().record({"status": "done"})

    def test_memory_and_file_round_trip(self, tmp_path):
        for store in (ResultStore(), ResultStore(tmp_path / "r.jsonl")):
            store.record({"job_id": "a", "status": "done", "result": {"x": 1}})
            store.record({"job_id": "b", "status": "failed", "result": None})
            assert {r["job_id"] for r in store.records()} == {"a", "b"}
            assert store.completed_ids() == {"a"}
            assert [r["job_id"] for r in store.failed()] == ["b"]

    def test_last_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.record({"job_id": "a", "status": "failed"})
        store.record({"job_id": "a", "status": "done"})
        assert len(store) == 1
        assert store.completed_ids() == {"a"}

    def test_truncated_tail_is_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.record({"job_id": "a", "status": "done"})
        with open(path, "a") as fh:
            fh.write('{"job_id": "b", "stat')  # hard-kill artifact
        assert store.completed_ids() == {"a"}

    def test_append_after_truncated_tail_survives(self, tmp_path):
        path = tmp_path / "r.jsonl"
        ResultStore(path).record({"job_id": "a", "status": "done"})
        with open(path, "a") as fh:
            fh.write('{"job_id": "b", "stat')  # killed mid-write
        resumed = ResultStore(path)  # a fresh runner reopens the store
        resumed.record({"job_id": "c", "status": "done"})
        assert resumed.completed_ids() == {"a", "c"}

    def test_truncated_tail_healed_by_live_instance(self, tmp_path):
        """Multi-writer edge: another writer's kill truncates the tail
        *after* this store instance already appended — the tail check must
        re-run, not be cached once per instance."""
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.record({"job_id": "a", "status": "done"})
        with open(path, "a") as fh:
            fh.write('{"job_id": "b", "stat')  # peer killed mid-write
        store.record({"job_id": "c", "status": "done"})  # same live instance
        assert store.completed_ids() == {"a", "c"}

    def test_sees_appends_from_other_writers(self, tmp_path):
        """Cooperative draining: a store picks up records appended by a
        second store instance (another runner process) between reads."""
        path = tmp_path / "r.jsonl"
        reader = ResultStore(path)
        writer = ResultStore(path)
        writer.record({"job_id": "a", "status": "done"})
        assert reader.completed_ids() == {"a"}
        writer.record({"job_id": "b", "status": "done"})
        assert reader.completed_ids() == {"a", "b"}

    def test_returned_records_do_not_alias_the_cache(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.record({"job_id": "a", "status": "done", "result": {"v": 1}})
        rec = store.records()[0]
        rec["result"]["v"] = 999  # caller mutates a nested dict
        assert store.records()[0]["result"]["v"] == 1

    def test_partial_line_not_consumed_early(self, tmp_path):
        """An in-flight (unterminated) line is retried on the next scan,
        not half-parsed and lost."""
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.record({"job_id": "a", "status": "done"})
        line = '{"job_id": "b", "status": "done"}\n'
        with open(path, "a") as fh:
            fh.write(line[:10])
            fh.flush()
            assert store.completed_ids() == {"a"}  # mid-write snapshot
            fh.write(line[10:])
        assert store.completed_ids() == {"a", "b"}


class TestCompaction:
    def _dup_store(self, tmp_path, n=4, dups=2):
        store = ResultStore(tmp_path / "r.jsonl")
        for _ in range(dups):
            for i in range(n):
                store.record({"job_id": f"j{i}", "status": "done", "result": {"v": i}})
        return store

    def test_compact_preserves_last_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.record({"job_id": "a", "status": "failed", "result": None})
        store.record({"job_id": "b", "status": "done", "result": {"v": 2}})
        store.record({"job_id": "a", "status": "done", "result": {"v": 1}})
        before = store.records()
        stats = store.compact()
        assert stats.n_records_before == 3 and stats.n_records_after == 2
        assert store.records() == before
        assert store.completed_ids() == {"a", "b"}

    def test_compact_shrinks_duplicated_store(self, tmp_path):
        store = self._dup_store(tmp_path, n=6, dups=3)
        import os
        size_before = os.path.getsize(store.path)
        stats = store.compact()
        assert stats.bytes_before == size_before
        assert stats.bytes_after <= size_before // 2  # >= 2x duplicates removed
        assert os.path.getsize(store.path) == stats.bytes_after
        assert len(store.records()) == 6

    def test_compact_is_idempotent(self, tmp_path):
        store = self._dup_store(tmp_path)
        store.compact()
        first = store.path.read_bytes()
        stats = store.compact()
        assert store.path.read_bytes() == first
        assert stats.n_dropped == 0
        assert stats.bytes_before == stats.bytes_after

    def test_compact_drops_kill_artifacts(self, tmp_path):
        store = self._dup_store(tmp_path)
        with open(store.path, "a") as fh:
            fh.write('{"job_id": "x", "stat')  # truncated tail
        store.compact()
        raw = store.path.read_bytes()
        assert raw.endswith(b"\n")
        assert b'"x"' not in raw  # the artifact is gone, not healed into a record
        import json
        for line in raw.strip().splitlines():
            json.loads(line)  # every surviving line is valid JSON

    def test_compact_empty_and_missing_store(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        stats = store.compact()  # file never created
        assert stats.n_records_before == 0 and stats.n_records_after == 0

    def test_compact_in_memory_store(self):
        store = ResultStore()
        store.record({"job_id": "a", "status": "failed"})
        store.record({"job_id": "a", "status": "done"})
        stats = store.compact()
        assert stats.n_records_before == 2 and stats.n_records_after == 1
        assert store.completed_ids() == {"a"}

    def test_other_instance_survives_compaction(self, tmp_path):
        """A writer holding the pre-compaction file reopens and keeps
        appending to the fresh file (inode check), and a reader rescans."""
        path = tmp_path / "r.jsonl"
        writer = ResultStore(path)
        reader = ResultStore(path)
        writer.record({"job_id": "a", "status": "done"})
        writer.record({"job_id": "a", "status": "done"})
        assert reader.completed_ids() == {"a"}  # reader has cached offsets
        ResultStore(path).compact()  # a third process compacts
        writer.record({"job_id": "b", "status": "done"})  # stale writer appends
        assert reader.completed_ids() == {"a", "b"}
        assert ResultStore(path).completed_ids() == {"a", "b"}

    def test_compact_safe_against_concurrent_appender(self, tmp_path):
        """No record appended while compactions run is ever lost."""
        import threading

        path = tmp_path / "r.jsonl"
        main = ResultStore(path)
        main.record({"job_id": "seed", "status": "done"})

        def appender():
            store = ResultStore(path)
            for i in range(200):
                store.record({"job_id": f"t{i}", "status": "done"})

        thread = threading.Thread(target=appender)
        thread.start()
        for _ in range(20):
            main.compact()
        thread.join()
        main.compact()
        expected = {"seed"} | {f"t{i}" for i in range(200)}
        assert main.completed_ids() == expected


class TestExecution:
    def test_execute_job_deterministic(self):
        job = small_spec().expand()[0]
        r1 = execute_job(job)
        r2 = execute_job(job)
        assert r1.best_true == r2.best_true
        assert np.array_equal(r1.best_theta, r2.best_theta)

    def test_run_job_packages_success(self):
        job = small_spec().expand()[0]
        rec = run_job(job)
        assert rec["status"] == "done"
        assert rec["job_id"] == job.job_id
        assert rec["error"] is None
        json.dumps(rec)  # plain-JSON serializable end to end

    def test_run_job_packages_failure(self):
        job = Job(
            campaign="t", label="PC", algorithm="PC", function="sphere",
            dim=2, sigma0=1.0, seed=0, max_steps=40, walltime=1e3,
            options={"bogus_option": 1},
        )
        rec = run_job(job)
        assert rec["status"] == "failed"
        assert "bogus_option" in rec["error"]
        assert rec["result"] is None


class TestRunner:
    def test_serial_run_completes_grid(self):
        spec = small_spec()
        store = ResultStore()
        report = CampaignRunner(spec, store).run()
        assert report.n_done == 6 and report.n_failed == 0
        assert report.n_remaining == 0
        assert store.completed_ids() == {j.job_id for j in spec.expand()}

    def test_resume_skips_completed_jobs(self, tmp_path, result_lines):
        spec = small_spec()
        store = ResultStore(tmp_path / "r.jsonl")
        first = CampaignRunner(spec, store).run(max_jobs=2)
        assert first.n_done == 2 and first.n_remaining == 4
        second = CampaignRunner(spec, store).run()
        assert second.n_skipped == 2 and second.n_done == 4
        # every job recorded exactly once: nothing was re-executed
        assert result_lines(tmp_path / "r.jsonl") == 6

    def test_interrupted_store_identical_to_uninterrupted(self, tmp_path):
        """Satellite: kill mid-campaign (max-jobs cutoff), re-run, compare."""
        spec = small_spec()
        interrupted = ResultStore(tmp_path / "interrupted.jsonl")
        CampaignRunner(spec, interrupted, backend="serial").run(max_jobs=3)
        CampaignRunner(spec, interrupted, backend="serial").run()
        reference = ResultStore(tmp_path / "reference.jsonl")
        CampaignRunner(spec, reference, backend="serial").run()

        def results_by_id(store):
            return {r["job_id"]: r["result"] for r in store.records()}

        assert results_by_id(interrupted) == results_by_id(reference)

    def test_process_backend_matches_serial(self, tmp_path):
        spec = small_spec()
        serial = ResultStore()
        CampaignRunner(spec, serial).run()
        proc = ResultStore()
        CampaignRunner(
            spec, proc, backend="process", max_workers=2, chunksize=2
        ).run()
        a = {r["job_id"]: r["result"] for r in serial.records()}
        b = {r["job_id"]: r["result"] for r in proc.records()}
        assert a == b

    def test_failed_jobs_are_retried_on_resume(self):
        spec = small_spec(
            overrides=[{"where": {"seed": 1, "label": "DET"}, "options": {"bogus": 1}}]
        )
        store = ResultStore()
        report = CampaignRunner(spec, store).run()
        assert report.n_failed == 1
        runner = CampaignRunner(spec, store)
        assert len(runner.pending()) == 1  # the failed job stays pending
        assert runner.run().n_failed == 1  # still broken, still retried


class TestCampaignFacade:
    def test_creates_and_reopens_directory(self, tmp_path):
        spec = small_spec()
        campaign = Campaign(tmp_path / "c", spec=spec)
        assert (tmp_path / "c" / "spec.json").exists()
        campaign.run(max_jobs=2)
        reopened = Campaign(tmp_path / "c")  # no spec needed
        status = reopened.status()
        assert status["n_jobs"] == 6 and status["done"] == 2 and status["pending"] == 4

    def test_rejects_conflicting_spec(self, tmp_path):
        Campaign(tmp_path / "c", spec=small_spec())
        with pytest.raises(ValueError, match="different spec"):
            Campaign(tmp_path / "c", spec=small_spec(sigma0s=[2.0]))

    def test_missing_spec_is_an_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Campaign(tmp_path / "nowhere")


class TestAggregation:
    @pytest.fixture(scope="class")
    def completed_store(self):
        store = ResultStore()
        CampaignRunner(small_spec(), store).run()
        return store

    def test_summarize_cells(self, completed_store):
        summaries = summarize(completed_store.completed())
        assert len(summaries) == 2
        by_label = {s.label: s for s in summaries}
        assert set(by_label) == {"DET", "PC(k=1)"}
        for s in summaries:
            assert s.n_jobs == 3
            assert 0.0 <= s.success_rate <= 1.0
            assert s.mean_final_true >= 0.0 or s.function != "sphere"
            assert s.mean_calls > 0
            assert len(s.as_row()) == len(s.header())

    def test_compare_labels_pairs_by_seed(self, completed_store):
        cmp = compare_labels(completed_store.completed(), "PC(k=1)", "DET")
        assert cmp.n_pairs == 3
        assert cmp.log_ratios.shape == (3,)
        assert cmp.sign.n_effective + cmp.sign.n_ties == 3
        assert cmp.median_ci is not None

    def test_compare_unknown_label_raises(self, completed_store):
        with pytest.raises(ValueError, match="no shared seeds"):
            compare_labels(completed_store.completed(), "PC(k=1)", "NOPE")

    def test_compare_refuses_to_pool_across_cells(self):
        store = ResultStore()
        CampaignRunner(small_spec(sigma0s=[1.0, 2.0]), store).run()
        completed = store.completed()
        with pytest.raises(ValueError, match="pooled=True"):
            compare_labels(completed, "PC(k=1)", "DET")
        narrowed = compare_labels(completed, "PC(k=1)", "DET", sigma0=1.0)
        assert narrowed.n_pairs == 3
        pooled = compare_labels(completed, "PC(k=1)", "DET", pooled=True)
        assert pooled.n_pairs == 6

    def test_paired_minima_in_natural_seed_order(self):
        from repro.campaign import execute_job, paired_minima_from_records

        spec = small_spec(seeds=list(range(11)))  # seed 10 sorts after 9, not after 1
        store = ResultStore()
        CampaignRunner(spec, store).run()
        mins_det, _ = paired_minima_from_records(store.completed(), "DET", "PC(k=1)")
        by_seed = [
            max(execute_job(j).best_true, 0.0)
            for j in spec.expand() if j.label == "DET"
        ]
        assert mins_det.tolist() == by_seed

    def test_status_counts_partition_total(self, tmp_path):
        spec = small_spec(
            overrides=[{"where": {"seed": 1, "label": "DET"}, "options": {"bogus": 1}}]
        )
        campaign = Campaign(tmp_path / "c", spec=spec)
        campaign.run()
        status = campaign.status()
        assert status["done"] + status["failed"] + status["pending"] == status["n_jobs"]
        assert status["failed"] == 1 and status["pending"] == 0
