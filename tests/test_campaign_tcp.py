"""Cross-host campaign acceptance: TCP master + standalone mw-worker processes.

The PR-3 acceptance criterion: a campaign run with ``--backend mw
--transport tcp://127.0.0.1:<port>`` served by two separately-launched
``python -m repro mw-worker`` processes completes all jobs and produces a
result store identical (same job ids, same per-job results) to a serial
run of the same spec — with no shared filesystem between master and
workers (the workers never see the campaign directory).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import Campaign, CampaignRunner, CampaignSpec, ResultStore

SRC = str(Path(__file__).resolve().parents[1] / "src")


def free_port() -> int:
    """An OS-assigned localhost port, released for immediate reuse."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def small_spec(**overrides) -> CampaignSpec:
    """A fast 2-algorithm x 3-seed sphere grid (6 jobs)."""
    kwargs = dict(
        name="tcp-dist",
        algorithms=["DET", "PC"],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=[0, 1, 2],
        tau=1e-3,
        walltime=1e3,
        max_steps=40,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def reference_results(spec):
    store = ResultStore()
    CampaignRunner(spec, store).run()
    return {r["job_id"]: r["result"] for r in store.records()}


def spawn(args, **kwargs):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        **kwargs,
    )


class TestTcpCampaignAcceptance:
    def test_two_cli_workers_serve_a_tcp_campaign(self, tmp_path):
        directory = str(tmp_path / "camp")
        spec = small_spec()
        Campaign(directory, spec=spec)
        port = free_port()
        url = f"tcp://127.0.0.1:{port}"
        workers = [spawn(["mw-worker", url]) for _ in range(2)]
        master = spawn([
            "campaign", "run", directory, "--backend", "mw",
            "--transport", url, "--max-workers", "2",
        ])
        out, _ = master.communicate(timeout=300)
        assert master.returncode == 0, out.decode()
        for proc in workers:
            wout, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, wout.decode()
            assert b"finished" in wout
        campaign = Campaign(directory)
        got = {r["job_id"]: r["result"] for r in campaign.store.completed()}
        assert got == reference_results(spec)

    def test_killed_tcp_worker_triggers_requeue_at_campaign_level(self, tmp_path):
        """SIGKILL one of two workers mid-campaign; the survivor finishes
        everything and the store still matches the serial reference."""
        directory = str(tmp_path / "camp")
        spec = small_spec(seeds=list(range(6)))  # 12 jobs
        Campaign(directory, spec=spec)
        port = free_port()
        url = f"tcp://127.0.0.1:{port}"
        victim = spawn(["mw-worker", url])
        survivor = spawn(["mw-worker", url])
        master = spawn([
            "campaign", "run", directory, "--backend", "mw",
            "--transport", url, "--max-workers", "2",
        ])
        time.sleep(2.0)  # let the campaign get in flight
        victim.send_signal(signal.SIGKILL)
        victim.communicate()
        out, _ = master.communicate(timeout=300)
        assert master.returncode == 0, out.decode()
        survivor.communicate(timeout=60)
        campaign = Campaign(directory)
        got = {r["job_id"]: r["result"] for r in campaign.store.completed()}
        assert got == reference_results(spec)

    def test_workers_launched_before_the_master_connect_late(self, tmp_path):
        """Worker processes may be started first; they retry until the
        master's listener appears."""
        directory = str(tmp_path / "camp")
        spec = small_spec()
        Campaign(directory, spec=spec)
        port = free_port()
        url = f"tcp://127.0.0.1:{port}"
        worker = spawn(["mw-worker", url, "--connect-timeout", "60"])
        time.sleep(1.0)  # master not up yet; the worker must be retrying
        master = spawn([
            "campaign", "run", directory, "--backend", "mw",
            "--transport", url, "--max-workers", "1",
        ])
        out, _ = master.communicate(timeout=300)
        assert master.returncode == 0, out.decode()
        wout, _ = worker.communicate(timeout=60)
        assert worker.returncode == 0, wout.decode()
        campaign = Campaign(directory)
        assert len(campaign.store.completed()) == 6


class TestWatchJson:
    def test_watch_json_snapshots_are_machine_readable(self, tmp_path):
        directory = str(tmp_path / "camp")
        spec = small_spec()
        Campaign(directory, spec=spec)
        runner = CampaignRunner(spec, Campaign(directory).store)
        runner.run(max_jobs=2)
        proc = spawn(["campaign", "watch", directory, "--once", "--json"])
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == 0, out.decode()
        snap = json.loads(out.decode().strip().splitlines()[-1])
        assert snap["campaign"] == "tcp-dist"
        assert snap["n_total"] == 6
        assert snap["done"] == 2
        assert snap["remaining"] == 4
        assert set(snap) >= {"failed", "elapsed_s", "rate", "eta_s"}
