"""Tests for optimizer checkpoint/resume."""

import numpy as np
import pytest

from repro.core import MaxStepsTermination, MaxNoise, NelderMead, PointComparison
from repro.core.checkpoint import load_snapshot, resume, save_checkpoint, snapshot
from repro.functions import Sphere, initial_simplex
from repro.noise import StochasticFunction

VERTS = initial_simplex([2.0, -1.0], step=1.0)


def fresh_func(sigma0=0.0, seed=0):
    return StochasticFunction(Sphere(2), sigma0=sigma0, rng=seed)


class TestSnapshot:
    def test_snapshot_contents(self):
        opt = NelderMead(fresh_func(), VERTS, termination=MaxStepsTermination(7))
        opt.run()
        state = snapshot(opt)
        assert state["algorithm"] == "DET"
        assert state["n_steps"] == 7
        assert len(state["vertices"]) == 3
        assert state["clock"] == pytest.approx(opt.pool.now)

    def test_roundtrip_through_disk(self, tmp_path):
        opt = MaxNoise(fresh_func(sigma0=1.0, seed=1), VERTS,
                       termination=MaxStepsTermination(4))
        opt.run()
        path = save_checkpoint(opt, tmp_path / "ck.bin")
        state = load_snapshot(path)
        assert state["n_steps"] == 4
        np.testing.assert_allclose(
            state["vertices"][0]["theta"], opt.simplex.vertices[0].theta
        )

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        p = tmp_path / "bad.bin"
        from repro.mw.codec import pack

        p.write_bytes(pack({"version": 99}))
        with pytest.raises(ValueError):
            load_snapshot(p)


class TestResume:
    def test_resumed_state_matches(self, tmp_path):
        opt = NelderMead(fresh_func(), VERTS, termination=MaxStepsTermination(10))
        opt.run()
        path = save_checkpoint(opt, tmp_path / "ck.bin")
        resumed = resume(
            path, fresh_func(), termination=MaxStepsTermination(20)
        )
        assert resumed.n_steps == 10
        assert resumed.elapsed_walltime() == pytest.approx(opt.pool.now)
        np.testing.assert_allclose(
            resumed.simplex.points(), opt.simplex.points()
        )
        np.testing.assert_allclose(
            resumed.simplex.estimates(), opt.simplex.estimates()
        )

    def test_resumed_run_continues_converging(self, tmp_path):
        opt = NelderMead(fresh_func(), VERTS, termination=MaxStepsTermination(10))
        mid = opt.run()
        path = save_checkpoint(opt, tmp_path / "ck.bin")
        resumed = resume(path, fresh_func(), termination=MaxStepsTermination(200))
        final = resumed.run()
        assert final.n_steps == 200
        assert final.best_true <= mid.best_true

    def test_noiseless_split_run_matches_straight_run(self, tmp_path):
        """10 + 20 steps after a checkpoint == 30 straight steps (noiseless,
        so the trajectory is deterministic)."""
        straight = NelderMead(
            fresh_func(), VERTS, termination=MaxStepsTermination(30)
        ).run()

        opt = NelderMead(fresh_func(), VERTS, termination=MaxStepsTermination(10))
        opt.run()
        path = save_checkpoint(opt, tmp_path / "ck.bin")
        resumed = resume(path, fresh_func(), termination=MaxStepsTermination(30))
        split = resumed.run()
        np.testing.assert_allclose(split.best_theta, straight.best_theta, atol=1e-12)

    def test_algorithm_can_be_switched_on_resume(self, tmp_path):
        """Warm-start PC from a DET checkpoint (coarse DET, refined PC)."""
        opt = NelderMead(
            fresh_func(sigma0=0.5, seed=2), VERTS, termination=MaxStepsTermination(15)
        )
        opt.run()
        path = save_checkpoint(opt, tmp_path / "ck.bin")
        resumed = resume(
            path,
            fresh_func(sigma0=0.5, seed=3),
            algorithm="PC",
            termination=MaxStepsTermination(25),
        )
        assert isinstance(resumed, PointComparison)
        result = resumed.run()
        assert result.n_steps == 25

    def test_contraction_level_restored(self, tmp_path):
        opt = NelderMead(fresh_func(), VERTS, termination=MaxStepsTermination(40))
        opt.run()
        level = opt.simplex.contraction_level
        path = save_checkpoint(opt, tmp_path / "ck.bin")
        resumed = resume(path, fresh_func(), termination=MaxStepsTermination(50))
        assert resumed.simplex.contraction_level == level
