"""Integration tests: energy conservation, thermostat, properties, pipeline."""

import numpy as np
import pytest

from repro.md import (
    BerendsenThermostat,
    PeriodicBox,
    PropertyAccumulator,
    SimulationProtocol,
    TIP4PForceField,
    VelocityVerlet,
    WaterParameters,
    build_water_box,
    diffusion_coefficient,
    kinetic_temperature,
    radial_distribution,
    run_water_simulation,
)
from repro.md.system import volume_per_molecule
from repro.md.units import kinetic_energy


class TestWaterBoxConstruction:
    def test_density_sets_box_volume(self):
        sys_ = build_water_box(8, density=0.997, rng=0)
        expected_volume = 8 * volume_per_molecule(0.997)
        assert sys_.box.volume == pytest.approx(expected_volume, rel=1e-9)

    def test_site_layout(self):
        sys_ = build_water_box(4, rng=0)
        assert sys_.pos.shape == (12, 3)
        assert sys_.masses[0] == pytest.approx(15.9994)
        assert sys_.masses[1] == pytest.approx(1.008)

    def test_geometry_is_equilibrium(self):
        params = WaterParameters()
        sys_ = build_water_box(6, params=params, rng=1)
        for m in range(6):
            O, H1, H2 = sys_.pos[3 * m : 3 * m + 3]
            assert np.linalg.norm(H1 - O) == pytest.approx(params.r_oh, abs=1e-9)
            assert np.linalg.norm(H2 - O) == pytest.approx(params.r_oh, abs=1e-9)

    def test_initial_temperature(self):
        sys_ = build_water_box(27, temperature=298.0, rng=2)
        assert kinetic_temperature(sys_.vel, sys_.masses, 3) == pytest.approx(298.0)

    def test_molecules_do_not_overlap(self):
        sys_ = build_water_box(27, rng=3)
        O = sys_.oxygen_positions
        ii, jj = np.triu_indices(27, k=1)
        d = sys_.box.minimum_image(O[ii] - O[jj])
        assert np.sqrt((d * d).sum(axis=1)).min() > 1.5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_water_box(0)
        with pytest.raises(ValueError):
            volume_per_molecule(0.0)

    def test_copy_is_deep(self):
        sys_ = build_water_box(2, rng=0)
        cp = sys_.copy()
        cp.pos[0, 0] += 1.0
        assert sys_.pos[0, 0] != cp.pos[0, 0]


class TestVelocityVerlet:
    def test_nve_energy_conservation(self):
        """Total energy drift over 200 steps stays small (0.5 fs timestep)."""
        sys_ = build_water_box(8, temperature=150.0, rng=4)
        ff = TIP4PForceField(sys_.params, 8)
        integrator = VelocityVerlet(ff, dt=0.25)
        result = integrator.forces(sys_)
        e0 = result.potential_energy + kinetic_energy(sys_.vel, sys_.masses)
        energies = []
        for _ in range(200):
            result = integrator.step(sys_, result)
            energies.append(
                result.potential_energy + kinetic_energy(sys_.vel, sys_.masses)
            )
        drift = abs(energies[-1] - e0)
        scale = max(abs(e0), 1.0)
        assert drift / scale < 0.02, f"energy drifted {drift:.4g} of {e0:.4g}"

    def test_time_reversibility_short(self):
        """Integrate forward then backward: positions return (symplectic)."""
        sys_ = build_water_box(4, temperature=100.0, rng=5)
        ff = TIP4PForceField(sys_.params, 4)
        integrator = VelocityVerlet(ff, dt=0.2)
        pos0 = sys_.pos.copy()
        result = integrator.forces(sys_)
        for _ in range(20):
            result = integrator.step(sys_, result)
        sys_.vel *= -1.0
        for _ in range(20):
            result = integrator.step(sys_, result)
        np.testing.assert_allclose(sys_.pos, pos0, atol=1e-7)

    def test_run_with_callback(self):
        sys_ = build_water_box(4, rng=6)
        ff = TIP4PForceField(sys_.params, 4)
        integrator = VelocityVerlet(ff, dt=0.25)
        seen = []
        integrator.run(sys_, 5, callback=lambda i, s, r: seen.append(i))
        assert seen == [0, 1, 2, 3, 4]
        assert integrator.n_steps == 5

    def test_invalid_dt_rejected(self):
        ff = TIP4PForceField(WaterParameters(), 2)
        with pytest.raises(ValueError):
            VelocityVerlet(ff, dt=0.0)


class TestBerendsenThermostat:
    def test_heats_cold_system_toward_target(self):
        sys_ = build_water_box(8, temperature=50.0, rng=7)
        ff = TIP4PForceField(sys_.params, 8)
        integrator = VelocityVerlet(ff, dt=0.25)
        thermostat = BerendsenThermostat(300.0, tau=10.0)
        integrator.run(sys_, 300, thermostat=thermostat)
        t = kinetic_temperature(sys_.vel, sys_.masses, 3)
        assert 150.0 < t < 450.0

    def test_scale_factor_direction(self):
        sys_ = build_water_box(8, temperature=100.0, rng=8)
        hot = BerendsenThermostat(400.0, tau=10.0)
        assert hot.apply(sys_, dt=0.5) > 1.0
        cold = BerendsenThermostat(10.0, tau=10.0)
        assert cold.apply(sys_, dt=0.5) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BerendsenThermostat(0.0)
        with pytest.raises(ValueError):
            BerendsenThermostat(300.0, tau=0.0)


class TestProperties:
    def test_rdf_of_ideal_gas_is_flat(self):
        rng = np.random.default_rng(0)
        box = PeriodicBox(20.0)
        pos = rng.uniform(0, 20, size=(400, 3))
        r, g = radial_distribution(pos, None, box, r_max=9.0, n_bins=30)
        # away from the smallest shells (poor statistics), g ~ 1
        assert np.mean(g[10:]) == pytest.approx(1.0, abs=0.15)

    def test_rdf_cross_species(self):
        rng = np.random.default_rng(1)
        box = PeriodicBox(15.0)
        a = rng.uniform(0, 15, size=(100, 3))
        b = rng.uniform(0, 15, size=(150, 3))
        r, g = radial_distribution(a, b, box, r_max=7.0, n_bins=20)
        assert g.shape == (20,)
        assert np.mean(g[8:]) == pytest.approx(1.0, abs=0.25)

    def test_rdf_respects_min_image_bound(self):
        box = PeriodicBox(10.0)
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((4, 3)), None, box, r_max=6.0)

    def test_diffusion_from_linear_msd(self):
        """MSD = 6 D t exactly recovers D."""
        t = np.linspace(0, 1000, 50)
        d_true_a2fs = 1e-4
        msd = 6 * d_true_a2fs * t
        d = diffusion_coefficient(t, msd)
        assert d == pytest.approx(d_true_a2fs * 0.1, rel=1e-9)  # cm^2/s

    def test_diffusion_validation(self):
        with pytest.raises(ValueError):
            diffusion_coefficient(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            diffusion_coefficient(np.array([1.0, 2.0]), np.array([1.0]))

    def test_accumulator_requires_frames(self):
        acc = PropertyAccumulator(r_max=4.0)
        with pytest.raises(ValueError):
            acc.results()


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def properties(self):
        protocol = SimulationProtocol(
            n_molecules=8,
            n_equilibration=400,
            n_production=150,
            dt=0.3,
            sample_every=10,
            rdf_bins=24,
            thermostat_tau=5.0,
        )
        return run_water_simulation(WaterParameters(), protocol, rng=11)

    def test_reports_all_cost_function_properties(self, properties):
        for key in ("energy", "pressure", "diffusion", "goo", "goh", "ghh", "r"):
            assert key in properties

    def test_energy_is_negative_condensed_phase(self, properties):
        """Liquid water is bound: U < 0 (paper: about -41.8 kJ/mol)."""
        assert properties["energy"] < 0.0

    def test_rdf_arrays_well_formed(self, properties):
        g = properties["goo"]
        assert g.shape == properties["r"].shape
        assert np.all(g >= 0.0)
        assert g[0] == pytest.approx(0.0, abs=1e-9)  # core exclusion

    def test_goo_shows_first_shell_structure(self, properties):
        """gOO has a first peak beyond 2 A exceeding the large-r level."""
        r, g = properties["r"], properties["goo"]
        near = g[(r > 2.0) & (r < 3.6)]
        assert near.max() > 1.0

    def test_temperature_near_target(self, properties):
        """NVE production holds a condensed-phase temperature after the
        thermostatted equilibration (wide band: 8 molecules, short run)."""
        assert 100.0 < properties["temperature"] < 900.0

    def test_sems_reported(self, properties):
        assert properties["energy_sem"] > 0.0
        assert properties["pressure_sem"] > 0.0

    def test_seed_reproducibility(self):
        protocol = SimulationProtocol(
            n_molecules=4, n_equilibration=10, n_production=20, sample_every=5
        )
        a = run_water_simulation(WaterParameters(), protocol, rng=3)
        b = run_water_simulation(WaterParameters(), protocol, rng=3)
        assert a["energy"] == b["energy"]
        assert a["pressure"] == b["pressure"]

    def test_protocol_validation(self):
        with pytest.raises(ValueError):
            SimulationProtocol(n_molecules=1)
        with pytest.raises(ValueError):
            SimulationProtocol(sample_every=0)
        with pytest.raises(ValueError):
            SimulationProtocol(n_production=0)
