"""Docstring coverage gate for the public API.

Every exported name of the campaign subsystem, the parallel map helpers,
and the mw driver/worker/task layer must carry a docstring, and so must
the public methods and properties those classes define.  This is the CI
check behind the documentation pass: adding an undocumented public name
to these modules fails the build.
"""

import importlib
import inspect

import pytest

#: Modules whose public surface must be fully documented.
MODULES = [
    "repro.campaign",
    "repro.campaign.aggregate",
    "repro.campaign.backends",
    "repro.campaign.backends.base",
    "repro.campaign.backends.sqlite",
    "repro.campaign.execution",
    "repro.campaign.progress",
    "repro.campaign.runner",
    "repro.campaign.scheduler",
    "repro.campaign.sharding",
    "repro.campaign.spec",
    "repro.campaign.store",
    "repro.core.async_driver",
    "repro.core.base",
    "repro.core.pso",
    "repro.core.simplex",
    "repro.parallel",
    "repro.parallel.backends",
    "repro.mw.codec",
    "repro.mw.driver",
    "repro.mw.messages",
    "repro.mw.task",
    "repro.mw.tcp",
    "repro.mw.transport",
    "repro.mw.worker",
    "repro.telemetry",
    "repro.telemetry.metrics",
    "repro.telemetry.trace",
]


def _public_objects(module):
    """Exported classes and functions defined in (or re-exported by) repro."""
    names = getattr(module, "__all__", None)
    defined_here_only = names is None
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in sorted(names):
        obj = getattr(module, name)
        if inspect.ismodule(obj):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue  # constants need no docstring
        if not getattr(obj, "__module__", "").startswith("repro"):
            continue  # re-exported third-party objects (numpy etc.)
        if defined_here_only and obj.__module__ != module.__name__:
            continue  # plain imports, not this module's API surface
        yield name, obj


def _class_members(cls):
    """Public methods/properties defined directly on ``cls``."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member.fget
        elif isinstance(member, (classmethod, staticmethod)):
            yield name, member.__func__
        elif inspect.isfunction(member):
            yield name, member


def _missing_in(module):
    missing = []
    if not (module.__doc__ or "").strip():
        missing.append(module.__name__)
    for name, obj in _public_objects(module):
        if not (obj.__doc__ or "").strip():
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for mname, fn in _class_members(obj):
                if fn is None or not (fn.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}.{mname}")
    return missing


@pytest.mark.parametrize("module_name", MODULES)
def test_public_api_is_documented(module_name):
    module = importlib.import_module(module_name)
    missing = _missing_in(module)
    assert not missing, (
        "missing docstrings on exported names:\n  " + "\n  ".join(missing)
    )
