"""Tests for confidence-interval comparisons and ConditionSet."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConditionSet, Decision, compare
from repro.core.comparisons import ALL_CONDITIONS, ComparisonStats
from repro.noise import VertexEvaluation


def ev_with(g, sigma0=1.0, t=1.0):
    e = VertexEvaluation([0.0], sigma0=sigma0)
    e.replace(t, g)
    return e


class TestCompare:
    def test_plain_comparison_below(self):
        assert compare(ev_with(1.0), ev_with(2.0), use_error_bars=False) is Decision.BELOW

    def test_plain_comparison_not_below(self):
        assert (
            compare(ev_with(3.0), ev_with(2.0), use_error_bars=False)
            is Decision.NOT_BELOW
        )

    def test_plain_tie_is_not_below(self):
        assert (
            compare(ev_with(2.0), ev_with(2.0), use_error_bars=False)
            is Decision.NOT_BELOW
        )

    def test_separated_intervals_decide_below(self):
        # g=0 +- 1 vs g=10 +- 1 at k=2: 0+2 < 10-2
        assert compare(ev_with(0.0), ev_with(10.0), k=2.0) is Decision.BELOW

    def test_overlapping_intervals_undecided(self):
        # g=0 +- 1 vs g=1 +- 1 at k=2: intervals [-2,2] and [-1,3] overlap
        assert compare(ev_with(0.0), ev_with(1.0), k=2.0) is Decision.UNDECIDED

    def test_confident_not_below(self):
        assert compare(ev_with(10.0), ev_with(0.0), k=2.0) is Decision.NOT_BELOW

    def test_k_zero_reduces_to_plain(self):
        assert compare(ev_with(1.0), ev_with(1.1), k=0.0) is Decision.BELOW

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            compare(ev_with(0.0), ev_with(1.0), k=-1.0)

    def test_unsampled_evaluation_rejected(self):
        fresh = VertexEvaluation([0.0], sigma0=1.0)
        with pytest.raises(ValueError):
            compare(fresh, ev_with(1.0))

    def test_more_sampling_resolves_undecided(self):
        """With sigma ~ 1/sqrt(t), longer sampling separates the intervals."""
        a, b = ev_with(0.0, t=1.0), ev_with(1.0, t=1.0)
        assert compare(a, b, k=2.0) is Decision.UNDECIDED
        a2, b2 = ev_with(0.0, t=100.0), ev_with(1.0, t=100.0)
        assert compare(a2, b2, k=2.0) is Decision.BELOW

    @given(
        ga=st.floats(-100, 100),
        gb=st.floats(-100, 100),
        k=st.floats(0.0, 5.0),
    )
    @settings(max_examples=60)
    def test_antisymmetry(self, ga, gb, k):
        """a BELOW b implies b NOT_BELOW a (never both BELOW)."""
        a, b = ev_with(ga), ev_with(gb)
        d_ab = compare(a, b, k=k)
        d_ba = compare(b, a, k=k)
        if d_ab is Decision.BELOW:
            assert d_ba is Decision.NOT_BELOW

    @given(ga=st.floats(-10, 10), gb=st.floats(-10, 10))
    @settings(max_examples=60)
    def test_noiseless_always_decided(self, ga, gb):
        a, b = ev_with(ga, sigma0=0.0), ev_with(gb, sigma0=0.0)
        assert compare(a, b, k=3.0) is not Decision.UNDECIDED


class TestConditionSet:
    def test_all_uses_every_site(self):
        cs = ConditionSet.all()
        assert all(cs.uses(i) for i in range(1, 8))
        assert cs.label == "c1-7"

    def test_none_uses_no_site(self):
        cs = ConditionSet.none()
        assert not any(cs.uses(i) for i in range(1, 8))
        assert cs.label == "det"

    def test_only_single_site(self):
        cs = ConditionSet.only(1)
        assert cs.uses(1)
        assert not cs.uses(2)
        assert cs.label == "c1"

    def test_of_combination(self):
        cs = ConditionSet.of(1, 3, 6)
        assert cs.label == "c136"
        assert cs.uses(3) and cs.uses(6) and not cs.uses(5)

    def test_invalid_site_rejected(self):
        with pytest.raises(ValueError):
            ConditionSet.of(0)
        with pytest.raises(ValueError):
            ConditionSet.of(8)
        with pytest.raises(ValueError):
            ConditionSet.all().uses(9)

    def test_equality_and_hash(self):
        assert ConditionSet.of(1, 3) == ConditionSet.of(3, 1)
        assert hash(ConditionSet.of(1, 3)) == hash(ConditionSet.of(3, 1))
        assert ConditionSet.of(1) != ConditionSet.of(2)

    def test_all_conditions_constant(self):
        assert ALL_CONDITIONS == frozenset(range(1, 8))


class TestComparisonStats:
    def test_immediate_decision_counted(self):
        stats = ComparisonStats()
        stats.record(0, was_forced=False)
        assert stats.decided_immediately == 1
        assert stats.resample_rounds == 0
        assert stats.forced == 0

    def test_resample_rounds_accumulate(self):
        stats = ComparisonStats()
        stats.record(3, was_forced=False)
        stats.record(2, was_forced=True)
        assert stats.resample_rounds == 5
        assert stats.forced == 1
