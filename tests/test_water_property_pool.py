"""Tests for the property-level water evaluation pool."""

import math

import numpy as np
import pytest

from repro.core import MaxStepsTermination, PointComparison
from repro.water import TIP4P_PUBLISHED, WaterSurrogate
from repro.water.cost import WaterCostFunction
from repro.water.experiment import EXPERIMENTAL_TARGETS
from repro.water.property_pool import (
    PropertyEvaluation,
    PropertySamplingPool,
    parameterize_water_property_level,
)
from repro.water.tip4p import INITIAL_SIMPLEX_3_4A


@pytest.fixture
def pool():
    return PropertySamplingPool(rng=0, warmup=1.0)


class TestPropertyEvaluation:
    def test_estimate_is_cost_of_means(self, pool):
        ev = pool.activate(TIP4P_PUBLISHED)
        expected = pool.cost(ev.property_means())
        assert ev.estimate == pytest.approx(expected)

    def test_unsampled_evaluation_undefined(self):
        cost = WaterCostFunction(EXPERIMENTAL_TARGETS)
        surr = WaterSurrogate()
        sigma0 = {n: surr.sigma0(n) for n in cost.properties}
        ev = PropertyEvaluation(TIP4P_PUBLISHED, cost, sigma0)
        assert math.isnan(ev.estimate)
        assert ev.sem == math.inf

    def test_sem_decreases_with_sampling(self, pool):
        ev = pool.activate(TIP4P_PUBLISHED)
        s1 = ev.sem
        pool.advance(100.0)
        assert ev.sem < s1
        assert ev.sem > 0.0  # chi-square floor keeps it noisy

    def test_property_means_converge(self, pool):
        ev = pool.activate(TIP4P_PUBLISHED)
        pool.advance(5000.0)
        clean = pool.surrogate.properties(TIP4P_PUBLISHED)
        assert ev.property_means()["energy"] == pytest.approx(clean["energy"], abs=0.2)
        assert ev.property_means()["pressure"] == pytest.approx(
            clean["pressure"], abs=120.0
        )

    def test_generic_merge_disabled(self, pool):
        ev = pool.activate(TIP4P_PUBLISHED)
        with pytest.raises(TypeError):
            ev.merge_block(1.0, 0.0)

    def test_missing_property_in_block_rejected(self, pool):
        ev = pool.activate(TIP4P_PUBLISHED)
        with pytest.raises(KeyError):
            ev.merge_property_block(1.0, {"energy": -41.5})

    def test_cost_estimator_bias_decays(self):
        """E[cost(means)] - cost(truth) ~ 1/t (squared-residual bias)."""
        def mean_cost(t, n=80):
            vals = []
            for seed in range(n):
                p = PropertySamplingPool(rng=seed, warmup=t)
                ev = p.activate(TIP4P_PUBLISHED)
                vals.append(ev.estimate)
            return float(np.mean(vals))

        truth = PropertySamplingPool(rng=0).func.true_value(TIP4P_PUBLISHED)
        bias_short = mean_cost(1.0) - truth
        bias_long = mean_cost(64.0) - truth
        assert bias_short > 0.0
        assert bias_long < bias_short / 8.0


class TestPropertySamplingPool:
    def test_protocol_surface(self, pool):
        ev = pool.activate(TIP4P_PUBLISHED)
        assert ev in pool
        assert len(pool) == 1
        pool.deactivate(ev)
        assert len(pool) == 0
        with pytest.raises(ValueError):
            pool.deactivate(ev)

    def test_concurrent_refinement(self, pool):
        a = pool.activate(TIP4P_PUBLISHED)
        b = pool.activate(INITIAL_SIMPLEX_3_4A[0])
        assert a.time == pytest.approx(2.0)  # refreshed during b's warmup
        assert b.time == pytest.approx(1.0)
        pool.advance(3.0)
        assert a.time == pytest.approx(5.0)

    def test_true_value_view(self, pool):
        f_true = pool.func.true_value(TIP4P_PUBLISHED)
        assert f_true == pytest.approx(
            pool.cost(pool.surrogate.properties(TIP4P_PUBLISHED))
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PropertySamplingPool(warmup=0.0)
        p = PropertySamplingPool(rng=0)
        with pytest.raises(ValueError):
            p.advance(0.0)


class TestPropertyLevelOptimization:
    def test_pc_runs_on_property_pool(self):
        pool = PropertySamplingPool(rng=3)
        opt = PointComparison(
            pool.func,
            INITIAL_SIMPLEX_3_4A[:4],
            pool=pool,
            termination=MaxStepsTermination(15),
        )
        result = opt.run()
        assert result.n_steps == 15
        assert np.isfinite(result.best_estimate)

    def test_parameterization_converges_near_tip4p(self):
        result = parameterize_water_property_level(
            algorithm="PC", seed=1, walltime=3e5, max_steps=200, tau=1e-3
        )
        eps, sig, qh = result.best_theta
        assert abs(eps - 0.155) < 0.03
        assert abs(sig - 3.154) < 0.08
        assert abs(qh - 0.520) < 0.03

    def test_matches_cost_level_path_statistically(self):
        """Property-level and cost-level noise models agree on the answer."""
        from repro.water import parameterize_water

        a = parameterize_water_property_level(
            algorithm="MN", seed=5, walltime=2e5, max_steps=150, tau=1e-3
        )
        b = parameterize_water(
            algorithm="MN", seed=5, walltime=2e5, max_steps=150, tau=1e-3
        )
        np.testing.assert_allclose(a.best_theta, b.best_theta, atol=0.15)
