"""Claim leases and the sharded result store.

Covers the store-level lease protocol (claim/renew/release, expiry,
last-record-wins with results superseding claims), the sharded layout
(stable routing, manifest, per-shard tail heal, migration), and the
acceptance criterion that an N=8 sharded store round-trips
status/summary/compare/compact identically to the legacy single file.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    ShardedResultStore,
    migrate_legacy_store,
    open_store,
    shard_index,
)
from repro.campaign.sharding import MANIFEST_FILENAME, shard_filename
from repro.campaign.store import STATUS_CLAIMED


def small_spec(**overrides) -> CampaignSpec:
    """A fast 2-algorithm x 3-seed sphere grid (6 jobs)."""
    kwargs = dict(
        name="shardtest",
        algorithms=["DET", "PC"],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=[0, 1, 2],
        tau=1e-3,
        walltime=1e3,
        max_steps=40,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


@pytest.fixture(params=["memory", "file", "sharded", "sqlite"])
def any_store(request, tmp_path):
    """The same lease/record API behind every store engine."""
    if request.param == "memory":
        return ResultStore()
    if request.param == "file":
        return ResultStore(tmp_path / "r.jsonl")
    if request.param == "sqlite":
        from repro.campaign import SQLiteStoreBackend

        return SQLiteStoreBackend(tmp_path)
    return ShardedResultStore(tmp_path, n_shards=3)


class TestLeases:
    def test_claim_grants_free_jobs_once(self, any_store):
        store = any_store
        assert store.claim(["a", "b"], "r1", ttl=60) == ["a", "b"]
        # a second runner gets nothing; the holder may re-claim its own
        assert store.claim(["a", "b"], "r2", ttl=60) == []
        assert store.claim(["a", "b"], "r1", ttl=60) == ["a", "b"]
        leases = store.leases()
        assert set(leases) == {"a", "b"}
        assert all(l.runner == "r1" for l in leases.values())

    def test_claim_denied_for_completed_jobs(self, any_store):
        store = any_store
        store.record({"job_id": "a", "status": "done"})
        store.record({"job_id": "b", "status": "failed"})
        # done is final; failed is claimable (retry policy is the runner's)
        assert store.claim(["a", "b"], "r1", ttl=60) == ["b"]

    def test_expired_lease_is_requeued_to_new_claimant(self, any_store):
        store = any_store
        t0 = 1000.0
        assert store.claim(["a"], "dead", ttl=5, now=t0) == ["a"]
        assert store.claim(["a"], "r2", ttl=5, now=t0 + 1) == []   # still live
        assert store.claim(["a"], "r2", ttl=5, now=t0 + 10) == ["a"]  # expired
        assert store.leases(now=t0 + 11)["a"].runner == "r2"

    def test_renew_extends_deadline(self, any_store):
        store = any_store
        t0 = 1000.0
        store.claim(["a"], "r1", ttl=5, now=t0)
        store.renew(["a"], "r1", ttl=5, now=t0 + 4)  # heartbeat at t+4
        assert store.claim(["a"], "r2", ttl=5, now=t0 + 6) == []  # lease held
        assert store.leases(now=t0 + 6)["a"].deadline == pytest.approx(t0 + 9)

    def test_stalled_runner_renewal_cannot_clobber_reclaim(self, any_store):
        """A heartbeat arriving after the lease lapsed *and was reclaimed*
        must not steal it back from the new holder."""
        store = any_store
        t0 = 1000.0
        store.claim(["a"], "r1", ttl=5, now=t0)
        assert store.claim(["a"], "r2", ttl=60, now=t0 + 10) == ["a"]  # lapsed
        assert store.renew(["a"], "r1", ttl=60, now=t0 + 11) == []  # too late
        assert store.leases(now=t0 + 12)["a"].runner == "r2"
        assert store.renew(["a"], "r2", ttl=60, now=t0 + 12) == ["a"]
        # a fulfilled claim is not renewed either
        store.record({"job_id": "a", "status": "done"})
        assert store.renew(["a"], "r2", ttl=60, now=t0 + 13) == []

    def test_release_frees_immediately(self, any_store):
        store = any_store
        store.claim(["a", "b"], "r1", ttl=3600)
        store.release(["a"], "r1")
        assert set(store.leases()) == {"b"}
        assert store.claim(["a"], "r2", ttl=60) == ["a"]

    def test_result_record_supersedes_claim(self, any_store):
        store = any_store
        store.claim(["a"], "r1", ttl=3600)
        store.record({"job_id": "a", "status": "done"})
        assert store.leases() == {}
        assert store.completed_ids() == {"a"}

    def test_claim_after_failure_is_live(self, any_store):
        """A re-claim written after a failed record is a live retry lease."""
        store = any_store
        store.claim(["a"], "r1", ttl=3600)
        store.record({"job_id": "a", "status": "failed"})
        assert store.leases() == {}  # the failure fulfilled that claim
        assert store.claim(["a"], "r2", ttl=3600) == ["a"]
        assert store.leases()["a"].runner == "r2"

    def test_lease_lines_never_surface_as_records(self, any_store):
        store = any_store
        store.claim(["a"], "r1", ttl=3600)
        store.record({"job_id": "b", "status": "done"})
        assert [r["job_id"] for r in store.records()] == ["b"]
        assert len(store) == 1

    def test_concurrent_store_instances_partition_claims(self, tmp_path):
        """Two store instances on one file (two runner processes in
        miniature): the flock + in-lock rescan means their claims on the
        same batch partition it, never overlap."""
        path = tmp_path / "r.jsonl"
        a, b = ResultStore(path), ResultStore(path)
        ids = [f"j{i}" for i in range(10)]
        got_a = a.claim(ids[:7], "ra", ttl=60)
        got_b = b.claim(ids, "rb", ttl=60)
        assert set(got_a) & set(got_b) == set()
        assert set(got_a) | set(got_b) == set(ids)

    def test_compact_preserves_live_claims_drops_stale(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        now = time.time()
        store.claim(["live"], "r1", ttl=3600, now=now)
        store.claim(["expired"], "r1", ttl=1, now=now - 100)
        store.claim(["released"], "r1", ttl=3600, now=now)
        store.release(["released"], "r1")
        store.claim(["finished"], "r1", ttl=3600, now=now)
        store.record({"job_id": "finished", "status": "done"})
        stats = store.compact(now=now)
        assert stats.n_records_before == 1 and stats.n_records_after == 1
        raw = (tmp_path / "r.jsonl").read_text()
        statuses = {
            json.loads(line)["job_id"]: json.loads(line)["status"]
            for line in raw.strip().splitlines()
        }
        assert statuses == {"finished": "done", "live": STATUS_CLAIMED}
        # mutual exclusion survived the rewrite
        assert store.claim(["live"], "r2", ttl=60, now=now) == []


class TestShardRouting:
    def test_shard_index_is_stable_and_in_range(self):
        for jid in ("a", "deadbeef", "97af2845df80", ""):
            k = shard_index(jid, 8)
            assert 0 <= k < 8
            assert shard_index(jid, 8) == k  # deterministic

    def test_records_land_on_their_hashed_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path, n_shards=4)
        ids = [f"job-{i}" for i in range(32)]
        for jid in ids:
            store.record({"job_id": jid, "status": "done"})
        for jid in ids:
            k = shard_index(jid, 4)
            raw = (tmp_path / shard_filename(k)).read_text()
            assert jid in raw
        # 32 ids over 4 shards: every shard should have seen traffic
        assert all((tmp_path / shard_filename(k)).exists() for k in range(4))
        assert store.completed_ids() == set(ids)

    def test_manifest_pins_shard_count(self, tmp_path):
        ShardedResultStore(tmp_path, n_shards=4)
        reopened = ShardedResultStore(tmp_path)  # count from the manifest
        assert reopened.n_shards == 4
        with pytest.raises(ValueError, match="already sharded into 4"):
            ShardedResultStore(tmp_path, n_shards=8)
        with pytest.raises(ValueError, match="no store-manifest"):
            ShardedResultStore(tmp_path / "fresh")

    def test_torn_write_on_one_shard_does_not_block_others(self, tmp_path):
        """Regression: the truncated-tail heal is per-shard — a hard kill
        mid-write on shard k leaves every other shard readable, and shard
        k itself heals on the next append."""
        store = ShardedResultStore(tmp_path, n_shards=3)
        ids = [f"job-{i}" for i in range(9)]
        for jid in ids:
            store.record({"job_id": jid, "status": "done"})
        torn = shard_index("job-0", 3)
        with open(tmp_path / shard_filename(torn), "a") as fh:
            fh.write('{"job_id": "torn", "stat')  # killed mid-write
        # a fresh reader sees every intact record on every shard
        reader = ShardedResultStore(tmp_path)
        assert reader.completed_ids() == set(ids)
        # the torn shard heals: the next append routed there is readable
        healing = next(
            f"extra-{i}" for i in range(100)
            if shard_index(f"extra-{i}", 3) == torn
        )
        reader.record({"job_id": healing, "status": "done"})
        assert ShardedResultStore(tmp_path).completed_ids() == set(ids) | {healing}

    def test_sharded_compact_aggregates_stats(self, tmp_path):
        store = ShardedResultStore(tmp_path, n_shards=4)
        for _ in range(3):
            for i in range(8):
                store.record({"job_id": f"j{i}", "status": "done", "result": {"v": i}})
        stats = store.compact()
        assert stats.n_records_before == 24 and stats.n_records_after == 8
        assert stats.n_dropped == 16
        assert len(store.records()) == 8


class TestMigration:
    def _legacy_store(self, tmp_path, n=6):
        legacy = ResultStore(tmp_path / "results.jsonl")
        for i in range(n):
            legacy.record({"job_id": f"j{i}", "status": "failed", "result": None})
        for i in range(n):  # duplicates: the retry overwrote the failure
            legacy.record({"job_id": f"j{i}", "status": "done", "result": {"v": i}})
        return legacy

    def test_migration_is_lossless(self, tmp_path):
        legacy = self._legacy_store(tmp_path)
        expected = {r["job_id"]: r for r in legacy.records()}
        sharded = migrate_legacy_store(tmp_path, n_shards=4)
        assert {r["job_id"]: r for r in sharded.records()} == expected
        assert not (tmp_path / "results.jsonl").exists()
        assert (tmp_path / "results.jsonl.migrated").exists()

    def test_migration_is_idempotent(self, tmp_path):
        self._legacy_store(tmp_path)
        first = migrate_legacy_store(tmp_path, n_shards=4)
        snapshot = {r["job_id"]: r for r in first.records()}
        again = migrate_legacy_store(tmp_path, n_shards=4)  # no legacy file now
        assert {r["job_id"]: r for r in again.records()} == snapshot
        # crash-mid-migration shape: legacy reappears next to the manifest
        relegated = ResultStore(tmp_path / "results.jsonl")
        relegated.record({"job_id": "j0", "status": "done", "result": {"v": 0}})
        resumed = open_store(tmp_path)  # open_store folds the leftover in
        assert {r["job_id"]: r for r in resumed.records()} == snapshot

    def test_concurrent_migrators_race_one_wins_store_intact(self, tmp_path):
        """Regression: two migrators racing on one directory converge —
        whoever loses the park-the-legacy-file rename tolerates it, and
        the migrated store is intact either way."""
        import threading

        self._legacy_store(tmp_path)
        expected = ResultStore(tmp_path / "results.jsonl").completed_ids()
        stores = [None, None]
        barrier = threading.Barrier(2)

        def migrate(slot):
            barrier.wait()  # maximize overlap of the two fold+rename paths
            stores[slot] = migrate_legacy_store(tmp_path, n_shards=4)

        threads = [threading.Thread(target=migrate, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(s is not None for s in stores)  # neither migrator raised
        assert not (tmp_path / "results.jsonl").exists()
        assert (tmp_path / "results.jsonl.migrated").exists()
        for store in stores + [open_store(tmp_path)]:
            assert store.completed_ids() == expected

    def test_migrator_losing_park_rename_still_succeeds(self, tmp_path, monkeypatch):
        """Deterministic shape of the race: the legacy file vanishes (a
        concurrent migrator parked it) between our fold and our rename."""
        from pathlib import Path

        self._legacy_store(tmp_path)
        expected = ResultStore(tmp_path / "results.jsonl").completed_ids()
        real_rename = Path.rename

        def stolen_rename(self, target):
            if self.name == "results.jsonl":
                self.unlink()  # the peer parked (and thus removed) it first
                raise FileNotFoundError(self)
            return real_rename(self, target)

        monkeypatch.setattr(Path, "rename", stolen_rename)
        store = migrate_legacy_store(tmp_path, n_shards=4)  # must not raise
        assert store.completed_ids() == expected
        assert open_store(tmp_path).completed_ids() == expected

    def test_open_store_resolution(self, tmp_path):
        # fresh directory, no shards requested -> legacy single file
        store = open_store(tmp_path / "a")
        assert isinstance(store, ResultStore)
        # fresh directory, shards requested -> sharded layout
        store = open_store(tmp_path / "b", shards=4)
        assert isinstance(store, ShardedResultStore) and store.n_shards == 4
        # existing manifest wins with no shards argument
        assert open_store(tmp_path / "b").n_shards == 4
        # legacy directory + shards -> migrated in place
        legacy_ids = self._legacy_store(tmp_path / "c").completed_ids()
        migrated = open_store(tmp_path / "c", shards=2)
        assert isinstance(migrated, ShardedResultStore)
        assert migrated.completed_ids() == legacy_ids
        assert (tmp_path / "c" / MANIFEST_FILENAME).exists()


class TestShardedCampaignParity:
    """Acceptance: N=8 shards round-trip identically to the single file."""

    def _statuses(self, campaign):
        status = campaign.status()
        status.pop("directory")
        status.pop("shards")
        return status

    def test_sharded_round_trips_like_single_file(self, tmp_path):
        spec = small_spec()
        single = Campaign(tmp_path / "single", spec=spec)
        single.run()
        sharded = Campaign(tmp_path / "sharded", spec=spec, shards=8)
        sharded.run()

        assert self._statuses(single) == self._statuses(sharded)
        assert single.summary() == sharded.summary()
        cmp_a = single.compare("DET", "PC")
        cmp_b = sharded.compare("DET", "PC")
        assert cmp_a.log_ratios.tolist() == cmp_b.log_ratios.tolist()
        assert cmp_a.sign == cmp_b.sign

        # compaction changes neither side's aggregates
        single.compact()
        sharded.compact()
        assert self._statuses(single) == self._statuses(sharded)
        assert single.summary() == sharded.summary()

    def test_campaign_reopens_sharded_store(self, tmp_path):
        spec = small_spec()
        Campaign(tmp_path / "c", spec=spec, shards=4).run(max_jobs=2)
        reopened = Campaign(tmp_path / "c")  # layout detected from manifest
        assert isinstance(reopened.store, ShardedResultStore)
        status = reopened.status()
        assert status["done"] == 2 and status["shards"] == 4
        report = reopened.run()
        assert report.n_done == 4 and report.n_skipped == 2

    def test_runner_leases_on_sharded_store(self, tmp_path):
        """A runner claims through shards; a peer's live lease is honoured."""
        spec = small_spec()
        jobs = spec.expand()
        store = ShardedResultStore(tmp_path, n_shards=4)
        # a live peer holds two jobs; an abandoned peer's lease is expired
        store.claim([jobs[0].job_id], "peer", ttl=3600)
        store.claim([jobs[1].job_id], "ghost", ttl=1, now=time.time() - 100)
        report = CampaignRunner(spec, store).run()
        assert report.n_done == 5  # the expired claim was requeued to us
        assert report.n_leased == 1 and report.n_remaining == 1
        assert "1 leased to peers" in str(report)
        # the peer finishes its job; the next run completes the campaign
        store.record(
            {"job_id": jobs[0].job_id, "status": "done",
             "job": jobs[0].to_dict(),
             "result": None, "error": None, "elapsed_s": 0.0}
        )
        assert CampaignRunner(spec, store).run().n_skipped == 6
