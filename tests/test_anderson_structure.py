"""Tests for the full Anderson structure-based direct search (eqs. 2.5-2.8)."""

import numpy as np
import pytest

from repro.core import AndersonStructureSearch
from repro.functions import Sphere
from repro.noise import StochasticFunction


def make_search(sigma0=0.0, seed=0, **kw):
    func = StochasticFunction(Sphere(2), sigma0=sigma0, rng=seed)
    pts = np.array([[2.0, 2.0], [3.0, 2.0], [2.0, 3.0], [3.0, 3.0]])
    defaults = dict(k1=1e6, max_iterations=60, walltime=1e5, min_size=1e-4)
    defaults.update(kw)
    return AndersonStructureSearch(func, pts, **defaults), func


class TestStructureOperations:
    def test_reflect_eq_2_6(self):
        pts = np.array([[1.0, 0.0], [0.0, 1.0]])
        x = np.array([2.0, 2.0])
        out = AndersonStructureSearch.reflect(pts, x)
        np.testing.assert_allclose(out, [[3.0, 4.0], [4.0, 3.0]])

    def test_expand_doubles_size(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        x = pts[0]
        out = AndersonStructureSearch.expand(pts, x)
        from repro.core.simplex import diameter

        assert diameter(out) == pytest.approx(2.0 * diameter(pts))

    def test_contract_halves_size(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        x = pts[0]
        out = AndersonStructureSearch.contract(pts, x)
        from repro.core.simplex import diameter

        assert diameter(out) == pytest.approx(0.5 * diameter(pts))

    def test_reflection_through_best_is_involution(self):
        pts = np.random.default_rng(0).normal(size=(4, 3))
        x = pts[1]
        twice = AndersonStructureSearch.reflect(
            AndersonStructureSearch.reflect(pts, x), x
        )
        np.testing.assert_allclose(twice, pts, atol=1e-12)


class TestStructureSearch:
    def test_converges_on_noiseless_sphere(self):
        search, func = make_search()
        result = search.run()
        assert result.best_true < 1.0
        assert result.algorithm == "AndersonDS"

    def test_size_termination(self):
        search, _ = make_search(min_size=10.0)  # structure starts smaller
        result = search.run()
        assert result.reason == "size"
        assert result.n_steps == 0

    def test_walltime_termination(self):
        search, _ = make_search(sigma0=5.0, k1=1e-6, walltime=50.0)
        result = search.run()
        assert result.reason == "walltime"

    def test_level_tracks_operations(self):
        search, _ = make_search(max_iterations=10)
        search.run()
        # on a convex bowl from outside, contractions dominate eventually
        assert isinstance(search.level, int)

    def test_runs_under_noise(self):
        search, func = make_search(sigma0=1.0, seed=3, k1=1e3, max_iterations=40)
        result = search.run()
        assert np.isfinite(result.best_estimate)
        assert result.n_steps > 0

    def test_invalid_points_rejected(self):
        func = StochasticFunction(Sphere(2), sigma0=0.0, rng=0)
        with pytest.raises(ValueError):
            AndersonStructureSearch(func, np.zeros((1, 2)))
        with pytest.raises(ValueError):
            AndersonStructureSearch(func, np.zeros(3))
