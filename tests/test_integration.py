"""Cross-module integration tests: the full stack end to end."""

import numpy as np
import pytest

from repro.core import (
    MaxStepsTermination,
    PointComparison,
    ToleranceTermination,
    WalltimeTermination,
    optimize,
)
from repro.functions import Sphere, initial_simplex
from repro.mw import FileIOChannel, MWDriver, VertexServer
from repro.mw.vertex_server import ServerProxyExecutor
from repro.noise import StochasticFunction
from repro.water import TIP4P_PUBLISHED, surrogate_cost_function, water_systems
from repro.water.parameterize import water_cost


class TestOptimizeFrontDoor:
    def test_named_function(self):
        result = optimize(
            "sphere", dim=2, algorithm="DET", sigma0=0.0, seed=0,
            x0=[2.0, 2.0], tau=1e-10, max_steps=1000,
        )
        assert result.best_true < 1e-8

    def test_callable_objective(self):
        # note the asymmetric start: eq. 2.9 terminates on *value spread*, so
        # a simplex symmetric about the optimum (all values equal) would stop
        # immediately — a legitimate property of the paper's criterion
        result = optimize(
            lambda th: float((th[0] - 3.0) ** 2 + th[1] ** 2),
            algorithm="DET", sigma0=0.0, x0=[0.1, -0.2], step=0.9,
            tau=1e-10, max_steps=1000,
        )
        np.testing.assert_allclose(result.best_theta, [3.0, 0.0], atol=1e-3)

    def test_prewrapped_stochastic_function(self):
        func = StochasticFunction(Sphere(2), sigma0=0.5, rng=3)
        result = optimize(func, algorithm="PC", x0=[1.0, 1.0],
                          tau=1e-2, walltime=1e4, max_steps=200)
        assert result.best_true < 2.0

    def test_random_simplex_needs_dim(self):
        with pytest.raises(ValueError):
            optimize(lambda th: 0.0, algorithm="DET")

    def test_named_function_needs_dim(self):
        with pytest.raises(ValueError):
            optimize("sphere", algorithm="DET")

    def test_restarts_refine(self):
        result = optimize(
            "rosenbrock", dim=2, algorithm="DET", sigma0=0.0, seed=0,
            x0=[-1.0, 1.5], step=0.5, tau=1e-10, max_steps=800, restarts=2,
        )
        assert result.extra["restarts"] == 2
        assert result.best_true < 1e-6

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            optimize("sphere", dim=2, algorithm="SGD")


class TestFullMWStack:
    def test_master_worker_server_client_chain(self, tmp_path):
        """Fig 3.2's full path drives a real optimization: the optimizer's
        pool dispatches MW tasks; each worker proxies through spool files to
        a vertex server running Ns=6 surrogate property clients; the server
        applies the eq. 3.4 cost."""
        import threading

        from repro.mw.vertex_pool import MWVertexPool

        # vertex server with the six water property systems
        server = VertexServer(water_systems("surrogate"), cost=water_cost(), seed=1)
        req_w = FileIOChannel(tmp_path, "req")
        req_r = FileIOChannel(tmp_path, "req")
        rsp_w = FileIOChannel(tmp_path, "rsp")
        rsp_r = FileIOChannel(tmp_path, "rsp")
        thread = threading.Thread(
            target=server.serve, args=(req_r, rsp_w), kwargs={"timeout": 30.0}
        )
        thread.start()
        try:
            executor = ServerProxyExecutor(req_w, rsp_r, timeout=30.0)
            driver = MWDriver(executor, n_workers=1, backend="inproc", seed=0)
            f, _, _ = surrogate_cost_function()
            # long warmup -> the server's property noise (sigma ~ 1/sqrt(t))
            # is tiny by the time the master reads the estimate
            pool = MWVertexPool(
                f, sigma0=0.0, driver=driver, warmup=10_000.0
            )
            # route pool sampling through the server instead of the local f
            ev = pool.activate(TIP4P_PUBLISHED)
            assert ev.estimate == pytest.approx(f(TIP4P_PUBLISHED), abs=0.5)
        finally:
            req_w.write(None)
            thread.join(timeout=10.0)
            driver.shutdown()

    def test_pc_over_mw_threaded_full_opt(self):
        from repro.mw.vertex_pool import MWVertexPool

        def f(theta):
            return float(np.dot(theta, theta))

        with MWVertexPool(f, sigma0=0.3, n_workers=5, backend="threaded", seed=2) as pool:
            term = (
                ToleranceTermination(5e-2)
                | WalltimeTermination(5e3)
                | MaxStepsTermination(150)
            )
            result = PointComparison(
                pool.func, initial_simplex([2.0, -1.0], step=1.0),
                pool=pool, termination=term,
            ).run()
        assert result.best_true < 1.0


class TestWaterOnRealMD:
    @pytest.mark.slow
    def test_md_systems_produce_cost(self):
        """The MD-backed property systems feed the eq. 3.4 cost end to end."""
        from repro.md.simulation import SimulationProtocol

        protocol = SimulationProtocol(
            n_molecules=4, n_equilibration=30, n_production=40, sample_every=10,
            rdf_bins=16,
        )
        systems = water_systems("md", md_protocol=protocol)
        server = VertexServer(systems, cost=water_cost(), seed=0)
        out = server.evaluate(TIP4P_PUBLISHED, dt=1.0)
        assert np.isfinite(out["sample"])
        assert set(out["properties"]) >= {
            "energy", "pressure", "diffusion", "p_goo", "p_goh", "p_ghh",
        }
