"""Tests for metrics, histograms, traces and report rendering."""

import math

import numpy as np
import pytest

from repro.analysis import (
    evaluate_result,
    evaluate_runs,
    format_histogram,
    format_loglog_plot,
    format_series,
    format_table,
    log_ratio,
    ratio_histogram,
    trace_series,
)
from repro.core import MaxStepsTermination, NelderMead
from repro.functions import Sphere, initial_simplex
from repro.noise import StochasticFunction


def run_sphere(steps=30, sigma0=0.0, seed=0):
    func = StochasticFunction(Sphere(2), sigma0=sigma0, rng=seed)
    opt = NelderMead(
        func,
        initial_simplex([2.0, -1.0], step=1.0),
        termination=MaxStepsTermination(steps),
    )
    return opt.run(), Sphere(2)


class TestMetrics:
    def test_evaluate_result_fields(self):
        result, f = run_sphere()
        m = evaluate_result(result, f)
        assert m.n_iterations == 30
        assert m.value_error == pytest.approx(result.best_true)
        assert m.distance == pytest.approx(np.linalg.norm(result.best_theta))

    def test_aggregate_over_runs(self):
        results = []
        f = Sphere(2)
        for seed in range(3):
            r, _ = run_sphere(steps=10, sigma0=1.0, seed=seed)
            results.append(r)
        agg = evaluate_runs(results, f)
        assert agg.n_runs == 3
        assert agg.mean_iterations == 10.0
        assert agg.mean_value_error >= 0.0

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            evaluate_runs([], Sphere(2))


class TestLogRatio:
    def test_equal_minima_give_zero(self):
        assert log_ratio(1e-3, 1e-3) == 0.0

    def test_better_numerator_is_negative(self):
        assert log_ratio(1e-5, 1e-2) == pytest.approx(-3.0)

    def test_floor_keeps_ratio_finite(self):
        assert math.isfinite(log_ratio(0.0, 1.0))
        assert log_ratio(0.0, 0.0) == 0.0

    def test_negative_minima_rejected(self):
        with pytest.raises(ValueError):
            log_ratio(-1.0, 1.0)


class TestRatioHistogram:
    def test_counts_sum_to_pairs(self):
        h = ratio_histogram([1, 1, 1], [1, 10, 0.1], lo=-2, hi=2, nbins=4)
        assert h.counts.sum() == 3
        assert h.n_pairs == 3

    def test_clipping_recorded(self):
        h = ratio_histogram([1e-9], [1.0], lo=-2, hi=2, nbins=4)
        assert h.clipped_low == 1
        assert h.counts.sum() == 1  # still lands in the edge bin

    def test_fraction_below(self):
        h = ratio_histogram([0.1, 1.0, 10.0], [1.0, 1.0, 1.0], lo=-4, hi=4, nbins=16)
        assert h.fraction_below(0.0) == pytest.approx(1 / 3)

    def test_median_sign_reflects_winner(self):
        h = ratio_histogram([0.01, 0.02, 1.0], [1.0, 1.0, 1.0], lo=-4, hi=4, nbins=32)
        assert h.median() < 0

    def test_mismatched_pairs_rejected(self):
        with pytest.raises(ValueError):
            ratio_histogram([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ratio_histogram([], [])

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            ratio_histogram([1.0], [1.0], lo=2, hi=-2)


class TestTraceSeries:
    def test_monotone_best_so_far(self):
        result, _ = run_sphere(steps=40, sigma0=2.0, seed=1)
        s = trace_series(result)
        assert np.all(np.diff(s.values) <= 1e-12)
        assert s.times.shape == s.values.shape

    def test_value_at_interpolates_stepwise(self):
        result, _ = run_sphere(steps=10)
        s = trace_series(result)
        assert s.value_at(s.times[-1] + 100) == s.final_value
        assert math.isnan(s.value_at(-1.0))

    def test_label_defaults_to_algorithm(self):
        result, _ = run_sphere(steps=5)
        assert trace_series(result).label == "DET"

    def test_requires_trace(self):
        result, _ = run_sphere(steps=5)
        result.trace = None
        with pytest.raises(ValueError):
            trace_series(result)

    def test_decades_gained_positive_for_progress(self):
        result, _ = run_sphere(steps=60)
        s = trace_series(result)
        if s.values[-1] > 0:
            assert s.decades_gained() > 0


class TestReportRendering:
    def test_table_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_histogram_rendering(self):
        h = ratio_histogram([0.1, 1.0], [1.0, 1.0], lo=-2, hi=2, nbins=4)
        text = format_histogram(h, title="H")
        assert "H" in text
        assert "n=2 pairs" in text
        assert "#" in text

    def test_series_rendering(self):
        result, _ = run_sphere(steps=5)
        text = format_series([trace_series(result)], title="S")
        assert "S" in text
        assert "DET" in text

    def test_loglog_plot_renders(self):
        result, _ = run_sphere(steps=30)
        text = format_loglog_plot([trace_series(result)], title="P")
        assert "P" in text
        assert "legend" in text
