"""Tests for the file-I/O spool channel and the vertex server level."""

import threading

import numpy as np
import pytest

from repro.mw import FileIOChannel, SimulationClient, VertexServer
from repro.mw.vertex_server import ServerProxyExecutor, mean_aggregator
from repro.mw.worker import WorkerContext


class TestFileIOChannel:
    def test_roundtrip_in_order(self, tmp_path):
        w = FileIOChannel(tmp_path, "c")
        r = FileIOChannel(tmp_path, "c")
        w.write({"x": 1})
        w.write({"x": 2})
        assert r.read(timeout=1.0) == {"x": 1}
        assert r.read(timeout=1.0) == {"x": 2}

    def test_frames_deleted_after_read(self, tmp_path):
        w = FileIOChannel(tmp_path, "c")
        r = FileIOChannel(tmp_path, "c")
        w.write(1)
        r.read(timeout=1.0)
        assert not list(tmp_path.glob("*.frame"))

    def test_ndarray_payload(self, tmp_path):
        w = FileIOChannel(tmp_path, "c")
        r = FileIOChannel(tmp_path, "c")
        arr = np.arange(6, dtype=float).reshape(2, 3)
        w.write({"theta": arr})
        np.testing.assert_array_equal(r.read(timeout=1.0)["theta"], arr)

    def test_timeout_when_empty(self, tmp_path):
        r = FileIOChannel(tmp_path, "c")
        with pytest.raises(TimeoutError):
            r.read(timeout=0.05)

    def test_pending_and_try_read(self, tmp_path):
        w = FileIOChannel(tmp_path, "c")
        r = FileIOChannel(tmp_path, "c")
        assert not r.pending()
        assert r.try_read() is None
        w.write(7)
        assert r.pending()
        assert r.try_read() == 7

    def test_drain(self, tmp_path):
        w = FileIOChannel(tmp_path, "c")
        r = FileIOChannel(tmp_path, "c")
        for i in range(5):
            w.write(i)
        assert r.drain() == [0, 1, 2, 3, 4]

    def test_channels_are_isolated_by_name(self, tmp_path):
        wa = FileIOChannel(tmp_path, "a")
        ra = FileIOChannel(tmp_path, "a")
        FileIOChannel(tmp_path, "b").write("other")
        wa.write("mine")
        assert ra.read(timeout=1.0) == "mine"

    def test_invalid_name_rejected(self, tmp_path):
        for bad in ("", "a.b", "a/b"):
            with pytest.raises(ValueError):
                FileIOChannel(tmp_path, bad)

    def test_no_partial_reads_under_concurrency(self, tmp_path):
        """Writer thread + reader thread never observe a torn frame."""
        w = FileIOChannel(tmp_path, "c")
        r = FileIOChannel(tmp_path, "c")
        n = 50
        payload = {"blob": np.ones(200), "i": 0}
        received = []

        def writer():
            for i in range(n):
                payload["i"] = i
                w.write(payload)

        def reader():
            for _ in range(n):
                received.append(r.read(timeout=5.0))

        tw, tr = threading.Thread(target=writer), threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join()
        tr.join()
        assert [m["i"] for m in received] == list(range(n))
        assert all(np.all(m["blob"] == 1.0) for m in received)


def constant_system(value):
    def system(theta, dt, rng):
        return {"p": float(value)}

    return system


def noisy_system(theta, dt, rng):
    return {"energy": float(theta[0] + rng.normal(0, 1.0 / np.sqrt(dt)))}


def pressure_system(theta, dt, rng):
    return {"pressure": float(theta[1])}


class TestSimulationClient:
    def test_runs_system(self):
        client = SimulationClient(constant_system(3.0))
        assert client.run(np.zeros(2), 1.0) == {"p": 3.0}
        assert client.n_runs == 1

    def test_rejects_non_dict_result(self):
        client = SimulationClient(lambda th, dt, rng: 42)
        with pytest.raises(TypeError):
            client.run(np.zeros(1), 1.0)


class TestVertexServer:
    def test_aggregates_means_over_clients(self):
        server = VertexServer(
            [constant_system(1.0), constant_system(3.0)], seed=0
        )
        out = server.evaluate(np.zeros(2), 1.0)
        assert out["properties"]["p"] == pytest.approx(2.0)
        assert out["dt"] == 1.0

    def test_distinct_properties_merge(self):
        server = VertexServer([noisy_system, pressure_system], seed=0)
        out = server.evaluate(np.array([2.0, 5.0]), 10_000.0)
        assert out["properties"]["energy"] == pytest.approx(2.0, abs=0.2)
        assert out["properties"]["pressure"] == 5.0

    def test_cost_function_applied(self):
        server = VertexServer(
            [pressure_system],
            cost=lambda props: (props["pressure"] - 1.0) ** 2,
            seed=0,
        )
        out = server.evaluate(np.array([0.0, 3.0]), 1.0)
        assert out["sample"] == pytest.approx(4.0)

    def test_parallel_clients_match_serial_statistics(self):
        serial = VertexServer([constant_system(i) for i in range(4)], seed=0)
        par = VertexServer(
            [constant_system(i) for i in range(4)], seed=0, parallel_clients=True
        )
        assert (
            serial.evaluate(np.zeros(1), 1.0)["properties"]
            == par.evaluate(np.zeros(1), 1.0)["properties"]
        )

    def test_requires_at_least_one_system(self):
        with pytest.raises(ValueError):
            VertexServer([])

    def test_invalid_dt_rejected(self):
        server = VertexServer([constant_system(0.0)])
        with pytest.raises(ValueError):
            server.evaluate(np.zeros(1), 0.0)

    def test_ns_property(self):
        assert VertexServer([constant_system(0)] * 3).ns == 3

    def test_mean_aggregator_partial_keys(self):
        out = mean_aggregator([{"a": 1.0}, {"a": 3.0, "b": 10.0}])
        assert out == {"a": 2.0, "b": 10.0}


class TestServerOverFileIO:
    def test_worker_server_loop(self, tmp_path):
        """Full Fig. 3.2 path: executor -> request spool -> server -> response."""
        req_w = FileIOChannel(tmp_path, "req")
        req_r = FileIOChannel(tmp_path, "req")
        rsp_w = FileIOChannel(tmp_path, "rsp")
        rsp_r = FileIOChannel(tmp_path, "rsp")

        server = VertexServer(
            [pressure_system], cost=lambda p: p["pressure"], seed=0
        )
        t = threading.Thread(
            target=server.serve, args=(req_r, rsp_w), kwargs={"timeout": 5.0}
        )
        t.start()

        executor = ServerProxyExecutor(req_w, rsp_r, timeout=5.0)
        ctx = WorkerContext(rank=1, rng=np.random.default_rng(0))
        out1 = executor({"theta": np.array([0.0, 7.0]), "dt": 1.0}, ctx)
        out2 = executor({"theta": np.array([0.0, 9.0]), "dt": 2.0}, ctx)
        req_w.write(None)  # shutdown sentinel
        t.join(timeout=5.0)

        assert out1["sample"] == 7.0
        assert out2["sample"] == 9.0
        assert server.n_evaluations == 2
