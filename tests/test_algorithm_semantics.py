"""Branch-exact tests of the printed Algorithms 1-3 decision trees.

A rigged lookup function assigns chosen values to the exact points the first
simplex iteration evaluates (initial vertices A, B, C; reflection (1,-1);
expansion (1.5,-2); contraction (0.25,0.5)), so each test drives the loop
down one specific branch and asserts the operation taken — pinning the
reproduction to the paper's pseudocode, line by line.
"""

import numpy as np
import pytest

from repro.core import (
    ConditionSet,
    MaxNoise,
    MaxStepsTermination,
    NelderMead,
    PointComparison,
)
from repro.noise import StochasticFunction

A, B, C = (0.0, 0.0), (1.0, 0.0), (0.0, 1.0)
REF = (1.0, -1.0)     # 2*cent - C with cent = (A+B)/2 = (0.5, 0)
EXP = (1.5, -2.0)     # 2*ref - cent
CON = (0.25, 0.5)     # 0.5*C + 0.5*cent
VERTS = np.array([A, B, C])


class Rigged:
    """Lookup-table objective; unknown points get a large default."""

    def __init__(self, table, default=100.0):
        self.table = {k: float(v) for k, v in table.items()}
        self.default = default
        self.calls = []

    def __call__(self, theta):
        key = (round(float(theta[0]), 6), round(float(theta[1]), 6))
        self.calls.append(key)
        return self.table.get(key, self.default)


def first_op(table, cls=NelderMead, **kw):
    f = Rigged(table)
    func = StochasticFunction(f, sigma0=0.0, rng=0)
    opt = cls(func, VERTS, termination=MaxStepsTermination(1), **kw)
    result = opt.run()
    return result.trace.operations()[0], f, opt


BASE = {A: 1.0, B: 2.0, C: 3.0}  # worst is C, min is A


class TestAlgorithm1Branches:
    def test_expansion_branch(self):
        """g(ref) < g(min) and g(exp) < g(ref) -> expand (lines 4-7)."""
        op, f, opt = first_op({**BASE, REF: 0.5, EXP: 0.2})
        assert op == "expand"
        assert any(np.allclose(v.theta, EXP) for v in opt.simplex.vertices)

    def test_reflection_after_failed_expansion(self):
        """g(ref) < g(min) but g(exp) >= g(ref) -> reflect (lines 8-9)."""
        op, f, opt = first_op({**BASE, REF: 0.5, EXP: 0.8})
        assert op == "reflect"
        assert any(np.allclose(v.theta, REF) for v in opt.simplex.vertices)

    def test_reflection_between_min_and_max(self):
        """g(min) <= g(ref) < g(max) -> reflect, expansion never tried
        (lines 12-13; note: the paper's Algorithm 1 compares against the
        WORST vertex here, not the second-worst)."""
        op, f, _ = first_op({**BASE, REF: 2.5})
        assert op == "reflect"
        assert EXP not in f.calls

    def test_reflection_accepted_even_above_second_worst(self):
        """g(smax) <= g(ref) < g(max) still reflects under Algorithm 1."""
        op, _, _ = first_op({**BASE, REF: 2.9})  # above B=2 (smax), below C=3
        assert op == "reflect"

    def test_contraction_branch(self):
        """g(ref) >= g(max), g(con) < g(max) -> contract (lines 15-17)."""
        op, f, opt = first_op({**BASE, REF: 5.0, CON: 2.9})
        assert op == "contract"
        assert any(np.allclose(v.theta, CON) for v in opt.simplex.vertices)

    def test_collapse_branch(self):
        """Contraction fails too -> collapse toward the best vertex
        (lines 19-22)."""
        op, f, opt = first_op({**BASE, REF: 5.0, CON: 50.0})
        assert op == "collapse"
        points = sorted(tuple(np.round(v.theta, 6)) for v in opt.simplex.vertices)
        # A stays; B and C move halfway toward A
        assert points == sorted([(0.0, 0.0), (0.5, 0.0), (0.0, 0.5)])


class TestAlgorithm2MatchesAlgorithm1WhenNoiseless:
    @pytest.mark.parametrize(
        "table,expected",
        [
            ({**BASE, REF: 0.5, EXP: 0.2}, "expand"),
            ({**BASE, REF: 2.5}, "reflect"),
            ({**BASE, REF: 5.0, CON: 2.9}, "contract"),
            ({**BASE, REF: 5.0, CON: 50.0}, "collapse"),
        ],
    )
    def test_same_branches(self, table, expected):
        op, _, _ = first_op(table, cls=MaxNoise, k=2.0)
        assert op == expected


class TestAlgorithm3Branches:
    def pc(self, table, conditions=None):
        return first_op(
            table,
            cls=PointComparison,
            k=1.0,
            conditions=conditions or ConditionSet.none(),
        )

    def test_condition_2_accepts_reflection_without_expansion(self):
        """c1 (ref below smax) then c2 (ref above min) -> reflect; the
        expansion point is never evaluated."""
        op, f, _ = self.pc({**BASE, REF: 1.5})  # between min 1 and smax 2
        assert op == "reflect"
        assert EXP not in f.calls

    def test_expansion_after_condition_2_fails(self):
        """ref below min -> c2 fails -> expansion attempted (c3)."""
        op, f, _ = self.pc({**BASE, REF: 0.5, EXP: 0.2})
        assert op == "expand"

    def test_condition_4_falls_back_to_reflection(self):
        op, f, _ = self.pc({**BASE, REF: 0.5, EXP: 0.9})
        assert op == "reflect"

    def test_condition_5_contracts_on_smax(self):
        """PC branches on the SECOND-WORST vertex: ref above smax=2 (but
        below max=3, where Algorithm 1 would still reflect) -> contraction
        branch."""
        op, f, _ = self.pc({**BASE, REF: 2.5, CON: 2.0})
        assert op == "contract"

    def test_condition_7_collapses(self):
        op, f, opt = self.pc({**BASE, REF: 5.0, CON: 50.0})
        assert op == "collapse"
