"""Geometry and bookkeeping tests for the Simplex class."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    Simplex,
    collapse_point,
    contract_point,
    diameter,
    expand_point,
    reflect_point,
)
from repro.noise import VertexEvaluation


def make_eval(theta, g):
    ev = VertexEvaluation(theta, sigma0=0.0)
    ev.merge_block(1.0, g)
    return ev


def make_simplex(points, values):
    return Simplex([make_eval(p, v) for p, v in zip(points, values)])


point = hnp.arrays(float, (3,), elements=st.floats(-50, 50, allow_nan=False))


class TestTransforms:
    def test_reflection_paper_coefficients(self):
        """alpha=1: ref = 2 cent - max (Algorithm 1 line 3)."""
        cent = np.array([1.0, 1.0])
        worst = np.array([3.0, -1.0])
        np.testing.assert_allclose(reflect_point(cent, worst), [-1.0, 3.0])

    def test_expansion_paper_coefficients(self):
        """gamma=2: exp = 2 ref - cent (Algorithm 1 line 5)."""
        ref = np.array([2.0, 0.0])
        cent = np.array([1.0, 1.0])
        np.testing.assert_allclose(expand_point(ref, cent), [3.0, -1.0])

    def test_contraction_paper_coefficients(self):
        """beta=0.5: con = 0.5 max + 0.5 cent (Algorithm 1 line 15)."""
        worst = np.array([4.0, 0.0])
        cent = np.array([0.0, 2.0])
        np.testing.assert_allclose(contract_point(worst, cent), [2.0, 1.0])

    def test_collapse_halfway(self):
        np.testing.assert_allclose(
            collapse_point(np.array([4.0, 0.0]), np.array([0.0, 2.0])), [2.0, 1.0]
        )

    @given(cent=point, worst=point)
    @settings(max_examples=40)
    def test_reflection_is_involution(self, cent, worst):
        """Reflecting the reflection recovers the original point."""
        ref = reflect_point(cent, worst)
        back = reflect_point(cent, ref)
        np.testing.assert_allclose(back, worst, atol=1e-9)

    @given(cent=point, worst=point)
    @settings(max_examples=40)
    def test_reflection_preserves_distance_to_centroid(self, cent, worst):
        ref = reflect_point(cent, worst)
        assert np.linalg.norm(ref - cent) == pytest.approx(
            np.linalg.norm(worst - cent), abs=1e-9
        )

    @given(cent=point, worst=point)
    @settings(max_examples=40)
    def test_expansion_doubles_centroid_distance(self, cent, worst):
        ref = reflect_point(cent, worst)
        exp = expand_point(ref, cent)
        assert np.linalg.norm(exp - cent) == pytest.approx(
            2.0 * np.linalg.norm(ref - cent), abs=1e-9
        )

    @given(cent=point, worst=point)
    @settings(max_examples=40)
    def test_contraction_halves_centroid_distance(self, cent, worst):
        con = contract_point(worst, cent)
        assert np.linalg.norm(con - cent) == pytest.approx(
            0.5 * np.linalg.norm(worst - cent), abs=1e-9
        )

    @given(cent=point, worst=point)
    @settings(max_examples=40)
    def test_reflect_expand_contract_are_collinear(self, cent, worst):
        """All trial points lie on the worst-through-centroid line."""
        ref = reflect_point(cent, worst)
        exp = expand_point(ref, cent)
        con = contract_point(worst, cent)
        direction = worst - cent
        for p in (ref, exp, con):
            rel = p - cent
            cross = np.linalg.norm(
                rel * np.linalg.norm(direction) + direction * np.linalg.norm(rel)
            ) * np.linalg.norm(
                rel * np.linalg.norm(direction) - direction * np.linalg.norm(rel)
            )
            # rel is parallel (or anti-parallel) to direction
            assert min(
                np.linalg.norm(rel / max(np.linalg.norm(rel), 1e-300) - direction / max(np.linalg.norm(direction), 1e-300)),
                np.linalg.norm(rel / max(np.linalg.norm(rel), 1e-300) + direction / max(np.linalg.norm(direction), 1e-300)),
            ) == pytest.approx(0.0, abs=1e-6) or np.linalg.norm(rel) < 1e-9 or np.linalg.norm(direction) < 1e-9
            del cross


class TestDiameter:
    def test_two_points(self):
        assert diameter([np.zeros(2), np.array([3.0, 4.0])]) == pytest.approx(5.0)

    def test_max_pairwise(self):
        pts = [np.array([0.0]), np.array([1.0]), np.array([10.0])]
        assert diameter(pts) == pytest.approx(10.0)

    def test_identical_points_zero(self):
        assert diameter([np.ones(3)] * 4) == pytest.approx(0.0)

    @given(
        pts=hnp.arrays(
            float, (5, 3), elements=st.floats(-100, 100, allow_nan=False)
        ),
        shift=point,
    )
    @settings(max_examples=40)
    def test_translation_invariance(self, pts, shift):
        assert diameter(pts) == pytest.approx(diameter(pts + shift), abs=1e-6)


class TestSimplexContainer:
    def test_requires_d_plus_one_vertices(self):
        pts = np.eye(3)  # only 3 vertices for d=3
        with pytest.raises(ValueError):
            make_simplex(pts, [1.0, 2.0, 3.0])

    def test_order_returns_min_smax_max(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        s = make_simplex(pts, [5.0, 1.0, 3.0])
        mn, smax, mx = s.order()
        assert mn.estimate == 1.0
        assert smax.estimate == 3.0
        assert mx.estimate == 5.0

    def test_best_worst(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        s = make_simplex(pts, [5.0, 1.0, 3.0])
        assert s.best().estimate == 1.0
        assert s.worst().estimate == 5.0

    def test_centroid_excludes_vertex(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        s = make_simplex(pts, [9.0, 1.0, 1.0])
        worst = s.worst()
        np.testing.assert_allclose(s.centroid_excluding(worst), [1.0, 1.0])

    def test_centroid_requires_member(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        s = make_simplex(pts, [9.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            s.centroid_excluding(make_eval([5.0, 5.0], 0.0))

    def test_internal_variance(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        s = make_simplex(pts, [1.0, 2.0, 3.0])
        assert s.internal_variance() == pytest.approx(np.var([1.0, 2.0, 3.0]))

    def test_replace_updates_contraction_level(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        s = make_simplex(pts, [5.0, 1.0, 3.0])
        assert s.contraction_level == 0
        new = make_eval([0.5, 0.5], 0.5)
        s.replace(s.worst(), new, "contract")
        assert s.contraction_level == 1
        s.replace(s.worst(), make_eval([0.2, 0.2], 0.1), "expand")
        assert s.contraction_level == 0
        s.replace(s.worst(), make_eval([0.1, 0.1], 0.05), "reflect")
        assert s.contraction_level == 0

    def test_replace_rejects_unknown_vertex(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        s = make_simplex(pts, [5.0, 1.0, 3.0])
        with pytest.raises(ValueError):
            s.replace(make_eval([9.0, 9.0], 0.0), make_eval([0.0, 0.0], 0.0), "reflect")

    def test_replace_rejects_unknown_operation(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        s = make_simplex(pts, [5.0, 1.0, 3.0])
        with pytest.raises(ValueError):
            s.replace(s.worst(), make_eval([0.0, 0.5], 0.0), "teleport")

    def test_collapse_keeps_best_and_adds_d_levels(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        s = make_simplex(pts, [1.0, 5.0, 7.0])
        best = s.best()
        reps = [make_eval([1.0, 0.0], 2.0), make_eval([0.0, 1.0], 2.0)]
        s.collapse(reps)
        assert best in s.vertices
        assert s.contraction_level == 2
        assert len(s) == 3

    def test_collapse_requires_d_replacements(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        s = make_simplex(pts, [1.0, 5.0, 7.0])
        with pytest.raises(ValueError):
            s.collapse([make_eval([1.0, 0.0], 2.0)])

    def test_collapse_halves_diameter_geometrically(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])
        s = make_simplex(pts, [1.0, 5.0, 7.0])
        d0 = s.diameter()
        best = s.best()
        reps = [
            make_eval(collapse_point(ev.theta, best.theta), 0.0)
            for ev in s.vertices
            if ev is not best
        ]
        s.collapse(reps)
        assert s.diameter() == pytest.approx(d0 / 2.0)
