"""Fault-injection suite for lease-based campaign draining.

The store records can't prove exactly-once *execution* — last-record-wins
hides duplicates by design — so these tests count actual evaluator calls:
in-process via a monkeypatched ``run_job``, across processes via the
``$REPRO_JOB_AUDIT_LOG`` execution audit log (one ``O_APPEND`` line per
job execution, written by ``repro.campaign.execution`` before each run).

Covered: two racing runners never duplicate an execution (the acceptance
criterion, >= 200 jobs over a sharded store), a SIGKILLed runner's leased
jobs are reclaimed exactly once after expiry, graceful interrupts release
claims immediately, and the audit log itself.  Every scenario runs once
per store engine via the parametrized ``store_backend`` fixture — the
lease protocol's guarantees are the engine contract, not a JSONL
implementation detail.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    CampaignSpec,
    JOB_AUDIT_ENV,
    ResultStore,
    open_store,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


def fast_spec(n_seeds=25, **overrides) -> CampaignSpec:
    """A grid of ~1 ms sphere jobs (n = 2 * n_seeds)."""
    kwargs = dict(
        name="chaos",
        algorithms=["DET", "PC"],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=list(range(n_seeds)),
        tau=1e-3,
        walltime=1e3,
        max_steps=25,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def audit_entries(path) -> list:
    """``(job_id, run_id, span_id, worker)`` tuples in execution order.

    Empty if the log was never written.  Each line is written whole under
    ``O_APPEND``, so entries from concurrent runners never interleave.
    """
    path = Path(path)
    if not path.exists():
        return []
    return [
        tuple(line.split())
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def audit_ids(path) -> list:
    """Job ids in execution order from an audit log (empty if never written)."""
    return [entry[0] for entry in audit_entries(path)]


def synthetic_run_job(job) -> dict:
    """A store record without the optimizer run (for call-counting fakes)."""
    return {
        "job_id": job.job_id,
        "status": "done",
        "job": job.to_dict(),
        "result": None,
        "error": None,
        "elapsed_s": 0.0,
    }


class TestInProcessRaces:
    def test_two_thread_runners_zero_duplicate_executions(self, store_backend, monkeypatch):
        """Two runners racing the same grid through one store execute
        every job exactly once — counted at the evaluator, not the store."""
        calls = Counter()
        lock = threading.Lock()

        def counting_run_job(job):
            with lock:
                calls[job.job_id] += 1
            return synthetic_run_job(job)

        monkeypatch.setattr("repro.campaign.runner.run_job", counting_run_job)
        spec = fast_spec(n_seeds=50)  # 100 jobs
        reports = [None, None]

        def drain(slot):
            runner = CampaignRunner(
                spec,
                store_backend(),  # each runner gets its own store instance
                batch_size=5,
                runner_id=f"runner-{slot}",  # threads share a pid
            )
            reports[slot] = runner.run()

        threads = [threading.Thread(target=drain, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        expected = {j.job_id for j in spec.expand()}
        assert set(calls) == expected
        assert all(n == 1 for n in calls.values()), calls.most_common(3)
        assert reports[0].n_done + reports[1].n_done == len(expected)
        assert store_backend().completed_ids() == expected

    def test_interrupt_releases_unfulfilled_claims(self, store_backend, monkeypatch):
        """Ctrl-C mid-batch gives the batch's claims back immediately, so a
        peer reclaims without waiting out the TTL."""
        executed = []

        def interrupting_run_job(job):
            if len(executed) == 2:
                raise KeyboardInterrupt
            executed.append(job.job_id)
            return synthetic_run_job(job)

        monkeypatch.setattr("repro.campaign.runner.run_job", interrupting_run_job)
        spec = fast_spec(n_seeds=3)  # 6 jobs
        store = store_backend()
        report = CampaignRunner(spec, store, batch_size=6, lease_ttl=3600).run()
        assert report.interrupted
        assert store.leases() == {}  # released, not left to expire
        # a peer can claim the whole grid right now, hour-long TTL or not
        ids = [j.job_id for j in spec.expand()]
        assert store_backend().claim(ids, "peer", ttl=60) == ids

    def test_expired_peer_lease_requeued_within_one_run(self, store_backend):
        """A crashed peer's expired leases don't force a re-run: the same
        run() call requeues them on a later pass."""
        spec = fast_spec(n_seeds=3)  # 6 jobs
        ids = [j.job_id for j in spec.expand()]
        store = store_backend()
        # a peer claimed half the grid and died long ago
        store.claim(ids[:3], "ghost", ttl=1, now=time.time() - 100)
        report = CampaignRunner(spec, store).run()
        assert report.n_done == 6 and report.n_leased == 0
        assert store.completed_ids() == set(ids)

    def test_audit_log_counts_every_execution(self, tmp_path, monkeypatch):
        log = tmp_path / "audit.log"
        monkeypatch.setenv(JOB_AUDIT_ENV, str(log))
        spec = fast_spec(n_seeds=3)  # 6 jobs
        CampaignRunner(spec, ResultStore()).run()
        assert sorted(audit_ids(log)) == sorted(j.job_id for j in spec.expand())


class TestRunnerProcessChaos:
    def _run_cli(self, directory, *args, audit=None, wait=True, **popen_kwargs):
        env = dict(os.environ, PYTHONPATH=SRC)
        if audit is not None:
            env[JOB_AUDIT_ENV] = str(audit)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run", str(directory), *args],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            **popen_kwargs,
        )
        if not wait:
            return proc
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, out.decode()
        return out.decode()

    def test_two_racing_runners_one_evaluation_per_job(self, tmp_path, store_backend):
        """Acceptance: a 2-runner campaign over >= 200 jobs performs
        exactly one evaluation per job, whatever the store engine."""
        directory = tmp_path / "camp"
        spec = fast_spec(n_seeds=100)  # 200 jobs
        Campaign(directory, spec=spec, store=store_backend.cli_store_spec)
        audit = tmp_path / "audit.log"
        procs = [
            self._run_cli(directory, "--batch-size", "10", audit=audit, wait=False)
            for _ in range(2)
        ]
        for proc in procs:
            out, _ = proc.communicate(timeout=300)
            assert proc.returncode == 0, out.decode()
        expected = sorted(j.job_id for j in spec.expand())
        assert sorted(audit_ids(audit)) == expected  # exactly once each
        campaign = Campaign(directory)
        assert campaign.store.completed_ids() == set(expected)
        assert getattr(campaign.store, "n_shards", 1) == store_backend.shards
        assert campaign.store.engine == {
            "sqlite": "sqlite", "netstore": "store",
        }.get(store_backend.engine, "jsonl")
        # exactly-once holds per *span* too: every execution attempt minted
        # a distinct span id, and each job appears under exactly one of them
        entries = audit_entries(audit)
        spans = [entry[2] for entry in entries]
        assert len(set(spans)) == len(spans)
        # the store_backend fixture enables telemetry, so the audit log
        # must correlate with the runners' job-lifecycle trace: every
        # recorded job event names a span the audit log witnessed
        from repro.telemetry import TELEMETRY_FILENAME, read_trace, validate_trace

        trace_path = directory / TELEMETRY_FILENAME
        validate_trace(trace_path)
        events = list(read_trace(trace_path))
        job_events = [e for e in events if e["event"] == "job"]
        assert {e["job_id"] for e in job_events} == set(expected)
        assert {e["span_id"] for e in job_events} <= set(spans)
        assert {entry[1] for entry in entries} == {
            e["run_id"] for e in events if e["event"] == "run_start"
        }

    def test_killed_runner_leases_reclaimed_exactly_once(self, tmp_path, store_backend):
        """SIGKILL a runner mid-batch: its leases stay live until the TTL
        lapses, then a second runner reclaims each leased job exactly once."""
        directory = tmp_path / "camp"
        # ~120 ms/job x 40 jobs in one batch: a seconds-wide kill window
        # (tau/walltime set so nothing terminates before max_steps)
        spec = fast_spec(n_seeds=20, functions=["rosenbrock"], dims=[4],
                         max_steps=600, tau=1e-9, walltime=1e5)
        Campaign(directory, spec=spec, store=store_backend.cli_store_spec)
        audit = tmp_path / "audit.log"
        ttl = ["--lease-ttl", "2"]
        victim = self._run_cli(directory, "--batch-size", "40", *ttl,
                               audit=audit, wait=False)
        # wait until it is demonstrably mid-batch, then kill -9
        deadline = time.time() + 60
        while len(audit_ids(audit)) < 3:
            assert time.time() < deadline, "victim never started executing"
            assert victim.poll() is None, "victim finished before the kill"
            time.sleep(0.02)
        victim.send_signal(signal.SIGKILL)
        victim.communicate()
        n_before_kill = len(audit_ids(audit))

        store = open_store(directory)
        all_ids = {j.job_id for j in spec.expand()}
        recorded = store.completed_ids()
        orphaned = all_ids - recorded
        assert orphaned, "victim had already recorded everything"
        # the victim's claims are still live: held by a dead process
        leases = store.leases()
        assert set(leases) == orphaned
        # no release ever comes; the leases lapse within the TTL window
        deadline = time.time() + 30
        while store.leases():
            assert time.time() < deadline, "leases never expired"
            time.sleep(0.1)

        self._run_cli(directory, "--batch-size", "40", *ttl, audit=audit)
        post_kill = Counter(audit_ids(audit)[n_before_kill:])
        assert set(post_kill) == orphaned          # reclaimed all of them...
        assert all(n == 1 for n in post_kill.values()), post_kill  # ...once
        assert open_store(directory).completed_ids() == all_ids

    def test_staggered_kill_runners_converge_and_compact(self, tmp_path, store_backend):
        """Two runners killed at staggered times leave a store a final run
        completes and compaction round-trips (the CI chaos-smoke shape)."""
        directory = tmp_path / "camp"
        spec = fast_spec(n_seeds=15, functions=["rosenbrock"], dims=[4],
                         max_steps=400, tau=1e-9, walltime=1e5)  # 30 x ~40 ms
        Campaign(directory, spec=spec, store=store_backend.cli_store_spec)
        audit = tmp_path / "audit.log"
        ttl = ["--lease-ttl", "1"]
        for n_lines in (2, 5):  # kill once early, once mid-drain
            runner = self._run_cli(directory, "--batch-size", "8", *ttl,
                                   audit=audit, wait=False)
            deadline = time.time() + 60
            while len(audit_ids(audit)) < n_lines and runner.poll() is None:
                assert time.time() < deadline
                time.sleep(0.02)
            runner.send_signal(signal.SIGKILL)
            runner.communicate()
        time.sleep(1.2)  # let the orphaned leases lapse
        self._run_cli(directory, "--batch-size", "8", *ttl, audit=audit)
        campaign = Campaign(directory)
        all_ids = {j.job_id for j in spec.expand()}
        assert campaign.store.completed_ids() == all_ids
        summary_before = [c for c in campaign.summary()]
        stats = campaign.compact()
        assert stats.n_records_after == len(all_ids)
        assert Campaign(directory).summary() == summary_before
