"""Distributed campaign execution: the mw backend and cooperative draining.

Covers the PR-2 tentpole: `CampaignRunner(backend="mw")` dispatching jobs
through `repro.mw.MWDriver`, several runners draining one shared store
without duplicating or losing work, and the interrupted-runner recovery
story at the CLI level.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    mw_job_executor,
    run_job,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


def small_spec(**overrides) -> CampaignSpec:
    """A fast 2-algorithm x 3-seed sphere grid (6 jobs)."""
    kwargs = dict(
        name="dist",
        algorithms=["DET", "PC"],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=[0, 1, 2],
        tau=1e-3,
        walltime=1e3,
        max_steps=40,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def reference_results(spec):
    store = ResultStore()
    CampaignRunner(spec, store).run()
    return {r["job_id"]: r["result"] for r in store.records()}


class TestMWBackend:
    def test_mw_executor_round_trips_job_payload(self):
        job = small_spec().expand()[0]
        rec = mw_job_executor(job.to_dict(), context=None)
        expected = run_job(job)
        for volatile in ("elapsed_s", "span_id"):  # wall-clock and the
            rec.pop(volatile)                      # per-attempt span differ
            expected.pop(volatile)
        assert rec == expected

    @pytest.mark.parametrize("transport", ["inproc", "threaded"])
    def test_mw_backend_matches_serial(self, transport):
        spec = small_spec()
        store = ResultStore()
        report = CampaignRunner(
            spec, store, backend="mw", mw_transport=transport, max_workers=2
        ).run()
        assert report.n_done == 6 and report.n_failed == 0
        assert {r["job_id"]: r["result"] for r in store.records()} == reference_results(spec)

    def test_mw_process_transport_matches_serial(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "r.jsonl")
        report = CampaignRunner(
            spec, store, backend="mw", mw_transport="process", max_workers=2
        ).run()
        assert report.n_done == 6
        assert {r["job_id"]: r["result"] for r in store.records()} == reference_results(spec)

    def test_mw_affinity_pins_jobs_round_robin(self):
        spec = small_spec()
        store = ResultStore()
        report = CampaignRunner(
            spec, store, backend="mw", mw_transport="inproc",
            max_workers=2, mw_affinity=True,
        ).run()
        assert report.n_done == 6
        assert {r["job_id"]: r["result"] for r in store.records()} == reference_results(spec)

    def test_mw_records_bad_jobs_as_failed(self):
        spec = small_spec(
            overrides=[{"where": {"seed": 1, "label": "DET"}, "options": {"bogus": 1}}]
        )
        store = ResultStore()
        report = CampaignRunner(
            spec, store, backend="mw", mw_transport="inproc"
        ).run()
        assert report.n_done == 5 and report.n_failed == 1
        assert "bogus" in store.failed()[0]["error"]

    def test_mw_failure_record_shape(self):
        job = small_spec().expand()[0]

        class DeadTask:
            done = False
            error = "worker died"

        rec = CampaignRunner._mw_failure_record(job, DeadTask())
        assert rec["job_id"] == job.job_id
        assert rec["status"] == "failed"
        assert rec["result"] is None
        assert "worker died" in rec["error"]

    def test_mw_resume_skips_completed(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "r.jsonl")
        CampaignRunner(spec, store, backend="mw", mw_transport="inproc").run(max_jobs=2)
        report = CampaignRunner(spec, store, backend="mw", mw_transport="inproc").run()
        assert report.n_skipped == 2 and report.n_done == 4

    def test_mw_rejects_rich_job_options(self):
        """Rich (non-JSON) options would be silently stringified by the
        codec round-trip; the mw backend must refuse them loudly."""
        from repro.core import ConditionSet

        spec = small_spec(
            algorithms=[{"algorithm": "PC",
                         "options": {"conditions": ConditionSet.only(1)}}]
        )
        runner = CampaignRunner(spec, ResultStore(), backend="mw",
                                mw_transport="inproc")
        with pytest.raises(ValueError, match="non-JSON options"):
            runner.run()

    def test_unknown_backend_and_transport_rejected(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            CampaignRunner(small_spec(), ResultStore(), backend="mpi")
        with pytest.raises(ValueError, match="mw_transport"):
            CampaignRunner(small_spec(), ResultStore(), backend="mw", mw_transport="tcp")


class TestCooperativeDraining:
    def test_interleaved_runners_share_one_store(self, tmp_path, result_lines):
        """Two runner instances alternating on one directory never
        re-execute each other's jobs (the resume skip-set is shared)."""
        spec = small_spec()
        store_a = ResultStore(tmp_path / "r.jsonl")
        store_b = ResultStore(tmp_path / "r.jsonl")
        CampaignRunner(spec, store_a).run(max_jobs=2)
        CampaignRunner(spec, store_b).run(max_jobs=2)
        report = CampaignRunner(spec, store_a).run()
        assert report.n_skipped == 4 and report.n_done == 2
        assert result_lines(tmp_path / "r.jsonl") == 6  # each executed exactly once
        assert store_a.completed_ids() == {j.job_id for j in spec.expand()}

    def test_peer_completions_are_shed_mid_run(self, tmp_path, result_lines):
        """The periodic store re-read drops jobs a peer completed after
        this runner expanded its pending list."""
        spec = small_spec()
        jobs = spec.expand()
        store = ResultStore(tmp_path / "r.jsonl")
        peer = ResultStore(tmp_path / "r.jsonl")
        fired = []

        def peer_completes_job_3(snapshot):
            if not fired:
                fired.append(True)
                peer.record(run_job(jobs[3]))  # a cooperating runner finishes it

        runner = CampaignRunner(spec, store, batch_size=2)
        report = runner.run(progress=peer_completes_job_3)
        assert report.n_shed == 1
        assert report.n_done == 5
        assert report.n_remaining == 0
        assert result_lines(tmp_path / "r.jsonl") == 6  # shed job not re-executed
        assert "shed to peers" in str(report)

    def test_stagger_rotates_execution_order(self, tmp_path):
        """A staggered runner starts at a PID-derived grid offset (but
        still completes everything and records the same results)."""
        import json

        spec = small_spec()
        jobs = spec.expand()
        store = ResultStore(tmp_path / "r.jsonl")
        report = CampaignRunner(spec, store, batch_size=1, stagger=True).run()
        assert report.n_done == 6
        first_line = (tmp_path / "r.jsonl").read_text().splitlines()[0]
        expected_first = jobs[os.getpid() % len(jobs)].job_id
        assert json.loads(first_line)["job_id"] == expected_first
        assert {r["job_id"]: r["result"] for r in store.records()} == \
            reference_results(spec)

    def test_refresh_can_be_disabled(self, tmp_path):
        spec = small_spec()
        jobs = spec.expand()
        store = ResultStore(tmp_path / "r.jsonl")
        peer = ResultStore(tmp_path / "r.jsonl")
        fired = []

        def peer_completes_job_3(snapshot):
            if not fired:
                fired.append(True)
                peer.record(run_job(jobs[3]))

        # legacy mode: with leases the claim itself would shed the job
        runner = CampaignRunner(spec, store, batch_size=2,
                                refresh_pending=False, lease=False)
        report = runner.run(progress=peer_completes_job_3)
        assert report.n_shed == 0 and report.n_done == 6  # job 3 re-executed


class TestConcurrentRunnerProcesses:
    def _cli(self, *args, **kwargs):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", *args],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            **kwargs,
        )

    def test_two_processes_drain_one_campaign(self, tmp_path):
        directory = str(tmp_path / "camp")
        spec = small_spec(seeds=list(range(10)))  # 20 jobs
        Campaign(directory, spec=spec)
        procs = [
            self._cli("run", directory, "--backend", "serial", "--batch-size", "1")
            for _ in range(2)
        ]
        for proc in procs:
            out, _ = proc.communicate(timeout=300)
            assert proc.returncode == 0, out.decode()
        campaign = Campaign(directory)
        assert campaign.store.completed_ids() == {j.job_id for j in spec.expand()}
        assert {r["job_id"]: r["result"] for r in campaign.store.completed()} == \
            reference_results(spec)

    def test_killed_runner_recovers_to_identical_store(self, tmp_path):
        """Acceptance: kill one of two concurrent runners mid-flight,
        re-run, and the completed-job set matches an uninterrupted run."""
        directory = str(tmp_path / "camp")
        spec = small_spec(seeds=list(range(10)))  # 20 jobs
        Campaign(directory, spec=spec)
        victim = self._cli("run", directory, "--backend", "serial", "--batch-size", "1")
        survivor = self._cli("run", directory, "--backend", "serial", "--batch-size", "1")
        time.sleep(0.3)
        victim.send_signal(signal.SIGKILL)
        victim.communicate()
        out, _ = survivor.communicate(timeout=300)
        assert survivor.returncode == 0, out.decode()
        # mop up whatever the killed runner left behind
        mopup = self._cli("run", directory, "--backend", "mw",
                          "--mw-transport", "process", "--max-workers", "2")
        out, _ = mopup.communicate(timeout=300)
        assert mopup.returncode == 0, out.decode()
        campaign = Campaign(directory)
        assert {r["job_id"]: r["result"] for r in campaign.store.completed()} == \
            reference_results(spec)
