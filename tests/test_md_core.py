"""Tests for MD units, periodic cell, and neighbour lists."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.md import (
    KB,
    PeriodicBox,
    brute_force_pairs,
    cell_list_pairs,
    kinetic_temperature,
    maxwell_boltzmann_velocities,
)
from repro.md.units import ACCEL_CONV, kinetic_energy


class TestUnits:
    def test_kinetic_energy_single_particle(self):
        # m=1 amu, v=1 A/fs -> K = 0.5/ACCEL_CONV kcal/mol
        vel = np.array([[1.0, 0.0, 0.0]])
        m = np.array([1.0])
        assert kinetic_energy(vel, m) == pytest.approx(0.5 / ACCEL_CONV)

    def test_temperature_definition(self):
        """T = 2K / (n_dof kB) for a hand-built velocity set."""
        vel = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        m = np.array([2.0, 3.0])
        k = kinetic_energy(vel, m)
        assert kinetic_temperature(vel, m) == pytest.approx(2 * k / (6 * KB))

    def test_maxwell_boltzmann_hits_target_temperature(self):
        rng = np.random.default_rng(0)
        m = np.full(500, 18.0)
        vel = maxwell_boltzmann_velocities(m, 298.0, rng)
        assert kinetic_temperature(vel, m, n_constrained=3) == pytest.approx(298.0)

    def test_maxwell_boltzmann_zero_momentum(self):
        rng = np.random.default_rng(1)
        m = np.array([16.0, 1.0, 1.0] * 20)
        vel = maxwell_boltzmann_velocities(m, 300.0, rng)
        p = (m[:, None] * vel).sum(axis=0)
        np.testing.assert_allclose(p, 0.0, atol=1e-10)

    def test_zero_temperature_gives_zero_velocities(self):
        rng = np.random.default_rng(0)
        vel = maxwell_boltzmann_velocities(np.ones(5), 0.0, rng)
        assert np.all(vel == 0.0)

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            maxwell_boltzmann_velocities(np.ones(2), -1.0, np.random.default_rng(0))


class TestPeriodicBox:
    def test_cubic_from_scalar(self):
        box = PeriodicBox(10.0)
        np.testing.assert_allclose(box.lengths, [10.0, 10.0, 10.0])
        assert box.volume == pytest.approx(1000.0)

    def test_orthorhombic(self):
        box = PeriodicBox([2.0, 3.0, 4.0])
        assert box.volume == pytest.approx(24.0)
        assert box.min_image_cutoff == pytest.approx(1.0)

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            PeriodicBox([1.0, -1.0, 1.0])
        with pytest.raises(ValueError):
            PeriodicBox([1.0, 2.0])

    def test_wrap_into_primary_cell(self):
        box = PeriodicBox(10.0)
        wrapped = box.wrap(np.array([[11.0, -1.0, 25.0]]))
        np.testing.assert_allclose(wrapped, [[1.0, 9.0, 5.0]])

    def test_minimum_image_short_vector(self):
        box = PeriodicBox(10.0)
        d = box.minimum_image(np.array([[9.0, 0.0, 0.0]]))
        np.testing.assert_allclose(d, [[-1.0, 0.0, 0.0]])

    def test_distance_across_boundary(self):
        box = PeriodicBox(10.0)
        assert box.distance([0.5, 0, 0], [9.5, 0, 0]) == pytest.approx(1.0)

    @given(
        pos=hnp.arrays(float, (4, 3), elements=st.floats(-100, 100)),
        shift=st.integers(-3, 3),
    )
    @settings(max_examples=40)
    def test_minimum_image_periodic_invariance(self, pos, shift):
        """Shifting one point by whole box lengths never changes distances."""
        box = PeriodicBox(7.0)
        d1 = box.minimum_image(pos[0] - pos[1])
        d2 = box.minimum_image((pos[0] + shift * 7.0) - pos[1])
        np.testing.assert_allclose(d1, d2, atol=1e-9)

    def test_minimum_image_bound(self):
        box = PeriodicBox([4.0, 6.0, 8.0])
        rng = np.random.default_rng(0)
        d = box.minimum_image(rng.uniform(-50, 50, size=(100, 3)))
        assert np.all(np.abs(d) <= box.lengths / 2 + 1e-12)


class TestNeighbourLists:
    def _random_system(self, n, box_len, seed):
        rng = np.random.default_rng(seed)
        return rng.uniform(0, box_len, size=(n, 3)), PeriodicBox(box_len)

    def test_brute_force_simple_case(self):
        box = PeriodicBox(10.0)
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0], [5.0, 0, 0]])
        ii, jj = brute_force_pairs(pos, box, cutoff=2.0)
        assert set(zip(ii, jj)) == {(0, 1)}

    def test_brute_force_across_boundary(self):
        box = PeriodicBox(10.0)
        pos = np.array([[0.2, 0, 0], [9.8, 0, 0]])
        ii, jj = brute_force_pairs(pos, box, cutoff=1.0)
        assert set(zip(ii, jj)) == {(0, 1)}

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n,box_len,cutoff", [(40, 12.0, 3.0), (80, 15.0, 4.9)])
    def test_cell_list_matches_brute_force(self, n, box_len, cutoff, seed):
        pos, box = self._random_system(n, box_len, seed)
        bi, bj = brute_force_pairs(pos, box, cutoff)
        ci, cj = cell_list_pairs(pos, box, cutoff)
        assert set(zip(bi, bj)) == set(zip(ci, cj))

    def test_cell_list_falls_back_on_small_box(self):
        pos, box = self._random_system(10, 5.0, 0)
        # cutoff 2.0 -> only 2 cells/dim -> fallback path
        bi, bj = brute_force_pairs(pos, box, 2.0)
        ci, cj = cell_list_pairs(pos, box, 2.0)
        assert set(zip(bi, bj)) == set(zip(ci, cj))

    def test_no_pairs_when_cutoff_tiny(self):
        pos, box = self._random_system(20, 20.0, 3)
        ii, jj = cell_list_pairs(pos, box, 1e-6)
        assert ii.size == 0 and jj.size == 0

    def test_invalid_cutoff_rejected(self):
        pos, box = self._random_system(5, 10.0, 0)
        with pytest.raises(ValueError):
            brute_force_pairs(pos, box, 0.0)
        with pytest.raises(ValueError):
            cell_list_pairs(pos, box, -1.0)
