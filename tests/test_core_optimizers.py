"""Behavioural tests for the five optimizers (DET, MN, PC, PC+MN, Anderson)."""

import numpy as np
import pytest

from repro.core import (
    AndersonSimplex,
    ConditionSet,
    MaxNoise,
    MaxStepsTermination,
    NelderMead,
    PCMaxNoise,
    PointComparison,
    ToleranceTermination,
    WalltimeTermination,
    default_termination,
)
from repro.functions import Quadratic, Rosenbrock, Sphere, initial_simplex
from repro.noise import StochasticFunction

VERTS2 = initial_simplex([2.0, -1.5], step=1.0)


def noiseless(f):
    return StochasticFunction(f, sigma0=0.0, rng=0)


def noisy(f, sigma0=1.0, seed=0, **kw):
    return StochasticFunction(f, sigma0=sigma0, rng=seed, **kw)


class TestNelderMeadDeterministic:
    def test_converges_on_sphere(self):
        opt = NelderMead(
            noiseless(Sphere(2)),
            VERTS2,
            termination=default_termination(tau=1e-12, max_steps=2000),
        )
        result = opt.run()
        assert result.best_true < 1e-10
        np.testing.assert_allclose(result.best_theta, 0.0, atol=1e-4)

    def test_converges_on_quadratic_with_offset_center(self):
        f = Quadratic(3, scales=[1.0, 3.0, 10.0], center=[1.0, -2.0, 0.5])
        opt = NelderMead(
            noiseless(f),
            initial_simplex([0.0, 0.0, 0.0], step=1.0),
            termination=default_termination(tau=1e-14, max_steps=5000),
        )
        result = opt.run()
        np.testing.assert_allclose(result.best_theta, f.minimizer(), atol=1e-4)

    def test_converges_on_rosenbrock_3d(self):
        opt = NelderMead(
            noiseless(Rosenbrock(3)),
            initial_simplex([-1.0, 2.0, 1.5], step=0.5),
            termination=default_termination(tau=1e-12, max_steps=5000),
        )
        result = opt.run()
        assert result.best_true < 1e-8
        np.testing.assert_allclose(result.best_theta, 1.0, atol=1e-3)

    def test_estimate_never_worsens_on_noiseless(self):
        opt = NelderMead(
            noiseless(Sphere(2)),
            VERTS2,
            termination=default_termination(tau=1e-10, max_steps=500),
        )
        result = opt.run()
        best = result.trace.best_estimates()
        assert np.all(np.diff(best) <= 1e-12)

    def test_trace_records_operations(self):
        opt = NelderMead(
            noiseless(Sphere(2)),
            VERTS2,
            termination=MaxStepsTermination(30),
        )
        result = opt.run()
        ops = set(result.trace.operations())
        assert ops <= {"reflect", "expand", "contract", "collapse"}
        assert result.n_steps == 30
        assert len(result.trace) == 30

    def test_max_steps_reason(self):
        opt = NelderMead(noiseless(Sphere(2)), VERTS2, termination=MaxStepsTermination(3))
        assert opt.run().reason == "max_steps"

    def test_no_trace_when_disabled(self):
        opt = NelderMead(
            noiseless(Sphere(2)),
            VERTS2,
            termination=MaxStepsTermination(3),
            record_trace=False,
        )
        assert opt.run().trace is None

    def test_invalid_coefficients_rejected(self):
        f = noiseless(Sphere(2))
        with pytest.raises(ValueError):
            NelderMead(f, VERTS2, alpha=0.0)
        with pytest.raises(ValueError):
            NelderMead(f, VERTS2, beta=1.0)
        with pytest.raises(ValueError):
            NelderMead(f, VERTS2, gamma=1.0)

    def test_invalid_vertices_rejected(self):
        with pytest.raises(ValueError):
            NelderMead(noiseless(Sphere(2)), np.zeros(3))

    def test_det_does_not_resample_existing_vertices(self):
        """DET evaluates each point once: vertex time stays at warmup."""
        opt = NelderMead(
            noiseless(Sphere(2)), VERTS2, warmup=2.0, termination=MaxStepsTermination(10)
        )
        opt.run()
        assert all(ev.time == pytest.approx(2.0) for ev in opt.simplex.vertices)


class TestMaxNoise:
    def test_reduces_to_det_flow_when_noiseless(self):
        """With sigma0=0 the gate opens immediately; same moves as DET."""
        det = NelderMead(
            noiseless(Sphere(2)), VERTS2, termination=MaxStepsTermination(40)
        )
        det_result = det.run()
        mn = MaxNoise(
            noiseless(Sphere(2)), VERTS2, termination=MaxStepsTermination(40)
        )
        mn_result = mn.run()
        assert mn_result.trace.operations() == det_result.trace.operations()
        np.testing.assert_allclose(mn_result.best_theta, det_result.best_theta)

    def test_gate_waits_under_noise(self):
        func = noisy(Sphere(2), sigma0=5.0, seed=1)
        opt = MaxNoise(func, VERTS2, k=2.0, termination=MaxStepsTermination(5))
        result = opt.run()
        # waiting shows up as wait_time in the trace
        assert any(r.wait_time > 0 for r in result.trace)

    def test_accuracy_beats_det_at_high_noise(self):
        """Aggregate over seeds: MN's converged true value <= DET's (Fig 3.5a)."""
        wins = 0
        n = 8
        for seed in range(n):
            rng = np.random.default_rng(seed)
            verts = rng.uniform(-5, 5, size=(3, 2))
            term = (
                ToleranceTermination(1e-3)
                | WalltimeTermination(3e4)
                | MaxStepsTermination(400)
            )
            det = NelderMead(
                noisy(Sphere(2), sigma0=100.0, seed=seed), verts, termination=term
            ).run()
            term2 = (
                ToleranceTermination(1e-3)
                | WalltimeTermination(3e4)
                | MaxStepsTermination(400)
            )
            mn = MaxNoise(
                noisy(Sphere(2), sigma0=100.0, seed=seed),
                verts,
                k=2.0,
                termination=term2,
            ).run()
            if mn.best_true <= det.best_true * 1.5:
                wins += 1
        assert wins >= n // 2 + 1

    def test_invalid_parameters_rejected(self):
        f = noiseless(Sphere(2))
        with pytest.raises(ValueError):
            MaxNoise(f, VERTS2, k=0.0)
        with pytest.raises(ValueError):
            MaxNoise(f, VERTS2, wait_dt=0.0)
        with pytest.raises(ValueError):
            MaxNoise(f, VERTS2, wait_growth=0.5)
        with pytest.raises(ValueError):
            MaxNoise(f, VERTS2, wait_target="some")

    def test_noisiest_variant_runs(self):
        func = noisy(Sphere(2), sigma0=2.0, seed=3)
        opt = MaxNoise(
            func, VERTS2, k=2.0, wait_target="noisiest", termination=MaxStepsTermination(10)
        )
        result = opt.run()
        assert result.n_steps == 10


class TestPointComparison:
    def test_noiseless_pc_matches_det_moves_with_plain_conditions(self):
        det = NelderMead(
            noiseless(Sphere(2)), VERTS2, termination=MaxStepsTermination(30)
        ).run()
        pc = PointComparison(
            noiseless(Sphere(2)),
            VERTS2,
            conditions=ConditionSet.none(),
            termination=MaxStepsTermination(30),
        ).run()
        # PC branches on smax (vs DET's max) so traces can differ slightly,
        # but both must make real progress on a convex bowl
        assert pc.best_true < 1e-2
        assert det.best_true < 1e-2

    def test_converges_on_noiseless_sphere(self):
        pc = PointComparison(
            noiseless(Sphere(2)),
            VERTS2,
            termination=default_termination(tau=1e-10, max_steps=2000),
        ).run()
        assert pc.best_true < 1e-8

    def test_resampling_happens_under_noise(self):
        func = noisy(Sphere(2), sigma0=5.0, seed=2)
        opt = PointComparison(
            func, VERTS2, k=2.0, termination=MaxStepsTermination(10)
        )
        result = opt.run()
        assert opt.stats.resample_rounds > 0
        assert result.n_steps == 10

    def test_forced_decisions_bounded_budget(self):
        """Identical function values at two points force the budget path."""
        flat = StochasticFunction(lambda x: 0.0, sigma0=1.0, rng=0)
        verts = initial_simplex([0.0, 0.0], step=1.0)
        opt = PointComparison(
            flat,
            verts,
            k=2.0,
            max_resample_rounds=3,
            termination=MaxStepsTermination(4),
        )
        opt.run()
        assert opt.stats.forced > 0

    def test_condition_subsets_affect_behaviour(self):
        """Strict c1-7 spends more resampling than c1-only (Figs 3.9+)."""
        def run(conds, seed=5):
            func = noisy(Sphere(2), sigma0=10.0, seed=seed)
            opt = PointComparison(
                func,
                VERTS2,
                k=1.0,
                conditions=conds,
                termination=MaxStepsTermination(25),
            )
            opt.run()
            return opt.stats.resample_rounds

        strict = run(ConditionSet.all())
        single = run(ConditionSet.only(1))
        assert strict >= single

    def test_invalid_parameters_rejected(self):
        f = noiseless(Sphere(2))
        with pytest.raises(ValueError):
            PointComparison(f, VERTS2, k=0.0)
        with pytest.raises(ValueError):
            PointComparison(f, VERTS2, resample_dt=0.0)
        with pytest.raises(ValueError):
            PointComparison(f, VERTS2, resample_growth=0.9)
        with pytest.raises(ValueError):
            PointComparison(f, VERTS2, max_resample_rounds=0)


class TestPCMaxNoise:
    def test_runs_and_converges_noiseless(self):
        result = PCMaxNoise(
            noiseless(Sphere(2)),
            VERTS2,
            termination=default_termination(tau=1e-10, max_steps=2000),
        ).run()
        assert result.best_true < 1e-8

    def test_default_pc_width_is_one_sigma(self):
        opt = PCMaxNoise(noiseless(Sphere(2)), VERTS2, termination=MaxStepsTermination(1))
        assert opt.k == 1.0

    def test_accuracy_comparable_to_pc(self):
        """PC+MN reaches accuracy comparable to PC (paper §3.3: 'the PC+MN
        and PC methods are comparable'). The fewer-steps claim is measured
        under the tuned experiment parameters in the benchmark harness."""
        def run(cls, seed, **kw):
            func = noisy(Sphere(2), sigma0=50.0, seed=seed)
            term = WalltimeTermination(2e4) | MaxStepsTermination(2000)
            return cls(func, VERTS2, termination=term, **kw).run()

        acc_pc = np.mean([run(PointComparison, s, k=1.0).best_true for s in range(4)])
        acc_pcmn = np.mean([run(PCMaxNoise, s).best_true for s in range(4)])
        # same order of magnitude on a convex bowl
        assert acc_pcmn <= max(acc_pc, 1e-6) * 100.0

    def test_invalid_k_mn_rejected(self):
        with pytest.raises(ValueError):
            PCMaxNoise(noiseless(Sphere(2)), VERTS2, k_mn=0.0)


class TestAndersonSimplex:
    def test_threshold_tightens_with_contraction_level(self):
        opt = AndersonSimplex(
            noiseless(Sphere(2)), VERTS2, k1=8.0, termination=MaxStepsTermination(1)
        )
        assert opt.threshold() == pytest.approx(8.0)
        opt.simplex.contraction_level = 2
        assert opt.threshold() == pytest.approx(2.0)

    def test_k2_steepens_threshold(self):
        opt = AndersonSimplex(
            noiseless(Sphere(2)), VERTS2, k1=8.0, k2=1.0, termination=MaxStepsTermination(1)
        )
        opt.simplex.contraction_level = 1
        assert opt.threshold() == pytest.approx(8.0 * 2 ** (-2))

    def test_runs_under_noise(self):
        func = noisy(Sphere(2), sigma0=2.0, seed=4)
        result = AndersonSimplex(
            func,
            VERTS2,
            k1=2.0**10,
            termination=WalltimeTermination(5e3) | MaxStepsTermination(300),
        ).run()
        assert result.n_steps > 0

    def test_small_k1_starves_steps_within_walltime(self):
        """Small k1 demands heavy sampling -> few steps in a fixed budget
        (the Table 3.2 premature-convergence pattern)."""
        def steps(k1, seed=6):
            func = noisy(Sphere(2), sigma0=30.0, seed=seed)
            term = WalltimeTermination(2e4) | MaxStepsTermination(5000)
            return AndersonSimplex(func, VERTS2, k1=k1, termination=term).run().n_steps

        assert steps(1.0) < steps(2.0**20)

    def test_invalid_parameters_rejected(self):
        f = noiseless(Sphere(2))
        with pytest.raises(ValueError):
            AndersonSimplex(f, VERTS2, k1=0.0)
        with pytest.raises(ValueError):
            AndersonSimplex(f, VERTS2, k2=-0.5)


class TestWalltimeInterruption:
    def test_walltime_stops_mid_wait(self):
        """A termination firing inside a wait loop unwinds cleanly."""
        func = noisy(Sphere(2), sigma0=1000.0, seed=7)
        term = WalltimeTermination(50.0) | MaxStepsTermination(10_000)
        result = MaxNoise(func, VERTS2, k=0.001, termination=term).run()
        assert result.reason == "walltime"
        assert result.walltime >= 50.0

    def test_result_fields_populated(self):
        func = noisy(Sphere(2), sigma0=1.0, seed=8)
        result = PointComparison(
            func, VERTS2, termination=MaxStepsTermination(5)
        ).run()
        assert result.algorithm == "PC"
        assert result.best_theta.shape == (2,)
        assert np.isfinite(result.best_estimate)
        assert np.isfinite(result.best_true)
        assert result.n_underlying_calls > 0
        assert result.total_sampling_time > 0
