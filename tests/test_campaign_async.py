"""Straggler / loss chaos tests for the async campaign path.

The barriered mw path waits for whole batches; the async path
(:meth:`CampaignRunner._run_async` over
:class:`~repro.core.async_driver.AsyncEvalDriver`) farms individual ask/tell
proposals to the worker pool.  These tests inject faults at that proposal
granularity through the execution chaos seams:

* ``$REPRO_EVAL_SLOW`` ("rank:seconds") makes one worker a straggler — the
  campaign must keep progressing on the other workers and finish far below
  the all-serialized bound.
* ``$REPRO_EVAL_DROP_ONCE`` ("markerpath:pattern") makes one evaluation die
  exactly once — the mw layer must requeue it exactly once (asserted
  through the PR-6 span-id audit log: the dropped proposal shows exactly
  two audit lines with distinct span ids, every other exactly one) and the
  campaign still converges.
"""

import os
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.campaign import Campaign, CampaignSpec, JOB_AUDIT_ENV
from repro.campaign.execution import (
    EVAL_DROP_ONCE_ENV,
    EVAL_SLOW_ENV,
    build_job_optimizer,
    mw_eval_executor,
    proposal_work,
)
from repro.core.async_driver import AsyncEvalDriver, EvalSource
from repro.mw.driver import MWDriver


def async_spec(n_seeds=4, **overrides) -> CampaignSpec:
    """A small grid of cheap MN jobs, every one needing many evaluations."""
    kwargs = dict(
        name="async-chaos",
        algorithms=["MN"],
        functions=["sphere"],
        dims=[2],
        sigma0s=[1.0],
        seeds=list(range(n_seeds)),
        tau=0.05,
        walltime=1e5,
        max_steps=15,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def audit_key_counts(path) -> Counter:
    """``{audit_key: n_lines}`` from an audit log (proposal keys included)."""
    path = Path(path)
    if not path.exists():
        return Counter()
    return Counter(
        line.split()[0] for line in path.read_text().splitlines() if line.strip()
    )


def audit_spans_for(path, key) -> list:
    """Span ids recorded for one audit key, in execution order."""
    return [
        line.split()[2]
        for line in Path(path).read_text().splitlines()
        if line.strip() and line.split()[0] == key
    ]


class TestAsyncCampaign:
    def test_async_campaign_completes_and_records(self, tmp_path):
        spec = async_spec(n_seeds=4)
        campaign = Campaign(tmp_path / "camp", spec=spec)
        report = campaign.run(
            backend="mw",
            mw_transport="threaded",
            async_mode=True,
            max_workers=3,
            max_inflight=6,
        )
        assert report.n_done == 4
        assert report.n_failed == 0
        status = campaign.status()
        assert status["done"] == 4

    def test_async_resumes_where_it_stopped(self, tmp_path):
        spec = async_spec(n_seeds=4)
        campaign = Campaign(tmp_path / "camp", spec=spec)
        first = campaign.run(
            backend="mw",
            mw_transport="threaded",
            async_mode=True,
            max_workers=2,
            max_jobs=2,
        )
        assert first.n_done == 2
        second = campaign.run(
            backend="mw",
            mw_transport="threaded",
            async_mode=True,
            max_workers=2,
        )
        assert second.n_skipped == 2
        assert second.n_done == 2
        assert campaign.status()["done"] == 4

    def test_async_requires_mw_backend(self, tmp_path):
        from repro.campaign import CampaignRunner, open_store

        with pytest.raises(ValueError, match="mw"):
            CampaignRunner(
                async_spec(), open_store(tmp_path), backend="serial", async_mode=True
            )


class TestStragglerChaos:
    def test_straggler_worker_does_not_stall_the_campaign(
        self, tmp_path, monkeypatch
    ):
        """One slow worker (0.25 s per evaluation) must not serialize the
        run: the other two workers keep every other job moving, so the
        wall clock stays far below the straggler-serialized bound."""
        sleep_s = 0.25
        monkeypatch.setenv(EVAL_SLOW_ENV, f"1:{sleep_s}")
        spec = async_spec(n_seeds=6)
        n_evals_lower_bound = 6 * 15  # jobs x max_steps, ignoring waits
        campaign = Campaign(tmp_path / "camp", spec=spec)
        t0 = time.monotonic()
        report = campaign.run(
            backend="mw",
            mw_transport="threaded",
            async_mode=True,
            max_workers=3,
            max_inflight=6,
        )
        elapsed = time.monotonic() - t0
        assert report.n_done == 6
        assert report.n_failed == 0
        # if every evaluation had queued behind the straggler the run would
        # take >= n_evals * sleep; async must beat that by a wide margin
        assert elapsed < 0.5 * n_evals_lower_bound * sleep_s, (
            f"straggler serialized the campaign: {elapsed:.1f}s"
        )

    def test_straggler_sees_nonzero_inflight_in_workers_event(
        self, tmp_path, monkeypatch
    ):
        """`watch --cells` depth: utilization rows carry the in-flight count."""
        from repro.campaign.progress import workers_from_trace
        from repro.telemetry import TELEMETRY_ENV

        monkeypatch.setenv(TELEMETRY_ENV, "1")
        directory = tmp_path / "camp"
        campaign = Campaign(directory, spec=async_spec(n_seeds=4))
        report = campaign.run(
            backend="mw",
            mw_transport="threaded",
            async_mode=True,
            max_workers=2,
            max_inflight=4,
        )
        assert report.n_done == 4
        rows = workers_from_trace(directory)
        assert rows, "no workers event in the telemetry trace"
        for row in rows:
            assert hasattr(row, "inflight")
            assert row.inflight >= 0
            assert "tasks" in row.line()


class TestLossChaos:
    def test_dropped_evaluation_requeued_exactly_once(self, tmp_path, monkeypatch):
        """Kill one evaluation; the mw retry layer requeues it exactly once.

        Counted through the audit log (PR-6 span machinery): the dropped
        proposal's key carries exactly two lines with distinct span ids —
        the killed attempt plus its single requeue — and every other
        proposal exactly one.
        """
        audit = tmp_path / "audit.log"
        marker = tmp_path / "dropped.marker"
        monkeypatch.setenv(JOB_AUDIT_ENV, str(audit))
        # every proposal id p000004 across jobs matches; the marker file
        # guarantees only the first matching evaluation dies
        monkeypatch.setenv(EVAL_DROP_ONCE_ENV, f"{marker}:/p000004")
        spec = async_spec(n_seeds=3)
        campaign = Campaign(tmp_path / "camp", spec=spec)
        report = campaign.run(
            backend="mw",
            mw_transport="threaded",
            async_mode=True,
            max_workers=3,
            max_inflight=6,
        )
        assert report.n_done == 3
        assert report.n_failed == 0
        assert marker.exists(), "the drop chaos never fired"

        counts = audit_key_counts(audit)
        assert counts, "no audit lines written"
        doubled = {k: n for k, n in counts.items() if n == 2}
        assert len(doubled) == 1, f"expected exactly one requeued proposal: {doubled}"
        (requeued_key,) = doubled
        assert "/p000004" in requeued_key
        spans = audit_spans_for(audit, requeued_key)
        assert len(spans) == 2 and spans[0] != spans[1], (
            "requeue must be a distinct execution attempt (fresh span id)"
        )
        assert all(n == 1 for k, n in counts.items() if k != requeued_key), (
            "some other evaluation ran more than once"
        )

    def test_evaluation_failed_beyond_retries_fails_only_its_job(self, tmp_path):
        """A poisoned evaluation (fails every attempt) fails its own job;
        the other jobs complete untouched."""
        spec = async_spec(n_seeds=3)
        jobs = spec.expand()
        poisoned = jobs[0].job_id

        def executor(work, context):
            if work["job_id"] == poisoned:
                raise RuntimeError("poisoned evaluation")
            return mw_eval_executor(work, context)

        driver = MWDriver(executor, n_workers=2, backend="threaded", max_retries=1)
        outcomes = {}
        sources = [
            EvalSource(
                key=job.job_id,
                opt=build_job_optimizer(job),
                make_work=(lambda j: lambda p: proposal_work(j, p))(job),
            )
            for job in jobs
        ]
        try:
            AsyncEvalDriver(driver, max_inflight=4).run(
                sources, lambda s, r, e: outcomes.__setitem__(s.key, (r, e))
            )
        finally:
            driver.shutdown()
        assert outcomes[poisoned][0] is None
        assert "poisoned" in outcomes[poisoned][1]
        for job in jobs[1:]:
            result, error = outcomes[job.job_id]
            assert error is None
            assert result.n_steps > 0


class TestBatchedEvaluation:
    """--eval-batch q: frames of q proposals, chaos and stores preserved."""

    @staticmethod
    def _run(tmp_path, name, eval_batch, algorithms=("DET",), n_seeds=4):
        spec = async_spec(n_seeds=n_seeds, algorithms=list(algorithms))
        campaign = Campaign(tmp_path / name, spec=spec)
        report = campaign.run(
            backend="mw",
            mw_transport="threaded",
            async_mode=True,
            max_workers=3,
            max_inflight=8,
            eval_batch=eval_batch,
        )
        assert report.n_failed == 0
        return {
            r["job_id"]: r["result"] for r in campaign.store.completed()
        }

    def test_batched_store_bitwise_equals_unbatched(self, tmp_path):
        """batch=8 and batch=1 runs land bitwise-identical results.

        DET mints no speculative refinements, so the async trajectory is
        deterministic — any divergence would be the batching path
        changing values or rng order.
        """
        single = self._run(tmp_path, "q1", eval_batch=1)
        batched = self._run(tmp_path, "q8", eval_batch=8)
        assert len(single) == 4
        assert batched == single

    def test_batched_campaign_all_algorithms(self, tmp_path):
        """Every algorithm family completes under batched frames."""
        results = self._run(
            tmp_path, "all", eval_batch=4,
            algorithms=["DET", "MN", "PC", "PC+MN", "ANDERSON"], n_seeds=1,
        )
        assert len(results) == 5

    def test_batched_drop_once_requeues_whole_frame(self, tmp_path, monkeypatch):
        """Drop-once under batching kills and requeues an entire frame.

        Every member of the dropped frame shows exactly two audit lines
        with distinct span ids (killed attempt + the one requeue); every
        other evaluation exactly one — exactly-once semantics hold per
        batch.
        """
        audit = tmp_path / "audit.log"
        marker = tmp_path / "dropped.marker"
        monkeypatch.setenv(JOB_AUDIT_ENV, str(audit))
        monkeypatch.setenv(EVAL_DROP_ONCE_ENV, f"{marker}:/p000004")
        spec = async_spec(n_seeds=3)
        campaign = Campaign(tmp_path / "camp", spec=spec)
        report = campaign.run(
            backend="mw",
            mw_transport="threaded",
            async_mode=True,
            max_workers=3,
            max_inflight=8,
            eval_batch=4,
        )
        assert report.n_done == 3
        assert report.n_failed == 0
        assert marker.exists(), "the drop chaos never fired"

        counts = audit_key_counts(audit)
        doubled = {k: n for k, n in counts.items() if n == 2}
        # the whole frame carrying the matching key was requeued: between
        # 1 and eval_batch members, the matching key among them
        assert 1 <= len(doubled) <= 4, doubled
        assert any("/p000004" in k for k in doubled), doubled
        assert set(counts.values()) <= {1, 2}, "an evaluation ran 3+ times"
        for key in doubled:
            spans = audit_spans_for(audit, key)
            assert len(spans) == 2 and spans[0] != spans[1]

    def test_eval_batch_requires_async_mode(self, tmp_path):
        campaign = Campaign(tmp_path / "camp", spec=async_spec(n_seeds=1))
        with pytest.raises(ValueError, match="async"):
            campaign.run(backend="mw", mw_transport="threaded", eval_batch=4)

    def test_eval_batch_and_flush_interval_validated(self, tmp_path):
        campaign = Campaign(tmp_path / "camp", spec=async_spec(n_seeds=1))
        with pytest.raises(ValueError):
            campaign.run(
                backend="mw", mw_transport="threaded",
                async_mode=True, eval_batch=0,
            )
        with pytest.raises(ValueError):
            campaign.run(
                backend="mw", mw_transport="threaded",
                async_mode=True, flush_interval=0.0,
            )
