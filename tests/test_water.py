"""Tests for the water application layer: RDF model, cost, surrogate."""

import numpy as np
import pytest

from repro.water import (
    EXPERIMENTAL_TARGETS,
    FINAL_MN,
    FINAL_PC,
    FINAL_PCMN,
    INITIAL_SIMPLEX_3_4A,
    RDFModel,
    TIP4P_PUBLISHED,
    WaterCostFunction,
    WaterSurrogate,
    experimental_goo,
    parameterize_water,
    rdf_curve,
    rdf_residual,
    surrogate_cost_function,
    water_systems,
)
from repro.water.experiment import EXPERIMENT_REFERENCE_THETA, experimental_rdf
from repro.water.rdf_model import R_GRID
from repro.water.tip4p import EPS_INTERNAL_TO_KCAL, vertices_for_dim


class TestParameterSets:
    def test_published_tip4p(self):
        np.testing.assert_allclose(TIP4P_PUBLISHED, [0.1550, 3.154, 0.520])

    def test_initial_simplex_shape(self):
        """Table 3.4a: d+3 = 6 rows of (epsilon, sigma, qH)."""
        assert INITIAL_SIMPLEX_3_4A.shape == (6, 3)

    def test_epsilon_unit_conversion_consistency(self):
        """The conversion maps the MN internal value back to 0.1514 kcal/mol."""
        assert 6.345e-7 * EPS_INTERNAL_TO_KCAL == pytest.approx(0.1514)

    def test_initial_epsilons_physically_plausible(self):
        eps = INITIAL_SIMPLEX_3_4A[:, 0]
        assert np.all((eps > 0.05) & (eps < 0.5))

    def test_final_parameters_near_published(self):
        """All converged sets are close to published TIP4P (§3.5)."""
        for final in (FINAL_MN, FINAL_PC, FINAL_PCMN):
            assert abs(final[0] - 0.155) < 0.01
            assert abs(final[1] - 3.154) < 0.01
            assert abs(final[2] - 0.520) < 0.005

    def test_vertices_for_dim(self):
        assert vertices_for_dim().shape == (4, 3)


class TestRDFModel:
    def test_curve_shape_and_positivity(self):
        g = rdf_curve(TIP4P_PUBLISHED)
        assert g.shape == R_GRID.shape
        assert np.all(g >= 0.0)

    def test_excluded_core(self):
        g = rdf_curve(TIP4P_PUBLISHED)
        assert np.all(g[R_GRID < 2.0] < 0.2)

    def test_first_peak_location_tracks_sigma(self):
        """The O-O first shell sits near 2.76 A for TIP4P-like sigma."""
        model = RDFModel(0.155, 3.154, 0.52)
        r1, h1, _ = model.first_peak()
        assert 2.5 < r1 < 3.0
        assert h1 > 2.0

    def test_larger_sigma_shifts_peak_out(self):
        g_small = rdf_curve([0.155, 3.0, 0.52])
        g_large = rdf_curve([0.155, 3.4, 0.52])
        assert R_GRID[np.argmax(g_small)] < R_GRID[np.argmax(g_large)]

    def test_stronger_charges_sharpen_structure(self):
        weak = RDFModel(0.155, 3.154, 0.40).first_peak()[1]
        strong = RDFModel(0.155, 3.154, 0.60).first_peak()[1]
        assert strong > weak

    def test_long_range_limit_is_one(self):
        g = rdf_curve(TIP4P_PUBLISHED)
        assert np.mean(g[R_GRID > 9.0]) == pytest.approx(1.0, abs=0.1)

    def test_species_variants(self):
        for sp in ("OO", "OH", "HH"):
            g = rdf_curve(TIP4P_PUBLISHED, species=sp)
            assert np.all(np.isfinite(g))

    def test_validation(self):
        with pytest.raises(ValueError):
            RDFModel(0.1, -1.0, 0.5)
        with pytest.raises(ValueError):
            RDFModel(0.1, 3.0, 0.5, species="XX")


class TestRDFResidual:
    def test_identical_curves_zero(self):
        g = rdf_curve(TIP4P_PUBLISHED)
        assert rdf_residual(g, g, R_GRID) == 0.0

    def test_constant_offset_recovered(self):
        """RMS of a constant offset is the offset itself."""
        g = np.ones_like(R_GRID)
        assert rdf_residual(g + 0.1, g, R_GRID) == pytest.approx(0.1, rel=1e-6)

    def test_symmetry(self):
        a = rdf_curve(TIP4P_PUBLISHED)
        b = experimental_goo()
        assert rdf_residual(a, b, R_GRID) == pytest.approx(rdf_residual(b, a, R_GRID))

    def test_validation(self):
        g = np.ones_like(R_GRID)
        with pytest.raises(ValueError):
            rdf_residual(g[:-1], g, R_GRID)
        with pytest.raises(ValueError):
            rdf_residual(g, g, R_GRID, r_min=5.0, r_max=4.0)


class TestWaterCostFunction:
    def test_zero_at_exact_targets(self):
        cost = WaterCostFunction(
            {"a": {"target": 2.0, "weight": 1.0}, "b": {"target": 0.0, "scale": 1.0}}
        )
        assert cost({"a": 2.0, "b": 0.0}) == 0.0

    def test_eq_3_4_form(self):
        """g = w^2 (p - p0)^2 / s^2 for a single property."""
        cost = WaterCostFunction({"a": {"target": 10.0, "weight": 2.0}})
        # s defaults to |target| = 10
        assert cost({"a": 11.0}) == pytest.approx(4.0 * 1.0 / 100.0)

    def test_weights_scale_quadratically(self):
        c1 = WaterCostFunction({"a": {"target": 1.0, "weight": 1.0}})
        c2 = WaterCostFunction({"a": {"target": 1.0, "weight": 2.0}})
        assert c2({"a": 1.5}) == pytest.approx(4.0 * c1({"a": 1.5}))

    def test_zero_target_needs_scale(self):
        with pytest.raises(ValueError):
            WaterCostFunction({"a": {"target": 0.0}})

    def test_missing_property_raises(self):
        cost = WaterCostFunction({"a": {"target": 1.0}})
        with pytest.raises(KeyError):
            cost({"b": 1.0})

    def test_gradient_matches_finite_difference(self):
        cost = WaterCostFunction(
            {"a": {"target": 1.0, "weight": 1.5}, "b": {"target": -2.0, "weight": 0.5}}
        )
        props = {"a": 1.7, "b": -1.1}
        grad = cost.gradient_wrt_properties(props)
        eps = 1e-7
        for name in props:
            up = dict(props)
            up[name] += eps
            dn = dict(props)
            dn[name] -= eps
            fd = (cost(up) - cost(dn)) / (2 * eps)
            assert grad[name] == pytest.approx(fd, rel=1e-5)

    def test_propagated_sigma_positive_with_floor(self):
        cost = WaterCostFunction({"a": {"target": 1.0}})
        # at the optimum the gradient vanishes; the floor keeps sigma > 0
        assert cost.propagated_sigma({"a": 1.0}, {"a": 0.5}) > 0.0
        assert (
            cost.propagated_sigma({"a": 1.0}, {"a": 0.5}, include_floor=False) == 0.0
        )

    def test_paper_targets_loadable(self):
        cost = WaterCostFunction(EXPERIMENTAL_TARGETS)
        assert set(cost.properties) == {
            "energy", "pressure", "diffusion", "p_goo", "p_goh", "p_ghh",
        }


class TestSurrogate:
    @pytest.fixture(scope="class")
    def surrogate(self):
        return WaterSurrogate()

    def test_tip4p_anchors_match_paper_scale(self, surrogate):
        """Published TIP4P parameters give roughly the paper's property
        values: U ~ -41.8 kJ/mol, P ~ 373 atm, D ~ 3.29e-5 cm^2/s."""
        p = surrogate.properties(TIP4P_PUBLISHED)
        assert p["energy"] == pytest.approx(-41.8, abs=0.3)
        assert 150.0 < p["pressure"] < 650.0
        assert 2.4e-5 < p["diffusion"] < 3.6e-5

    def test_rdf_residuals_in_paper_range(self, surrogate):
        p = surrogate.properties(TIP4P_PUBLISHED)
        assert 0.02 < p["p_goo"] < 0.12
        assert 0.03 < p["p_goh"] < 0.15
        assert 0.01 < p["p_ghh"] < 0.10

    def test_reference_point_hits_scalar_targets(self, surrogate):
        p = surrogate.properties(EXPERIMENT_REFERENCE_THETA)
        assert p["energy"] == pytest.approx(-41.5, abs=1e-9)
        assert p["pressure"] == pytest.approx(1.0, abs=1e-9)
        assert p["diffusion"] == pytest.approx(2.27e-5, abs=1e-12)

    def test_rdf_floor_is_irreducible(self, surrogate):
        """Even at the reference theta the RDF residuals stay positive —
        the model family cannot reproduce the experimental fine structure
        (why the paper's converged residuals are nonzero)."""
        p = surrogate.properties(EXPERIMENT_REFERENCE_THETA)
        assert p["p_goo"] > 0.01

    def test_optimized_models_fit_goo_at_least_as_well_as_tip4p(self, surrogate):
        """Fig 3.19 claim: optimized parameters fit experiment slightly
        better than published TIP4P."""
        tip4p = surrogate.properties(TIP4P_PUBLISHED)["p_goo"]
        ref = surrogate.properties(EXPERIMENT_REFERENCE_THETA)["p_goo"]
        assert ref <= tip4p

    def test_sampling_noise_scales(self, surrogate):
        rng = np.random.default_rng(0)
        draws = [
            surrogate.sample_properties(TIP4P_PUBLISHED, 1.0, rng)["pressure"]
            for _ in range(500)
        ]
        assert np.std(draws) == pytest.approx(1200.0, rel=0.15)
        draws_long = [
            surrogate.sample_properties(TIP4P_PUBLISHED, 100.0, rng)["pressure"]
            for _ in range(500)
        ]
        assert np.std(draws_long) == pytest.approx(120.0, rel=0.15)

    def test_invalid_theta_rejected(self, surrogate):
        with pytest.raises(ValueError):
            surrogate.properties([1.0, 2.0])
        with pytest.raises(ValueError):
            surrogate.sample_properties(TIP4P_PUBLISHED, 0.0, np.random.default_rng(0))

    def test_cost_function_wiring(self):
        f, sigma0_fn, cost = surrogate_cost_function()
        assert f(EXPERIMENT_REFERENCE_THETA) < f(TIP4P_PUBLISHED)
        assert sigma0_fn(TIP4P_PUBLISHED) > 0.0

    def test_initial_simplex_costs_are_terrible(self):
        """Table 3.4a starting values give 'poor and unphysical results'."""
        f, _, _ = surrogate_cost_function()
        start_costs = [f(v) for v in INITIAL_SIMPLEX_3_4A]
        assert min(start_costs) > 100.0 * f(TIP4P_PUBLISHED)


class TestParameterizationPipeline:
    def test_mn_converges_near_tip4p(self):
        result = parameterize_water(
            algorithm="MN", seed=1, walltime=2e5, max_steps=200, tau=1e-3
        )
        eps, sig, qh = result.best_theta
        assert abs(eps - 0.155) < 0.02
        assert abs(sig - 3.154) < 0.05
        assert abs(qh - 0.520) < 0.02

    def test_noiseless_mode(self):
        result = parameterize_water(
            algorithm="DET", noise_scale=0.0, max_steps=300, tau=1e-6
        )
        assert abs(result.best_theta[1] - 3.16) < 0.05

    def test_invalid_noise_scale(self):
        with pytest.raises(ValueError):
            parameterize_water(noise_scale=-1.0)

    def test_surrogate_systems_for_vertex_server(self):
        from repro.mw import VertexServer
        from repro.water.parameterize import water_cost

        systems = water_systems(source="surrogate")
        assert len(systems) == 6
        server = VertexServer(systems, cost=water_cost(), seed=0)
        out = server.evaluate(TIP4P_PUBLISHED, dt=10_000.0)
        assert "sample" in out
        f, _, _ = surrogate_cost_function()
        assert out["sample"] == pytest.approx(f(TIP4P_PUBLISHED), abs=1.0)

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            water_systems(source="quantum")
