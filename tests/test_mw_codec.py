"""Round-trip tests for the MW wire codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mw import pack, unpack
from repro.mw.codec import CodecError

# recursive strategy for codec-supported values
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=12,
)


class TestRoundTrip:
    @given(obj=values)
    @settings(max_examples=120)
    def test_pack_unpack_identity(self, obj):
        assert unpack(pack(obj)) == obj

    def test_tuple_roundtrip(self):
        assert unpack(pack((1, "a", None))) == (1, "a", None)

    def test_nested_structure(self):
        obj = {"task": 3, "work": {"theta": [1.0, 2.0], "dt": 0.5}, "tags": ("x",)}
        assert unpack(pack(obj)) == obj

    def test_float_nan_roundtrip(self):
        out = unpack(pack(float("nan")))
        assert out != out

    def test_float_inf_roundtrip(self):
        assert unpack(pack(float("inf"))) == float("inf")

    def test_ndarray_roundtrip(self):
        arr = np.arange(12, dtype=float).reshape(3, 4)
        out = unpack(pack(arr))
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype

    def test_ndarray_int_dtype(self):
        arr = np.array([[1, -2], [3, 4]], dtype=np.int32)
        out = unpack(pack(arr))
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == np.int32

    def test_empty_array(self):
        out = unpack(pack(np.zeros((0, 3))))
        assert out.shape == (0, 3)

    def test_numpy_scalars_normalize(self):
        assert unpack(pack(np.int64(7))) == 7
        assert unpack(pack(np.float64(2.5))) == 2.5
        assert unpack(pack(np.bool_(True))) is True

    def test_unpacked_array_is_writable_copy(self):
        arr = np.ones(3)
        out = unpack(pack(arr))
        out[0] = 5.0  # must not raise (frombuffer views are read-only)


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(CodecError):
            pack(object())

    def test_object_array_rejected(self):
        with pytest.raises(CodecError):
            pack(np.array([object()]))

    def test_oversized_int_rejected(self):
        with pytest.raises(CodecError):
            pack(2**64)

    def test_truncated_payload_rejected(self):
        data = pack([1, 2, 3])
        with pytest.raises(CodecError):
            unpack(data[:-1])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError):
            unpack(pack(1) + b"x")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            unpack(b"Z")

    def test_empty_payload_rejected(self):
        with pytest.raises(CodecError):
            unpack(b"")


class TestFraming:
    """The length-prefixed frame layer used by stream transports."""

    def test_frame_roundtrip(self):
        from repro.mw.codec import decode_frame_length, encode_frame

        payload = pack({"task_id": 1, "work": [1.0, 2.0]})
        frame = encode_frame(payload)
        assert decode_frame_length(frame[:4]) == len(payload)
        assert frame[4:] == payload

    def test_oversized_frame_rejected_on_encode(self):
        from repro.mw.codec import encode_frame

        with pytest.raises(CodecError, match="exceeds"):
            encode_frame(b"x" * 100, max_bytes=10)

    def test_oversized_declared_length_rejected_on_decode(self):
        """A corrupt/hostile length prefix must fail, not allocate or hang."""
        import struct

        from repro.mw.codec import decode_frame_length

        header = struct.pack(">I", 2**31)
        with pytest.raises(CodecError, match="exceeds"):
            decode_frame_length(header)

    def test_short_header_rejected(self):
        from repro.mw.codec import decode_frame_length

        with pytest.raises(CodecError, match="truncated frame header"):
            decode_frame_length(b"\x00\x01")

    def test_default_limit_accepts_real_messages(self):
        from repro.mw.codec import MAX_FRAME_BYTES, decode_frame_length, encode_frame

        payload = pack(np.zeros(1024))
        frame = encode_frame(payload)
        assert len(payload) < MAX_FRAME_BYTES
        assert decode_frame_length(frame[:4], MAX_FRAME_BYTES) == len(payload)


class TestFloatListFastPath:
    """The homogeneous float-list tag: one struct call, bitwise round-trip."""

    def test_uses_dedicated_tag(self):
        assert pack([1.0, 2.0])[0:1] == b"L"

    def test_bitwise_roundtrip_with_specials(self):
        import math

        values = [0.1, -2.5e300, float("nan"), float("-inf"), -0.0, 5e-324]
        out = unpack(pack(values))
        assert isinstance(out, list) and len(out) == len(values)
        for a, b in zip(values, out):
            if math.isnan(a):
                assert math.isnan(b)
            else:
                assert a == b and math.copysign(1.0, a) == math.copysign(1.0, b)

    def test_mixed_list_falls_back_to_generic_tag(self):
        payload = [1.0, 2]
        assert pack(payload)[0:1] == b"l"
        assert unpack(pack(payload)) == payload

    def test_bool_is_not_a_float(self):
        payload = [1.0, True]
        assert pack(payload)[0:1] == b"l"
        assert unpack(pack(payload)) == payload

    def test_empty_list_uses_generic_tag(self):
        assert pack([])[0:1] == b"l"
        assert unpack(pack([])) == []

    def test_truncated_float_list_rejected(self):
        data = pack([1.0, 2.0, 3.0])
        with pytest.raises(CodecError):
            unpack(data[:-4])

    def test_large_list_roundtrip(self):
        values = [float(i) * 0.1 for i in range(10_000)]
        assert unpack(pack(values)) == values
