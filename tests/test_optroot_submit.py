"""Tests for $OPTROOT -> PBS job submission (§4.2 job flow)."""

import pytest

from repro.cluster import Cluster, PBSScheduler
from repro.optroot import OptRoot
from repro.optroot.submit import (
    processors_for_tree,
    submit_optimization,
)


@pytest.fixture
def tree(tmp_path):
    root = OptRoot.create(tmp_path / "opt")
    root.add_system("bulk")       # 1 run.sh
    root.add_system("dilute")     # 1 run.sh
    root.add_phase("dilute", "production", "#!/bin/sh\nexit 0\n")  # +1
    return root


class TestProcessorRequest:
    def test_ns_equals_run_script_count(self, tree):
        counts = processors_for_tree(tree, dim=3)
        assert counts.ns == 3  # three run.sh scripts
        assert counts.total == 3 * 3 + 3 * 3 + 2 * 3 + 7

    def test_empty_tree_rejected(self, tmp_path):
        root = OptRoot.create(tmp_path / "empty")
        with pytest.raises(ValueError):
            processors_for_tree(root, dim=2)


class TestSubmission:
    def test_grant_writes_machinefile_and_assigns_roles(self, tree):
        scheduler = PBSScheduler(Cluster.homogeneous(8, 8))  # 64 cores
        submitted = submit_optimization(tree, scheduler, dim=3)
        assert submitted is not None
        assert submitted.machinefile_path.exists()
        lines = submitted.machinefile_path.read_text().splitlines()
        assert len(lines) == processors_for_tree(tree, dim=3).total
        # role assignment accounts for every granted core
        assert submitted.allocation.total == len(lines)
        assert submitted.allocation.master == lines[0]

    def test_busy_cluster_queues(self, tree):
        scheduler = PBSScheduler(Cluster.homogeneous(8, 8))
        blocker = scheduler.submit(
            __import__("repro.cluster.scheduler", fromlist=["JobRequest"]).JobRequest(
                n_procs=60, name="blocker"
            )
        )
        assert blocker is not None
        queued = submit_optimization(tree, scheduler, dim=3)
        assert queued is None
        assert scheduler.queued == 1
        # releasing the blocker admits the optimization
        started = scheduler.release(blocker.request.job_id)
        assert len(started) == 1
        assert started[0].request.name == "optimization"
