"""Process-backend coverage for the MW vertex pool (real parallelism)."""

import numpy as np
import pytest

from repro.core import MaxStepsTermination, NelderMead
from repro.functions import initial_simplex
from repro.mw import MWVertexPool


def paraboloid(theta):
    return float(np.dot(theta - 1.0, theta - 1.0))


class TestProcessBackedPool:
    def test_sampling_over_worker_processes(self):
        with MWVertexPool(
            paraboloid, sigma0=0.0, n_workers=2, backend="process", seed=0
        ) as pool:
            ev = pool.activate([2.0, 0.0])
            pool.advance(3.0)
            assert ev.estimate == pytest.approx(paraboloid(np.array([2.0, 0.0])))
            assert ev.time == pytest.approx(4.0)

    def test_optimizer_over_process_backend(self):
        with MWVertexPool(
            paraboloid, sigma0=0.0, n_workers=5, backend="process", seed=1
        ) as pool:
            result = NelderMead(
                pool.func,
                initial_simplex([3.0, -1.0], step=1.0),
                pool=pool,
                termination=MaxStepsTermination(40),
            ).run()
        assert result.best_true < 0.1

    def test_noise_statistics_across_processes(self):
        """Worker processes draw from independent spawned RNG streams."""
        with MWVertexPool(
            paraboloid, sigma0=2.0, n_workers=3, backend="process", seed=2
        ) as pool:
            evs = [pool.activate([1.0, 1.0], label=f"v{i}") for i in range(3)]
            pool.advance(1.0)
            estimates = [ev.estimate for ev in evs]
            # all noisy, none identical (independent streams)
            assert len(set(round(e, 12) for e in estimates)) == 3
