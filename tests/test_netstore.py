"""The ``store://`` network store engine, over real sockets.

The parametrized ``store_backend`` fixture already drives the generic
store and chaos suites over an in-process :class:`StoreServer`; this
module covers what is *specific* to the network engine — the URL
grammar, wire-level error mapping, incremental reads, piggybacked lease
renewal, the reconnect-with-resume handshake (including a server killed
and restarted out from under a live CLI runner), the shared dial
backoff helper, and the two bugfixes that ride along (multi-thread
SQLite close, the lease heartbeat's latency-aware retry loop).
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import Campaign, CampaignSpec, JOB_AUDIT_ENV, open_store
from repro.campaign.backends import (
    NetworkStoreBackend,
    NetworkStoreError,
    StoreServer,
    parse_store_spec,
)
from repro.campaign.backends.netstore import is_store_url, parse_store_url
from repro.campaign.backends.sqlite import SQLiteStoreBackend
from repro.campaign.runner import _LeaseHeartbeat
from repro.campaign.store import ResultStore
from repro.mw.tcp import dial_with_backoff
from repro.telemetry import Telemetry

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture
def served(tmp_path):
    """An in-process server over a sqlite backend + a client factory."""
    backend = SQLiteStoreBackend(tmp_path / "served")
    server = StoreServer(backend, listen="127.0.0.1:0")
    server.start()
    clients = []

    def connect(**options):
        client = NetworkStoreBackend(server.address, **options)
        clients.append(client)
        return client

    connect.server = server
    connect.backend = backend
    yield connect
    for client in clients:
        client.close()
    server.close()
    backend.close()


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestUrlGrammar:
    def test_parse_store_url(self):
        assert parse_store_url("store://db.host:9090") == ("db.host", 9090)
        assert parse_store_url("store://127.0.0.1:0") == ("127.0.0.1", 0)
        for bad in ("sqlite", "store://", "store://host", "store://:80",
                    "store://h:x", "store://h:70000"):
            with pytest.raises(ValueError):
                parse_store_url(bad)

    def test_is_store_url(self):
        assert is_store_url("store://h:1")
        assert not is_store_url("jsonl")
        assert not is_store_url(None)

    def test_spec_round_trips_whole(self):
        assert parse_store_spec("store://h:9090") == ("store://h:9090", None)

    def test_client_rejects_port_zero(self):
        with pytest.raises(ValueError, match="explicit port"):
            NetworkStoreBackend("store://127.0.0.1:0")


class TestWireParity:
    """The client behaves like the local engine it fronts."""

    def test_full_contract_matches_local_sqlite(self, served, tmp_path):
        local = SQLiteStoreBackend(tmp_path / "local")
        remote = served()
        for store in (local, remote):
            assert store.claim(["a", "b", "c"], "r1", ttl=60) == ["a", "b", "c"]
            store.record_many([
                {"job_id": "a", "status": "done", "result": {"v": 1}},
                {"job_id": "b", "status": "failed", "error": "boom"},
            ])
            store.release(["c"], "r1")
        assert remote.counts() == local.counts()
        assert remote.completed_ids() == local.completed_ids()
        assert remote.records() == local.records()
        assert set(remote.leases()) == set(local.leases()) == set()
        assert len(remote) == len(local) == 2
        stats = remote.compact()
        assert stats.n_records_after == 2
        local.close()

    def test_engine_identifiers(self, served):
        client = served()
        assert client.engine == "store"
        assert client.metrics_engine == "netstore"
        assert client.path == served.server.address

    def test_returned_records_are_isolated_copies(self, served):
        client = served()
        client.record({"job_id": "a", "status": "done", "result": {"v": 1}})
        client.records()[0]["result"]["v"] = 999
        assert client.records()[0]["result"]["v"] == 1

    def test_incremental_reads_across_clients(self, served):
        reader, writer = served(), served()
        writer.record({"job_id": "a", "status": "done"})
        assert [r["job_id"] for r in reader.records()] == ["a"]
        stamp = reader._stamp
        assert stamp > 0  # the sqlite backing engine is stamp-capable
        writer.record_many([{"job_id": "b", "status": "done"},
                            {"job_id": "a", "status": "failed"}])
        records = {r["job_id"]: r for r in reader.records()}
        assert set(records) == {"a", "b"}
        assert records["a"]["status"] == "failed"  # update folded in
        assert reader._stamp > stamp

    def test_full_read_fallback_for_stampless_backend(self, tmp_path):
        backend = ResultStore(tmp_path / "results.jsonl")  # no records_since
        server = StoreServer(backend)
        server.start()
        try:
            client = NetworkStoreBackend(server.address)
            client.record({"job_id": "a", "status": "done"})
            client.record({"job_id": "b", "status": "done"})
            assert {r["job_id"] for r in client.records()} == {"a", "b"}
            assert client._stamp == 0  # full replace, no stamp to trust
            client.close()
        finally:
            server.close()

    def test_malformed_record_raises_valueerror_client_side(self, served):
        with pytest.raises(ValueError, match="job_id"):
            served().record({"status": "done"})

    def test_server_side_errors_come_back_by_kind(self, served):
        client = served()
        # bypass client-side validation to prove the *server's* ValueError
        # crosses the wire as a ValueError, not a transport failure
        with pytest.raises(ValueError):
            client._call("record_many", records=[{"nope": 1}], renew=None)
        with pytest.raises(NetworkStoreError, match="unknown op"):
            client._call("bogus")
        # the connection survived both application errors
        assert client.counts()["total"] == 0

    def test_record_many_piggybacks_renewal(self, served):
        client = served()
        client.claim(["a", "b", "c"], "r1", ttl=30)
        before = {jid: lease.deadline for jid, lease in client.leases().items()}
        time.sleep(0.05)
        client.record_many([{"job_id": "a", "status": "done"}])
        after = client.leases()
        for jid in ("b", "c"):  # renewed in the same frame as the append
            assert after[jid].deadline > before[jid]
        assert "a" not in client._held  # fulfilled, no longer renewed


class TestReconnectResume:
    def restart_server(self, served):
        """Kill the fixture's server, restart on the same port + backend."""
        port = served.server.port
        served.server.close()
        server = StoreServer(served.backend, listen=f"127.0.0.1:{port}")
        server.start()
        served.server = server
        return server

    def test_client_survives_server_restart(self, served):
        client = served(reconnect_timeout=10.0)
        client.claim(["a", "b"], "r1", ttl=60)
        client.record({"job_id": "a", "status": "done"})
        self.restart_server(served)
        # next call reconnects, re-handshakes, and retries transparently
        assert client.counts() == {"total": 1, "done": 1, "failed": 0}
        client.record({"job_id": "b", "status": "done"})
        assert client.completed_ids() == {"a", "b"}

    def test_resume_reasserts_held_leases(self, served):
        client = served(reconnect_timeout=10.0)
        client.claim(["a", "b"], "r1", ttl=1.0)
        self.restart_server(served)
        time.sleep(1.1)  # leases lapse during the partition
        client.record({"job_id": "x", "status": "done"})  # forces reconnect
        # the resume handshake re-claimed the expired leases for r1
        leases = client.leases()
        assert {jid: leases[jid].runner for jid in ("a", "b")} == {
            "a": "r1", "b": "r1",
        }
        assert set(client._held) == {"a", "b"}

    def test_read_cache_reset_on_reconnect(self, served):
        client = served(reconnect_timeout=10.0)
        client.record({"job_id": "a", "status": "done"})
        client.records()
        assert client._stamp > 0
        self.restart_server(served)
        assert {r["job_id"] for r in client.records()} == {"a"}

    def test_unreachable_server_fails_with_context(self):
        client = NetworkStoreBackend(f"store://127.0.0.1:{free_port()}",
                                     connect_timeout=0.3)
        with pytest.raises(NetworkStoreError, match="failed after reconnect"):
            client.counts()


class TestDialBackoff:
    def test_timeout_error_names_the_last_error(self):
        port = free_port()
        start = time.monotonic()
        with pytest.raises(OSError, match="last error"):
            dial_with_backoff("127.0.0.1", port, timeout=0.3)
        assert time.monotonic() - start >= 0.25  # kept trying, with backoff

    def test_connects_once_the_listener_appears(self):
        port = free_port()

        def listen_later():
            time.sleep(0.15)
            srv = socket.create_server(("127.0.0.1", port))
            srv.accept()[0].close()
            srv.close()

        t = threading.Thread(target=listen_later, daemon=True)
        t.start()
        sock = dial_with_backoff("127.0.0.1", port, timeout=5.0)
        sock.close()
        t.join()


class TestSQLiteClose:
    def test_close_reaches_every_threads_connection(self, tmp_path):
        store = SQLiteStoreBackend(tmp_path)
        store.record({"job_id": "a", "status": "done"})

        def touch():
            store.counts()  # opens this thread's connection

        threads = [threading.Thread(target=touch) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store._conns) == 4  # main + 3 workers
        store.close()
        assert store._conns == {}  # every connection closed, not just ours

    def test_close_then_reuse_reopens(self, tmp_path):
        store = SQLiteStoreBackend(tmp_path)
        store.record({"job_id": "a", "status": "done"})
        store.close()
        assert store.counts()["done"] == 1  # lazily reconnects


class _FlakyStore:
    """renew() fails ``fail_first`` times, then succeeds forever."""

    def __init__(self, fail_first):
        self.fail_first = fail_first
        self.calls = 0

    def renew(self, job_ids, runner, ttl):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise OSError("store unreachable")
        return list(job_ids)


class TestLeaseHeartbeat:
    def wait_for(self, predicate, timeout=10.0):
        deadline = time.monotonic() + timeout
        while not predicate():
            assert time.monotonic() < deadline, "condition never held"
            time.sleep(0.01)

    def test_single_failure_is_retried_not_counted(self):
        store = _FlakyStore(fail_first=1)
        hb = _LeaseHeartbeat(store, ["a"], "r1", ttl=0.3,
                             telemetry=Telemetry.create())
        try:
            self.wait_for(lambda: store.calls >= 3)
        finally:
            hb.stop()
        assert hb.n_failures == 0  # the immediate retry absorbed the blip

    def test_double_failure_surfaces(self, caplog):
        store = _FlakyStore(fail_first=10 ** 9)
        telemetry = Telemetry.create()
        with caplog.at_level("WARNING", logger="repro.campaign.runner"):
            hb = _LeaseHeartbeat(store, ["a", "b"], "r1", ttl=0.3,
                                 telemetry=telemetry)
            try:
                self.wait_for(lambda: hb.n_failures >= 2)
            finally:
                hb.stop()
        counters = {
            c["name"]: c["value"]
            for c in telemetry.registry.snapshot()["counters"]
        }
        assert counters["repro_lease_renew_failures_total"] >= 2
        assert any("lease renewal" in r.message for r in caplog.records)
        # each failed beat made exactly two attempts (original + retry)
        assert store.calls >= 2 * hb.n_failures

    def test_beat_period_deducts_renew_latency(self):
        class SlowStore:
            def __init__(self):
                self.times = []

            def renew(self, job_ids, runner, ttl):
                self.times.append(time.monotonic())
                time.sleep(0.1)  # renew latency ~= the beat interval
                return list(job_ids)

        store = SlowStore()
        hb = _LeaseHeartbeat(store, ["a"], "r1", ttl=0.45)  # interval 0.15
        try:
            self.wait_for(lambda: len(store.times) >= 4)
        finally:
            hb.stop()
        # With the fixed ttl/3 sleep the gap would be ~0.25 s (sleep +
        # latency); deducting latency keeps beats ~one interval apart.
        gaps = [b - a for a, b in zip(store.times, store.times[1:])]
        assert sum(gaps) / len(gaps) < 0.22


class TestStoreServeCLI:
    def serve(self, directory, port, *extra):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "store-serve",
             str(directory), "--listen", f"127.0.0.1:{port}", *extra],
            env=dict(os.environ, PYTHONPATH=SRC),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = proc.stdout.readline()
        assert f"store://127.0.0.1:{port}" in line, line
        return proc

    def test_partition_runner_survives_server_restart(self, tmp_path):
        """Kill the store server out from under a live CLI runner and
        restart it: the runner reconnects, resumes its leases, finishes
        with every job executed exactly once."""
        store_dir = tmp_path / "store-data"
        port = free_port()
        server = self.serve(store_dir, port)
        try:
            spec = CampaignSpec(
                name="partition", algorithms=["DET", "PC"],
                functions=["sphere"], dims=[2], sigma0s=[1.0],
                seeds=list(range(15)), tau=1e-3, walltime=1e3, max_steps=25,
            )  # 30 jobs, ~ms each
            camp = tmp_path / "camp"
            Campaign(camp, spec=spec, store=f"store://127.0.0.1:{port}")
            audit = tmp_path / "audit.log"
            runner = subprocess.Popen(
                [sys.executable, "-m", "repro", "campaign", "run", str(camp),
                 "--batch-size", "3"],
                env=dict(os.environ, PYTHONPATH=SRC,
                         **{JOB_AUDIT_ENV: str(audit)}),
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )
            # let it get demonstrably mid-campaign, then kill the server
            deadline = time.time() + 60
            while not audit.exists() or len(audit.read_text().splitlines()) < 3:
                assert time.time() < deadline, "runner never started"
                assert runner.poll() is None
                time.sleep(0.02)
            server.send_signal(signal.SIGKILL)
            server.communicate()
            time.sleep(0.3)  # a real (brief) partition, then recovery
            server = self.serve(store_dir, port)
            out, _ = runner.communicate(timeout=120)
            assert runner.returncode == 0, out.decode()
        finally:
            server.send_signal(signal.SIGINT)
            server.communicate(timeout=30)
        expected = sorted(j.job_id for j in spec.expand())
        executed_ids = sorted(line.split()[0]
                              for line in audit.read_text().splitlines())
        assert executed_ids == expected  # exactly once each, across the gap
        # the persisted sqlite store behind the server agrees
        store = open_store(store_dir, engine="sqlite")
        assert store.completed_ids() == set(expected)
        store.close()

    def test_store_serve_refuses_network_engine(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "campaign", "store-serve",
             str(tmp_path / "d"), "--store", "store://h:1"],
            env=dict(os.environ, PYTHONPATH=SRC),
            capture_output=True, text=True,
        )
        assert proc.returncode == 2
        assert "local" in proc.stderr
