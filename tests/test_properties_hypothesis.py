"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster import Cluster, JobRequest, PBSScheduler
from repro.core import MaxStepsTermination, NelderMead
from repro.functions import Quadratic, initial_simplex
from repro.mw import decode_message, encode_message, Message
from repro.mw.messages import MSG_RESULT, MSG_TASK
from repro.noise import StochasticFunction

slow_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestOptimizerEquivariance:
    @given(
        shift=hnp.arrays(float, (2,), elements=st.floats(-5, 5, allow_nan=False)),
    )
    @slow_settings
    def test_det_translation_equivariance_of_outcome(self, shift):
        """Minimizing f(x - c) from x0 + c lands at the shifted optimum.

        (Exact *path* equivariance does not survive floating point — a tie
        broken differently flips a branch — so the property tested is the
        outcome: both runs converge equally close to their own minimizer.)
        """
        def run(center, start):
            f = Quadratic(2, scales=[1.0, 3.0], center=center)
            func = StochasticFunction(f, sigma0=0.0, rng=0)
            opt = NelderMead(
                func,
                initial_simplex(start, step=0.7),
                termination=MaxStepsTermination(200),
            )
            return opt.run(), f

        base, f_base = run(np.zeros(2), np.array([1.3, -0.8]))
        moved, f_moved = run(shift, np.array([1.3, -0.8]) + shift)
        d_base = f_base.distance_to_solution(base.best_theta)
        d_moved = f_moved.distance_to_solution(moved.best_theta)
        assert d_base < 1e-3
        assert d_moved < 1e-3

    @given(scale=st.floats(0.1, 50.0))
    @slow_settings
    def test_det_invariant_to_objective_scaling(self, scale):
        """Multiplying f by a positive constant changes no decision."""
        def run(s):
            f = Quadratic(2, scales=[s, 3.0 * s], center=[1.0, -1.0])
            func = StochasticFunction(f, sigma0=0.0, rng=0)
            opt = NelderMead(
                func,
                initial_simplex([0.0, 0.0], step=0.9),
                termination=MaxStepsTermination(100),
            )
            return opt.run()

        a = run(1.0)
        b = run(scale)
        np.testing.assert_allclose(a.best_theta, b.best_theta, atol=1e-9)
        assert a.trace.operations() == b.trace.operations()


class TestSchedulerInvariants:
    @given(
        sizes=st.lists(st.integers(1, 16), min_size=1, max_size=12),
    )
    @slow_settings
    def test_core_conservation(self, sizes):
        """free + allocated == total, at every point of any submit sequence."""
        cluster = Cluster.homogeneous(4, cores_per_node=8)
        sched = PBSScheduler(cluster)
        jobs = []
        for s in sizes:
            job = sched.submit(JobRequest(n_procs=s))
            if job is not None:
                jobs.append(job)
            allocated = sum(len(j.entries) for j in sched.running.values())
            assert sched.free_cores + allocated == cluster.total_cores
        # release everything; queued jobs may start, then drain them too
        while sched.running:
            jid = next(iter(sched.running))
            sched.release(jid)
        assert sched.free_cores == cluster.total_cores
        assert sched.queued == 0 or all(
            q.n_procs > cluster.total_cores for q in sched._queue
        )

    @given(sizes=st.lists(st.integers(1, 8), min_size=2, max_size=8))
    @slow_settings
    def test_no_core_double_allocation(self, sizes):
        cluster = Cluster.homogeneous(3, cores_per_node=8)
        sched = PBSScheduler(cluster)
        for s in sizes:
            sched.submit(JobRequest(n_procs=s))
        entries = [e for j in sched.running.values() for e in j.entries]
        # each physical core (machinefile slot) appears at most its multiplicity
        from collections import Counter

        total = Counter()
        for e in entries:
            total[e] += 1
        for node, count in total.items():
            assert count <= 8


class TestMessageProperties:
    @given(
        payload=st.dictionaries(
            st.text(max_size=6),
            st.one_of(st.integers(-1000, 1000), st.floats(-1e6, 1e6, allow_nan=False), st.text(max_size=10)),
            max_size=5,
        ),
        sender=st.integers(0, 100),
        tag=st.sampled_from([MSG_TASK, MSG_RESULT]),
    )
    @settings(max_examples=50, deadline=None)
    def test_message_roundtrip_property(self, payload, sender, tag):
        msg = Message(tag=tag, sender=sender, payload=payload)
        assert decode_message(encode_message(msg)) == msg
