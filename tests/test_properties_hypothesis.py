"""Cross-cutting property-based tests (hypothesis) on system invariants."""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from store_helpers import STORE_BACKENDS, open_store_backend
from repro.campaign import (
    ResultStore,
    ShardedResultStore,
    open_store,
)
from repro.cluster import Cluster, JobRequest, PBSScheduler
from repro.core import MaxStepsTermination, NelderMead
from repro.functions import Quadratic, initial_simplex
from repro.mw import decode_message, encode_message, Message
from repro.mw.messages import MSG_RESULT, MSG_TASK
from repro.noise import StochasticFunction

slow_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestOptimizerEquivariance:
    @given(
        shift=hnp.arrays(float, (2,), elements=st.floats(-5, 5, allow_nan=False)),
    )
    @slow_settings
    def test_det_translation_equivariance_of_outcome(self, shift):
        """Minimizing f(x - c) from x0 + c lands at the shifted optimum.

        (Exact *path* equivariance does not survive floating point — a tie
        broken differently flips a branch — so the property tested is the
        outcome: both runs converge equally close to their own minimizer.)
        """
        def run(center, start):
            f = Quadratic(2, scales=[1.0, 3.0], center=center)
            func = StochasticFunction(f, sigma0=0.0, rng=0)
            opt = NelderMead(
                func,
                initial_simplex(start, step=0.7),
                termination=MaxStepsTermination(200),
            )
            return opt.run(), f

        base, f_base = run(np.zeros(2), np.array([1.3, -0.8]))
        moved, f_moved = run(shift, np.array([1.3, -0.8]) + shift)
        d_base = f_base.distance_to_solution(base.best_theta)
        d_moved = f_moved.distance_to_solution(moved.best_theta)
        assert d_base < 1e-3
        assert d_moved < 1e-3

    @given(scale=st.floats(0.1, 50.0))
    @slow_settings
    def test_det_invariant_to_objective_scaling(self, scale):
        """Multiplying f by a positive constant changes no decision."""
        def run(s):
            f = Quadratic(2, scales=[s, 3.0 * s], center=[1.0, -1.0])
            func = StochasticFunction(f, sigma0=0.0, rng=0)
            opt = NelderMead(
                func,
                initial_simplex([0.0, 0.0], step=0.9),
                termination=MaxStepsTermination(100),
            )
            return opt.run()

        a = run(1.0)
        b = run(scale)
        np.testing.assert_allclose(a.best_theta, b.best_theta, atol=1e-9)
        assert a.trace.operations() == b.trace.operations()


class TestSchedulerInvariants:
    @given(
        sizes=st.lists(st.integers(1, 16), min_size=1, max_size=12),
    )
    @slow_settings
    def test_core_conservation(self, sizes):
        """free + allocated == total, at every point of any submit sequence."""
        cluster = Cluster.homogeneous(4, cores_per_node=8)
        sched = PBSScheduler(cluster)
        jobs = []
        for s in sizes:
            job = sched.submit(JobRequest(n_procs=s))
            if job is not None:
                jobs.append(job)
            allocated = sum(len(j.entries) for j in sched.running.values())
            assert sched.free_cores + allocated == cluster.total_cores
        # release everything; queued jobs may start, then drain them too
        while sched.running:
            jid = next(iter(sched.running))
            sched.release(jid)
        assert sched.free_cores == cluster.total_cores
        assert sched.queued == 0 or all(
            q.n_procs > cluster.total_cores for q in sched._queue
        )

    @given(sizes=st.lists(st.integers(1, 8), min_size=2, max_size=8))
    @slow_settings
    def test_no_core_double_allocation(self, sizes):
        cluster = Cluster.homogeneous(3, cores_per_node=8)
        sched = PBSScheduler(cluster)
        for s in sizes:
            sched.submit(JobRequest(n_procs=s))
        entries = [e for j in sched.running.values() for e in j.entries]
        # each physical core (machinefile slot) appears at most its multiplicity
        from collections import Counter

        total = Counter()
        for e in entries:
            total[e] += 1
        for node, count in total.items():
            assert count <= 8


# A deliberately tiny id pool so random op sequences collide on job ids
# (duplicates, re-claims, and overwrites are the interesting cases).
_job_ids = st.text(alphabet="abc", min_size=1, max_size=2)
_runners = st.sampled_from(["r1", "r2"])

_store_ops = st.lists(
    st.one_of(
        st.tuples(st.just("record"), _job_ids,
                  st.sampled_from(["done", "failed"]), st.integers(0, 9)),
        st.tuples(st.just("claim"), st.lists(_job_ids, max_size=3), _runners),
        st.tuples(st.just("release"), st.lists(_job_ids, max_size=3), _runners),
        st.tuples(st.just("compact")),
    ),
    max_size=30,
)


class TestStoreProperties:
    """Every store engine under random append/claim/release/compact mixes.

    Parametrized over the same engine set as the ``store_backend``
    fixture (fresh stores are built per hypothesis example, which a
    function-scoped fixture cannot provide).
    """

    @staticmethod
    def _apply(store, model, op):
        """Run one op against the real store and the pure-dict model.

        The model tracks *results only* — the invariant under test is that
        lease traffic and compaction never disturb (or surface as) result
        records, and that last-record-wins holds across shards.
        """
        if op[0] == "record":
            _, jid, status, v = op
            rec = {"job_id": jid, "status": status, "result": {"v": v}}
            store.record(rec)
            model[jid] = rec
        elif op[0] == "claim":
            store.claim(op[1], op[2], ttl=3600)
        elif op[0] == "release":
            store.release(op[1], op[2])
        else:
            store.compact()

    @pytest.mark.parametrize("engine", STORE_BACKENDS)
    @given(ops=_store_ops, n_shards=st.integers(1, 5))
    @slow_settings
    def test_random_interleavings_preserve_last_record_wins(
        self, engine, ops, n_shards
    ):
        with tempfile.TemporaryDirectory() as tmp:
            store = open_store_backend(engine, tmp, n_shards=n_shards)
            model = {}
            for op in ops:
                self._apply(store, model, op)
                done = {j for j, r in model.items() if r["status"] == "done"}
                assert store.completed_ids() == done  # no completed result lost
            assert {r["job_id"]: r for r in store.records()} == model
            store.compact()  # a final compact changes nothing observable
            assert {r["job_id"]: r for r in store.records()} == model
            # and a fresh reader of the same directory agrees
            reread = open_store_backend(engine, tmp, n_shards=n_shards)
            assert {r["job_id"]: r for r in reread.records()} == model

    @pytest.mark.parametrize("target", ["sharded", "sqlite"])
    @given(
        records=st.lists(
            st.tuples(_job_ids, st.sampled_from(["done", "failed"]),
                      st.integers(0, 9)),
            max_size=30,
        ),
        n_shards=st.integers(1, 5),
        torn_tail=st.booleans(),
    )
    @slow_settings
    def test_legacy_migration_is_lossless_and_idempotent(
        self, target, records, n_shards, torn_tail
    ):
        with tempfile.TemporaryDirectory() as tmp:
            legacy = ResultStore(Path(tmp) / "results.jsonl")
            for jid, status, v in records:
                legacy.record({"job_id": jid, "status": status, "result": {"v": v}})
            if torn_tail and records:
                with open(legacy.path, "a") as fh:
                    fh.write('{"job_id": "zz", "stat')  # hard-kill artifact
            expected = {r["job_id"]: r for r in legacy.records()}

            if target == "sharded":
                migrated = open_store(tmp, shards=n_shards)
                assert isinstance(migrated, ShardedResultStore)
            else:
                migrated = open_store(tmp, engine="sqlite")
            assert {r["job_id"]: r for r in migrated.records()} == expected
            assert not (Path(tmp) / "results.jsonl").exists()

            # idempotent: re-resolving (and re-migrating) changes nothing
            again = open_store(tmp)
            assert type(again) is type(migrated)
            if target == "sharded":
                assert again.n_shards == n_shards
            assert {r["job_id"]: r for r in again.records()} == expected
            again.compact()
            assert {r["job_id"]: r for r in again.records()} == expected


class TestMessageProperties:
    @given(
        payload=st.dictionaries(
            st.text(max_size=6),
            st.one_of(st.integers(-1000, 1000), st.floats(-1e6, 1e6, allow_nan=False), st.text(max_size=10)),
            max_size=5,
        ),
        sender=st.integers(0, 100),
        tag=st.sampled_from([MSG_TASK, MSG_RESULT]),
    )
    @settings(max_examples=50, deadline=None)
    def test_message_roundtrip_property(self, payload, sender, tag):
        msg = Message(tag=tag, sender=sender, payload=payload)
        assert decode_message(encode_message(msg)) == msg
