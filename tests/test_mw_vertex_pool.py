"""Tests for the MW-backed evaluation pool and the optimizer integration."""

import numpy as np
import pytest

from repro.core import MaxStepsTermination, NelderMead, PointComparison, default_termination
from repro.functions import Sphere, initial_simplex, rosenbrock
from repro.mw import MWVertexPool, VertexSampler
from repro.mw.worker import WorkerContext


def sphere(theta):
    return float(np.dot(theta, theta))


class TestVertexSampler:
    def test_noiseless_sample_is_exact(self):
        sampler = VertexSampler(sphere, sigma0=0.0)
        ctx = WorkerContext(rank=1, rng=np.random.default_rng(0))
        out = sampler({"theta": np.array([1.0, 2.0]), "dt": 1.0}, ctx)
        assert out == {"sample": 5.0, "dt": 1.0}

    def test_noise_scales_with_dt(self):
        sampler = VertexSampler(sphere, sigma0=4.0)
        ctx = WorkerContext(rank=1, rng=np.random.default_rng(0))
        draws = [
            sampler({"theta": np.zeros(2), "dt": 16.0}, ctx)["sample"]
            for _ in range(3000)
        ]
        assert np.std(draws) == pytest.approx(1.0, rel=0.07)  # 4/sqrt(16)

    def test_callable_sigma0(self):
        sampler = VertexSampler(sphere, sigma0=lambda th: float(th[0]))
        assert sampler.sigma0_at(np.array([3.0, 0.0])) == 3.0

    def test_invalid_dt_rejected(self):
        sampler = VertexSampler(sphere, sigma0=1.0)
        ctx = WorkerContext(rank=1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            sampler({"theta": np.zeros(2), "dt": 0.0}, ctx)


class TestMWVertexPool:
    def test_activation_warms_up(self):
        with MWVertexPool(sphere, sigma0=0.0, n_workers=2, warmup=2.0, seed=0) as pool:
            ev = pool.activate([1.0, 1.0])
            assert ev.estimate == pytest.approx(2.0)
            assert ev.time == pytest.approx(2.0)
            assert pool.now == pytest.approx(2.0)

    def test_advance_extends_all_active(self):
        with MWVertexPool(sphere, sigma0=0.0, n_workers=2, warmup=1.0, seed=0) as pool:
            a = pool.activate([0.0, 0.0])
            b = pool.activate([1.0, 0.0])
            pool.advance(3.0)
            assert a.time == pytest.approx(5.0)  # 1 + 1 (b's warmup) + 3
            assert b.time == pytest.approx(4.0)

    def test_deactivate(self):
        with MWVertexPool(sphere, sigma0=0.0, n_workers=2, seed=0) as pool:
            ev = pool.activate([0.0, 0.0])
            pool.deactivate(ev)
            assert len(pool) == 0
            with pytest.raises(ValueError):
                pool.deactivate(ev)

    def test_estimates_converge_with_sampling(self):
        with MWVertexPool(sphere, sigma0=5.0, n_workers=2, seed=1) as pool:
            ev = pool.activate([2.0, 0.0])
            pool.advance(400.0)
            assert ev.estimate == pytest.approx(4.0, abs=1.5)
            assert ev.sem == pytest.approx(5.0 / np.sqrt(401.0), rel=1e-6)

    def test_sigma_unknown_mode(self):
        with MWVertexPool(sphere, sigma0=2.0, sigma_known=False, n_workers=2, seed=0) as pool:
            ev = pool.activate([1.0, 0.0])
            assert ev.sigma0 is None

    def test_function_view_counters(self):
        with MWVertexPool(sphere, sigma0=0.0, n_workers=2, seed=0) as pool:
            pool.activate([1.0, 1.0])
            pool.advance(2.0)
            assert pool.func.n_underlying_calls == 2
            assert pool.func.total_sampling_time == pytest.approx(3.0)
            assert pool.func.true_value([1.0, 1.0]) == 2.0

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ValueError):
            MWVertexPool(sphere, warmup=0.0)


class TestOptimizerOverMW:
    def test_det_on_mw_matches_plain_pool_noiseless(self):
        """The same DET moves happen whether sampling is local or via MW."""
        from repro.noise import StochasticFunction

        verts = initial_simplex([2.0, -1.0], step=1.0)
        plain = NelderMead(
            StochasticFunction(Sphere(2), sigma0=0.0, rng=0),
            verts,
            termination=MaxStepsTermination(25),
        ).run()
        with MWVertexPool(sphere, sigma0=0.0, n_workers=5, seed=0) as pool:
            mw = NelderMead(
                pool.func,  # function view for true_value
                verts,
                pool=pool,
                termination=MaxStepsTermination(25),
            ).run()
        assert mw.trace.operations() == plain.trace.operations()
        np.testing.assert_allclose(mw.best_theta, plain.best_theta)

    def test_pc_over_threaded_backend_converges(self):
        verts = initial_simplex([2.0, -1.0], step=1.0)
        with MWVertexPool(
            sphere, sigma0=0.5, n_workers=5, backend="threaded", seed=3
        ) as pool:
            result = PointComparison(
                pool.func,
                verts,
                pool=pool,
                termination=default_termination(
                    tau=5e-2, walltime=5e3, max_steps=200
                ),
            ).run()
        assert result.best_true < 1.0

    def test_paper_worker_count_d_plus_3(self):
        """d+3 workers: one per vertex plus two trial vertices (paper §3.1)."""
        d = 2
        with MWVertexPool(sphere, sigma0=0.0, n_workers=d + 3, seed=0) as pool:
            verts = initial_simplex(np.zeros(d), step=1.0)
            NelderMead(
                pool.func, verts, pool=pool, termination=MaxStepsTermination(10)
            ).run()
            stats = pool.driver.stats()
            assert stats["failed"] == 0
            assert stats["done"] > 0
