"""Tests for StochasticFunction and SamplingPool."""

import math

import numpy as np
import pytest

from repro.functions import Sphere
from repro.noise import SamplingPool, StochasticFunction, VirtualClock


def make(sigma0=1.0, mode="average", seed=0, sigma_known=True, f=None):
    return StochasticFunction(
        f if f is not None else Sphere(2),
        sigma0=sigma0,
        mode=mode,
        rng=seed,
        sigma_known=sigma_known,
    )


class TestStochasticFunction:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make(mode="bogus")

    def test_true_value_is_noise_free(self):
        func = make(sigma0=100.0)
        assert func.true_value([3.0, 4.0]) == 25.0

    def test_noiseless_evaluation_exact(self):
        func = make(sigma0=0.0)
        ev = func.evaluate([1.0, 2.0], time=1.0)
        assert ev.estimate == 5.0
        assert ev.sem == 0.0

    def test_evaluation_unbiased(self):
        func = make(sigma0=2.0, seed=1)
        vals = [func.evaluate([1.0, 0.0], time=1.0).estimate for _ in range(4000)]
        assert np.mean(vals) == pytest.approx(1.0, abs=0.1)
        assert np.std(vals) == pytest.approx(2.0, rel=0.05)

    def test_average_mode_variance_after_extension(self):
        """Estimate after total time t has variance sigma0^2/t."""
        finals = []
        for seed in range(2000):
            func = make(sigma0=2.0, seed=seed)
            ev = func.evaluate([0.0, 0.0], time=1.0)
            func.extend(ev, 3.0)  # total t = 4
            finals.append(ev.estimate)
        assert np.std(finals) == pytest.approx(1.0, rel=0.07)  # 2/sqrt(4)

    def test_resample_mode_variance_after_extension(self):
        finals = []
        for seed in range(2000):
            func = make(sigma0=2.0, mode="resample", seed=seed)
            ev = func.evaluate([0.0, 0.0], time=1.0)
            func.extend(ev, 3.0)
            finals.append(ev.estimate)
        assert np.std(finals) == pytest.approx(1.0, rel=0.07)

    def test_location_dependent_sigma0(self):
        func = StochasticFunction(
            Sphere(1), sigma0=lambda theta: float(abs(theta[0])), rng=0
        )
        assert func.sigma0_at([3.0]) == 3.0
        assert func.sigma0_at([0.0]) == 0.0

    def test_sigma_unknown_hides_truth(self):
        func = make(sigma0=5.0, sigma_known=False)
        ev = func.start([0.0, 0.0])
        assert ev.sigma0 is None

    def test_counters(self):
        func = make()
        ev = func.evaluate([0.0, 0.0], time=2.0)
        func.extend(ev, 3.0)
        assert func.n_underlying_calls == 2
        assert func.total_sampling_time == pytest.approx(5.0)

    def test_extend_rejects_nonpositive_dt(self):
        func = make()
        ev = func.start([0.0, 0.0])
        with pytest.raises(ValueError):
            func.extend(ev, 0.0)

    def test_seed_reproducibility(self):
        a = make(seed=9).evaluate([1.0, 1.0], 1.0).estimate
        b = make(seed=9).evaluate([1.0, 1.0], 1.0).estimate
        assert a == b


class TestSamplingPoolConcurrent:
    def test_activation_samples_warmup(self):
        func = make()
        pool = SamplingPool(func, warmup=2.0)
        ev = pool.activate([1.0, 1.0])
        assert ev.time == pytest.approx(2.0)
        assert pool.now == pytest.approx(2.0)

    def test_concurrent_advance_extends_all(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0, concurrent=True)
        a = pool.activate([0.0, 0.0])
        b = pool.activate([1.0, 1.0])
        # b's activation warmup also extended a
        assert a.time == pytest.approx(2.0)
        pool.advance(5.0)
        assert a.time == pytest.approx(7.0)
        assert b.time == pytest.approx(6.0)

    def test_clock_is_wall_time_not_total_effort(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0)
        pool.activate([0.0, 0.0])
        pool.activate([1.0, 1.0])
        pool.advance(10.0)
        # wall time: 1 + 1 + 10; total effort is larger (parallel sampling)
        assert pool.now == pytest.approx(12.0)
        assert func.total_sampling_time > pool.now

    def test_deactivate_stops_sampling(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0)
        a = pool.activate([0.0, 0.0])
        pool.deactivate(a)
        t = a.time
        pool.activate([1.0, 1.0])
        pool.advance(3.0)
        assert a.time == t
        assert a not in pool

    def test_deactivate_unknown_raises(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0)
        ev = func.start([0.0, 0.0])
        with pytest.raises(ValueError):
            pool.deactivate(ev)

    def test_adopt_registers_without_time(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0)
        ev = func.evaluate([0.0, 0.0], 1.0)
        pool.adopt(ev)
        assert ev in pool
        assert pool.now == 0.0

    def test_len_counts_active(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0)
        a = pool.activate([0.0, 0.0])
        pool.activate([1.0, 1.0])
        assert len(pool) == 2
        pool.deactivate(a)
        assert len(pool) == 1


class TestSamplingPoolNonConcurrent:
    def test_activation_extends_only_new(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0, concurrent=False)
        a = pool.activate([0.0, 0.0])
        b = pool.activate([1.0, 1.0])
        assert a.time == pytest.approx(1.0)
        assert b.time == pytest.approx(1.0)
        assert pool.now == pytest.approx(2.0)

    def test_advance_without_targets_only_moves_clock(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0, concurrent=False)
        a = pool.activate([0.0, 0.0])
        pool.advance(5.0)
        assert a.time == pytest.approx(1.0)
        assert pool.now == pytest.approx(6.0)

    def test_advance_with_targets_extends_them(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0, concurrent=False)
        a = pool.activate([0.0, 0.0])
        b = pool.activate([1.0, 1.0])
        pool.advance(4.0, targets=[a])
        assert a.time == pytest.approx(5.0)
        assert b.time == pytest.approx(1.0)

    def test_advance_rejects_inactive_target(self):
        func = make()
        pool = SamplingPool(func, warmup=1.0, concurrent=False)
        ev = func.start([0.0, 0.0])
        with pytest.raises(ValueError):
            pool.advance(1.0, targets=[ev])

    def test_shared_clock_between_pools(self):
        clock = VirtualClock()
        f1 = StochasticFunction(Sphere(1), sigma0=0.0, rng=0, clock=clock)
        pool = SamplingPool(f1, warmup=2.0)
        pool.activate([0.0])
        assert clock.now == pytest.approx(2.0)


class TestBatchedSamplingParity:
    """Batched kernels consume the identical rng stream as scalar loops.

    This is the invariant the whole batched-evaluation path rests on: one
    generator call over a frame's noise scales must leave the evaluations
    *and* the generator bitwise where the historical per-evaluation loop
    would have left them.
    """

    @staticmethod
    def _thetas(n=7, seed=3):
        return np.random.default_rng(seed).uniform(-2.0, 2.0, size=(n, 2))

    @pytest.mark.parametrize("mode", ["average", "resample"])
    def test_extend_many_bitwise_matches_scalar_loop(self, mode):
        batched = make(sigma0=1.5, mode=mode, seed=9)
        scalar = make(sigma0=1.5, mode=mode, seed=9)
        evs_b = [batched.start(t) for t in self._thetas()]
        evs_s = [scalar.start(t) for t in self._thetas()]
        for dt in (1.0, 2.5, 0.25):
            batched.extend_many(evs_b, dt)
            for ev in evs_s:
                scalar.extend(ev, dt)
        for eb, es in zip(evs_b, evs_s):
            assert eb.time == es.time
            assert eb.estimate == es.estimate
            assert eb.sem == es.sem
        assert batched.rng.bit_generator.state == scalar.rng.bit_generator.state
        assert batched.n_underlying_calls == scalar.n_underlying_calls
        assert batched.total_sampling_time == scalar.total_sampling_time

    @pytest.mark.parametrize("mode", ["average", "resample"])
    def test_merge_external_batch_matches_scalar_merges(self, mode):
        batched = make(sigma0=0.7, mode=mode, seed=21)
        scalar = make(sigma0=0.7, mode=mode, seed=21)
        thetas = self._thetas(n=5, seed=11)
        fvals = [float(Sphere(2)(t)) for t in thetas]
        evs_b = [batched.start(t) for t in thetas]
        evs_s = [scalar.start(t) for t in thetas]
        batched.merge_external_batch(evs_b, 1.5, fvals)
        for ev, v in zip(evs_s, fvals):
            scalar.merge_external(ev, 1.5, v)
        for eb, es in zip(evs_b, evs_s):
            assert eb.estimate == es.estimate
            assert eb.time == es.time
        assert batched.rng.bit_generator.state == scalar.rng.bit_generator.state

    def test_zero_sigma_entries_never_touch_the_generator(self):
        """Mixed frame: noiseless points are exact and draw nothing,
        exactly as the scalar path skips their rng call."""
        sigma0 = lambda th: 0.0 if th[0] < 0 else 1.0  # noqa: E731
        batched = make(sigma0=sigma0, seed=5)
        scalar = make(sigma0=sigma0, seed=5)
        thetas = np.array([[-1.0, 0.5], [1.0, 0.5], [-2.0, 0.0], [2.0, 0.0]])
        evs_b = [batched.start(t) for t in thetas]
        evs_s = [scalar.start(t) for t in thetas]
        batched.extend_many(evs_b, 2.0)
        for ev in evs_s:
            scalar.extend(ev, 2.0)
        for eb, es, t in zip(evs_b, evs_s, thetas):
            assert eb.estimate == es.estimate
            if t[0] < 0:  # noiseless: the exact surface value
                assert eb.estimate == float(Sphere(2)(t))
        assert batched.rng.bit_generator.state == scalar.rng.bit_generator.state

    def test_batch_evaluate_matches_scalar_evaluates(self):
        batched = make(sigma0=1.0, seed=13)
        scalar = make(sigma0=1.0, seed=13)
        thetas = self._thetas(n=4, seed=17)
        evs_b = batched.batch_evaluate(thetas, time=1.0, labels=list("abcd"))
        evs_s = [scalar.evaluate(t, time=1.0, label=lbl)
                 for t, lbl in zip(thetas, list("abcd"))]
        for eb, es in zip(evs_b, evs_s):
            assert eb.estimate == es.estimate
            assert eb.label == es.label
        assert batched.rng.bit_generator.state == scalar.rng.bit_generator.state

    def test_extend_many_empty_is_a_noop(self):
        func = make(seed=1)
        before = func.rng.bit_generator.state
        func.extend_many([], 1.0)
        assert func.rng.bit_generator.state == before
        assert func.n_underlying_calls == 0

    def test_merge_external_batch_validates(self):
        func = make(seed=1)
        ev = func.start([0.0, 0.0])
        with pytest.raises(ValueError):
            func.merge_external_batch([ev], 0.0, [1.0])
        with pytest.raises(ValueError):
            func.merge_external_batch([ev], 1.0, [1.0, 2.0])
