"""Tests for the $OPTROOT layout, config parsing, and phase runner."""

import numpy as np
import pytest

from repro.optroot import (
    OptRoot,
    PAR_PATTERN,
    load_input,
    load_property_specs,
    run_system_phases,
)
from repro.optroot.config import write_input, write_property_spec
from repro.water.cost import WaterCostFunction


@pytest.fixture
def optroot(tmp_path):
    return OptRoot.create(tmp_path / "opt")


class TestLayout:
    def test_create_builds_skeleton(self, optroot):
        assert optroot.systems_dir.is_dir()
        assert optroot.properties_dir.is_dir()

    def test_add_system_with_script(self, optroot):
        d = optroot.add_system("bulk")
        assert (d / "run.sh").is_file()
        assert optroot.systems() == ["bulk"]

    def test_par_directories_excluded_from_scan(self, optroot):
        optroot.add_system("bulk")
        optroot.par_dir(0)
        optroot.par_dir(12)
        assert optroot.systems() == ["bulk"]

    def test_par_pattern(self):
        assert PAR_PATTERN.match("par0")
        assert PAR_PATTERN.match("par123")
        assert PAR_PATTERN.match("par")
        assert not PAR_PATTERN.match("parity")
        assert not PAR_PATTERN.match("spar1")

    def test_reserved_system_name_rejected(self, optroot):
        with pytest.raises(ValueError):
            optroot.add_system("par3")
        with pytest.raises(ValueError):
            optroot.add_system("a/b")

    def test_phases_nested_order(self, optroot):
        optroot.add_system("bulk")
        optroot.add_phase("bulk", "production", "#!/bin/sh\nexit 0\n")
        scripts = optroot.phases("bulk")
        assert len(scripts) == 2
        assert scripts[0].parent.name == "bulk"
        assert scripts[1].parent.name == "production"

    def test_deeply_nested_phases(self, optroot):
        optroot.add_system("bulk")
        optroot.add_phase("bulk", "p2", "#!/bin/sh\nexit 0\n")
        optroot.add_phase("bulk", "p2/p3", "#!/bin/sh\nexit 0\n")
        assert len(optroot.phases("bulk")) == 3

    def test_processors_one_per_run_script(self, optroot):
        optroot.add_system("a")
        optroot.add_system("b")
        optroot.add_phase("b", "prod", "#!/bin/sh\nexit 0\n")
        assert optroot.n_processors_required() == 3

    def test_missing_system_raises(self, optroot):
        with pytest.raises(FileNotFoundError):
            optroot.phases("nope")


class TestInputFile:
    def test_roundtrip(self, optroot):
        verts = np.array([[0.1, 3.0, 0.5], [0.2, 3.1, 0.51],
                          [0.15, 3.2, 0.52], [0.12, 2.9, 0.6]])
        write_input(optroot, ["epsilon", "sigma", "q_h"], verts)
        parsed = load_input(optroot)
        assert parsed.names == ("epsilon", "sigma", "q_h")
        assert parsed.dim == 3
        np.testing.assert_allclose(parsed.vertices, verts)
        np.testing.assert_allclose(parsed.simplex_vertices(), verts)

    def test_d_plus_3_rows_accepted(self, optroot):
        verts = np.arange(10).reshape(5, 2).astype(float)  # d=2, d+3=5 rows
        write_input(optroot, ["a", "b"], verts)
        parsed = load_input(optroot)
        assert parsed.simplex_vertices().shape == (3, 2)

    def test_wrong_row_count_rejected(self, optroot):
        write_input(optroot, ["a", "b"], np.zeros((4, 2)))  # neither 3 nor 5
        with pytest.raises(ValueError):
            load_input(optroot)

    def test_ragged_row_rejected(self, optroot):
        optroot.input_file.write_text("a b\n1.0 2.0\n3.0\n4.0 5.0\n")
        with pytest.raises(ValueError):
            load_input(optroot)

    def test_missing_input_raises(self, optroot):
        with pytest.raises(FileNotFoundError):
            load_input(optroot)


class TestPropertySpecs:
    def test_roundtrip_into_cost_function(self, optroot):
        write_property_spec(optroot, "energy", target=-41.5, weight=1.0)
        write_property_spec(optroot, "goo", target=0.0, weight=0.5, scale=0.12)
        specs = load_property_specs(optroot)
        assert specs["energy"]["target"] == -41.5
        assert specs["goo"]["scale"] == 0.12
        cost = WaterCostFunction(specs)
        assert cost({"energy": -41.5, "goo": 0.0}) == 0.0

    def test_default_weight_absent(self, optroot):
        (optroot.properties_dir / "propx.val").write_text("2.5\n")
        specs = load_property_specs(optroot)
        assert specs["x"] == {"target": 2.5}

    def test_no_specs_raises(self, optroot):
        with pytest.raises(ValueError):
            load_property_specs(optroot)

    def test_garbage_value_raises(self, optroot):
        (optroot.properties_dir / "propx.val").write_text("not-a-number\n")
        with pytest.raises(ValueError):
            load_property_specs(optroot)


class TestPhaseRunner:
    def test_phases_run_in_order_with_environment(self, optroot, tmp_path):
        out = tmp_path / "trace.txt"
        optroot.add_system(
            "sys", f"#!/bin/sh\necho phase1 $OPT_PARAM_SIGMA >> {out}\n"
        )
        optroot.add_phase(
            "sys", "prod", f"#!/bin/sh\necho phase2 $OPT_PARAM_SIGMA >> {out}\n"
        )
        results = run_system_phases(optroot, "sys", {"sigma": 3.15})
        assert [r.ok for r in results] == [True, True]
        assert out.read_text().splitlines() == ["phase1 3.15", "phase2 3.15"]

    def test_failure_stops_subsequent_phases(self, optroot):
        optroot.add_system("sys", "#!/bin/sh\nexit 7\n")
        optroot.add_phase("sys", "prod", "#!/bin/sh\nexit 0\n")
        results = run_system_phases(optroot, "sys", {})
        assert len(results) == 1
        assert results[0].returncode == 7

    def test_stdout_captured(self, optroot):
        optroot.add_system("sys", "#!/bin/sh\necho hello\n")
        results = run_system_phases(optroot, "sys", {})
        assert results[0].stdout.strip() == "hello"

    def test_optroot_env_exported(self, optroot):
        optroot.add_system("sys", "#!/bin/sh\necho $OPTROOT\n")
        results = run_system_phases(optroot, "sys", {})
        assert results[0].stdout.strip() == str(optroot.root)


class TestParallelBackends:
    def test_serial_map(self):
        from repro.parallel import parallel_map

        assert parallel_map(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_thread_map_preserves_order(self):
        from repro.parallel import parallel_map

        assert parallel_map(lambda x: x + 1, list(range(20)), backend="thread") == list(
            range(1, 21)
        )

    def test_invalid_backend(self):
        from repro.parallel import parallel_map

        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1], backend="gpu")

    def test_seeded_tasks_independent(self):
        from repro.parallel import seeded_tasks

        tasks = seeded_tasks(["a", "b"], seed=0)
        r0 = np.random.default_rng(tasks[0][1]).normal()
        r1 = np.random.default_rng(tasks[1][1]).normal()
        assert r0 != r1

    def test_exceptions_propagate(self):
        from repro.parallel import parallel_map

        def boom(x):
            raise RuntimeError("bad")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], backend="thread")
