"""Additional water-pipeline coverage: algorithm variants and noise scales."""

import numpy as np
import pytest

from repro.water import parameterize_water
from repro.water.tip4p import PAPER_PROPERTIES


class TestPaperPropertyRecords:
    def test_all_models_recorded(self):
        assert set(PAPER_PROPERTIES) == {"MN", "PC", "PC+MN", "TIP4P", "EXP"}

    def test_experimental_record_values(self):
        exp = PAPER_PROPERTIES["EXP"]
        assert exp["energy"] == -41.5
        assert exp["pressure"] == 1.0
        assert exp["diffusion"] == 2.27e-5

    def test_tip4p_record_values(self):
        t = PAPER_PROPERTIES["TIP4P"]
        assert t["pressure"] == 373.0
        assert t["diffusion"] == 3.29e-5

    def test_optimized_models_bracket_tip4p_energy(self):
        """Paper: MN/PC/PC+MN energies lie between experiment and TIP4P."""
        for alg in ("MN", "PC", "PC+MN"):
            e = PAPER_PROPERTIES[alg]["energy"]
            assert -41.81 <= e <= -41.49


class TestParameterizeVariants:
    @pytest.mark.parametrize("alg", ["PC", "PC+MN"])
    def test_algorithms_converge(self, alg):
        result = parameterize_water(
            algorithm=alg, seed=2, walltime=2e5, max_steps=200, tau=1e-3
        )
        assert abs(result.best_theta[1] - 3.154) < 0.08

    def test_custom_vertices(self):
        verts = np.array(
            [
                [0.18, 3.0, 0.50],
                [0.13, 3.3, 0.55],
                [0.16, 3.1, 0.48],
                [0.14, 3.2, 0.53],
            ]
        )
        result = parameterize_water(
            algorithm="MN", seed=0, vertices=verts,
            walltime=1e5, max_steps=150, tau=1e-3,
        )
        assert result.best_theta.shape == (3,)

    def test_reduced_noise_converges_tighter(self):
        noisy = parameterize_water(
            algorithm="PC", seed=4, noise_scale=1.0,
            walltime=2e5, max_steps=200, tau=1e-3,
        )
        quiet = parameterize_water(
            algorithm="PC", seed=4, noise_scale=0.05,
            walltime=2e5, max_steps=200, tau=1e-3,
        )
        assert quiet.best_true <= noisy.best_true * 1.5
