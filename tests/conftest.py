"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from store_helpers import STORE_BACKENDS, open_store_backend

from repro.functions import Rosenbrock, Sphere
from repro.noise import SamplingPool, StochasticFunction

try:  # hypothesis is a tier-1 dependency but not every CI job installs it
    from hypothesis import HealthCheck, settings as hyp_settings
except ImportError:
    pass
else:
    # The reproducible profile CI runs the property suite under
    # (HYPOTHESIS_PROFILE=ci): derandomized, bounded examples, no
    # deadline flakes on loaded runners.
    hyp_settings.register_profile(
        "ci",
        derandomize=True,
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    # The nightly schedule leg runs the property suite at full strength:
    # fresh randomness every night and the library-default example count
    # (no derandomize, so regressions the bounded ci profile would never
    # reach still get hunted down over time).
    hyp_settings.register_profile(
        "nightly",
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    if os.environ.get("HYPOTHESIS_PROFILE"):
        hyp_settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture(params=STORE_BACKENDS + ("netstore",))
def store_backend(request, tmp_path, monkeypatch):
    """Factory of store instances, parametrized over every engine.

    Each call opens a *fresh instance* over the same substrate (one
    directory per test), so multi-runner tests model real cooperating
    processes.  The factory carries metadata for engine-sensitive
    assertions: ``.engine`` (fixture param), ``.shards`` (expected
    ``n_shards`` of the opened store), and ``.cli_store_spec`` (the
    ``--store`` argument creating this layout from the CLI).

    The ``netstore`` parametrization spins up a real in-process
    :class:`~repro.campaign.backends.netstore.StoreServer` over a sqlite
    backend, so every store and chaos test also runs over an actual
    TCP socket; ``make()`` then returns network clients of it.

    Telemetry is switched on for every parametrization so the whole
    store/chaos matrix also exercises the instrumented code paths.
    """
    monkeypatch.setenv("REPRO_TELEMETRY", "1")

    if request.param == "netstore":
        from repro.campaign.backends import NetworkStoreBackend, StoreServer
        from repro.campaign.backends.sqlite import SQLiteStoreBackend

        served = SQLiteStoreBackend(tmp_path / "served-store")
        server = StoreServer(served, listen="127.0.0.1:0")
        server.start()
        clients = []

        def make():
            client = NetworkStoreBackend(server.address)
            clients.append(client)
            return client

        def teardown():
            for client in clients:
                client.close()
            server.close()
            served.close()

        request.addfinalizer(teardown)
        make.engine = "netstore"
        make.shards = 1
        make.cli_store_spec = server.address
        return make

    def make():
        return open_store_backend(request.param, tmp_path / "backend-store")

    make.engine = request.param
    make.shards = 3 if request.param == "sharded" else 1
    make.cli_store_spec = {
        "jsonl": "jsonl",
        "sharded": "jsonl:3",
        "sqlite": "sqlite",
    }[request.param]
    return make


@pytest.fixture
def result_lines():
    """Counter of raw result-record lines in a campaign store file.

    Lease lines are excluded, and *lines* are counted, not deduplicated
    records — the assertion that a job was never re-executed.  Shared by
    the campaign test modules.
    """
    import json
    from pathlib import Path

    from repro.campaign import STATUS_CLAIMED, STATUS_RELEASED

    def count(path) -> int:
        n = 0
        for line in Path(path).read_text().strip().splitlines():
            if json.loads(line)["status"] not in (STATUS_CLAIMED, STATUS_RELEASED):
                n += 1
        return n

    return count


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def sphere3():
    return Sphere(3)


@pytest.fixture
def rosenbrock3():
    return Rosenbrock(3)


@pytest.fixture
def noisy_sphere(sphere3):
    """Moderately noisy sphere with known sigma0 and a deterministic seed."""
    return StochasticFunction(sphere3, sigma0=1.0, rng=42, sigma_known=True)


@pytest.fixture
def noiseless_sphere(sphere3):
    return StochasticFunction(sphere3, sigma0=0.0, rng=0)


@pytest.fixture
def pool(noisy_sphere):
    return SamplingPool(noisy_sphere, warmup=1.0, concurrent=True)
