"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions import Rosenbrock, Sphere
from repro.noise import SamplingPool, StochasticFunction


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def sphere3():
    return Sphere(3)


@pytest.fixture
def rosenbrock3():
    return Rosenbrock(3)


@pytest.fixture
def noisy_sphere(sphere3):
    """Moderately noisy sphere with known sigma0 and a deterministic seed."""
    return StochasticFunction(sphere3, sigma0=1.0, rng=42, sigma_known=True)


@pytest.fixture
def noiseless_sphere(sphere3):
    return StochasticFunction(sphere3, sigma0=0.0, rng=0)


@pytest.fixture
def pool(noisy_sphere):
    return SamplingPool(noisy_sphere, warmup=1.0, concurrent=True)
