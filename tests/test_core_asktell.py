"""Parity + property tests for the ask/tell seam (repro.core.base).

Three layers of evidence that killing the per-iteration barrier did not
change the optimizers:

* **Trajectory parity** — for every algorithm in ``ALGORITHMS``, the
  engine-backed ``run()`` (and a manual out-of-order ask/tell drive)
  reproduces the sequential reference loop ``_run_inline()`` seed for
  seed: identical vertices, identical :class:`OptimizationResult`,
  identical trace.
* **Protocol semantics** — duplicate tells are rejected cleanly, unknown
  ids raise, late tells go stale and are counted, speculative refinement
  proposals respect the non-concurrent (DET) pool contract.
* **A hypothesis state machine** — random interleavings of
  ask / in-order tells / out-of-order tells / duplicate tells / unknown
  tells never mint a duplicate proposal id, never lose a proposal, and
  always terminate.
"""

import numpy as np
import pytest

from repro.core import (
    ALGORITHMS,
    Proposal,
    TELL_APPLIED,
    TELL_DUPLICATE,
    TELL_EXTRA,
    TELL_STALE,
    default_termination,
    make_optimizer,
)
from repro.functions import Sphere, initial_simplex, random_vertices
from repro.noise import StochasticFunction

try:
    from hypothesis import settings as hyp_settings
    from hypothesis import strategies as st
    from hypothesis.stateful import (
        RuleBasedStateMachine,
        initialize,
        invariant,
        precondition,
        rule,
        run_state_machine_as_test,
    )

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is normally present
    HAVE_HYPOTHESIS = False


def build(algorithm, seed=42, dim=2, sigma0=1.0, max_steps=40, tau=0.05):
    """A deterministically seeded optimizer (same seed -> same instance)."""
    init_rng = np.random.default_rng(seed)
    vertices = random_vertices(dim, low=-2.0, high=2.0, rng=init_rng)
    func = StochasticFunction(
        Sphere(dim), sigma0=sigma0, rng=np.random.default_rng(seed + 7)
    )
    return make_optimizer(
        algorithm,
        func,
        vertices,
        termination=default_termination(tau=tau, walltime=1e6, max_steps=max_steps),
        record_trace=True,
    )


def assert_results_identical(a, b):
    """Bitwise-equality of two OptimizationResults, trace included."""
    assert a.reason == b.reason
    assert a.n_steps == b.n_steps
    assert a.walltime == b.walltime
    assert a.n_underlying_calls == b.n_underlying_calls
    assert a.total_sampling_time == b.total_sampling_time
    assert np.array_equal(a.best_theta, b.best_theta)
    assert a.best_estimate == b.best_estimate
    assert a.best_true == b.best_true
    ra, rb = a.trace.to_records(), b.trace.to_records()
    assert ra == rb


class TestRunParity:
    """run() (engine path) is trajectory-identical to _run_inline()."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_engine_run_matches_inline_reference(self, algorithm):
        reference = build(algorithm)._run_inline()
        result = build(algorithm).run()
        assert_results_identical(reference, result)
        assert result.n_steps > 0  # the run actually went somewhere

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_engine_leaves_identical_simplex(self, algorithm):
        ref_opt = build(algorithm)
        ref_opt._run_inline()
        eng_opt = build(algorithm)
        eng_opt.run()
        for ev_ref, ev_eng in zip(ref_opt.simplex.vertices, eng_opt.simplex.vertices):
            assert np.array_equal(ev_ref.theta, ev_eng.theta)
            assert ev_ref.estimate == ev_eng.estimate
            assert ev_ref.time == ev_eng.time

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_out_of_order_tells_reproduce_trajectory(self, algorithm):
        """Full-batch ask + reversed-order tells == the legacy trajectory.

        Noise is drawn at merge time in pool order, so the arrival order
        of a round's values must not matter.
        """
        reference = build(algorithm)._run_inline()
        opt = build(algorithm)
        surface = opt.func.f
        while True:
            proposals = opt.ask()
            if not proposals:
                break
            for p in reversed(proposals):
                status = opt.tell(p.id, float(surface(np.asarray(p.theta))))
                assert status == TELL_APPLIED
        assert_results_identical(reference, opt.result())
        assert opt.n_stale_tells == 0
        assert opt.n_duplicate_tells == 0

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_batched_tell_many_reproduces_trajectory(self, algorithm):
        """Whole-round tell_many frames == the sequential reference.

        The --eval-batch fan-in: a frame of results lands through one
        batched tell (one lock acquisition, one engine wake-up) with the
        surface values computed by the vectorized batch kernel, and the
        trajectory must stay bitwise identical to the inline loop.
        """
        reference = build(algorithm)._run_inline()
        opt = build(algorithm)
        surface = opt.func.f
        while True:
            proposals = opt.ask()
            if not proposals:
                break
            thetas = np.ascontiguousarray(
                [np.asarray(p.theta, dtype=float) for p in proposals]
            )
            values = surface.batch(thetas)
            statuses = opt.tell_many(
                [(p.id, float(v)) for p, v in zip(proposals, values)]
            )
            assert statuses == [TELL_APPLIED] * len(proposals)
        assert_results_identical(reference, opt.result())
        assert opt.n_stale_tells == 0
        assert opt.n_duplicate_tells == 0

    def test_proposal_ids_are_stable_and_unique(self):
        opt = build("MN", max_steps=10)
        surface = opt.func.f
        seen = set()
        while True:
            proposals = opt.ask()
            if not proposals:
                break
            for p in proposals:
                assert isinstance(p, Proposal)
                assert p.id not in seen
                seen.add(p.id)
                assert p.dt > 0
                opt.tell(p.id, float(surface(np.asarray(p.theta))))
        assert len(seen) > 0


class TestTellSemantics:
    def test_duplicate_tell_rejected_cleanly(self):
        opt = build("MN", max_steps=5)
        surface = opt.func.f
        proposals = opt.ask()
        p = proposals[0]
        assert opt.tell(p.id, float(surface(np.asarray(p.theta)))) == TELL_APPLIED
        assert opt.tell(p.id, 123.456) == TELL_DUPLICATE
        assert opt.n_duplicate_tells == 1
        for q in proposals[1:]:
            opt.tell(q.id, float(surface(np.asarray(q.theta))))
        opt.close()

    def test_unknown_id_raises_keyerror(self):
        opt = build("MN", max_steps=5)
        opt.ask()
        with pytest.raises(KeyError):
            opt.tell("never-minted", 0.0)
        opt.close()

    def test_tell_after_close_goes_stale(self):
        opt = build("MN", max_steps=5)
        proposals = opt.ask()
        opt.close(reason="test-close")
        status = opt.tell(proposals[0].id, 0.0)
        assert status == TELL_STALE
        assert opt.n_stale_tells >= 1
        result = opt.result()
        assert result.reason == "test-close"

    def test_close_is_idempotent_and_finishes(self):
        opt = build("PC", max_steps=5)
        opt.ask()
        opt.close()
        opt.close()
        assert opt.finished
        assert opt.result().reason == "closed"


class TestTellManySemantics:
    """Batch fan-in edge cases: per-item statuses under one lock."""

    def test_unknown_id_maps_to_stale_without_raising(self):
        opt = build("MN", max_steps=5)
        surface = opt.func.f
        proposals = opt.ask()
        items = [(p.id, float(surface(np.asarray(p.theta)))) for p in proposals]
        statuses = opt.tell_many([("p999999", 1.0)] + items)
        assert statuses[0] == TELL_STALE
        assert statuses[1:] == [TELL_APPLIED] * len(proposals)
        # unknown ids mirror the driver-side KeyError handling: counted
        # by the caller, not by the engine
        assert opt.n_stale_tells == 0
        opt.close()

    def test_duplicate_within_one_batch_rejected(self):
        opt = build("MN", max_steps=5)
        surface = opt.func.f
        proposals = opt.ask()
        p = proposals[0]
        value = float(surface(np.asarray(p.theta)))
        statuses = opt.tell_many([(p.id, value), (p.id, value)])
        assert statuses == [TELL_APPLIED, TELL_DUPLICATE]
        assert opt.n_duplicate_tells == 1
        opt.close()

    def test_empty_batch_is_a_noop(self):
        opt = build("MN", max_steps=5)
        opt.ask()
        assert opt.tell_many([]) == []
        opt.close()


class TestRefinements:
    def test_ask_n_mints_refinements_when_blocked(self):
        """With the round held, ask(n) mints refine:* proposals on active
        vertices; telling them merges extra sampling without breaking the run."""
        opt = build("MN", max_steps=10)
        surface = opt.func.f
        proposals = opt.ask()
        assert proposals
        extras = opt.ask(4)
        assert all(p.label.startswith("refine:") for p in extras)
        assert len({p.id for p in proposals + extras}) == len(proposals) + len(extras)
        for p in extras:
            assert opt.tell(p.id, float(surface(np.asarray(p.theta)))) == TELL_EXTRA
        while proposals:
            for p in proposals:
                opt.tell(p.id, float(surface(np.asarray(p.theta))))
            proposals = opt.ask()
        result = opt.result()
        assert result.n_steps > 0

    def test_no_refinements_for_non_concurrent_pool(self):
        """DET reads each point once with a fixed budget; speculative
        refinement would silently change that contract, so the engine must
        not mint any."""
        opt = build("DET", max_steps=10)
        proposals = opt.ask()
        assert proposals
        assert opt.ask(8) == []
        opt.close()

    def test_refinement_for_discarded_vertex_counts_stale(self):
        opt = build("MN", max_steps=12)
        surface = opt.func.f
        proposals = opt.ask()
        extras = opt.ask(2)
        # hold the refinement values until the vertex set has churned
        held = list(extras)
        for _ in range(6):
            if not proposals:
                break
            for p in proposals:
                opt.tell(p.id, float(surface(np.asarray(p.theta))))
            proposals = opt.ask()
        before = opt.n_stale_tells
        for p in held:
            status = opt.tell(p.id, float(surface(np.asarray(p.theta))))
            assert status in (TELL_EXTRA, TELL_STALE)
        # drive to completion; stale refinements are counted at merge time
        while proposals:
            for p in proposals:
                opt.tell(p.id, float(surface(np.asarray(p.theta))))
            proposals = opt.ask()
        opt.result()
        assert opt.n_stale_tells >= before


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestAskTellStateMachine:
    """Random interleavings of the protocol never corrupt the engine."""

    def test_random_interleavings(self):
        class AskTellMachine(RuleBasedStateMachine):
            def __init__(self):
                super().__init__()
                self.opt = None
                self.pending = []       # proposals asked but not told
                self.seen_ids = set()
                self.told_ids = []

            @initialize(
                algorithm=st.sampled_from(sorted(ALGORITHMS)),
                seed=st.integers(min_value=0, max_value=2**16),
            )
            def setup(self, algorithm, seed):
                self.opt = build(algorithm, seed=seed, max_steps=8, tau=0.2)
                self.surface = self.opt.func.f

            @rule()
            def ask(self):
                for p in self.opt.ask(2):
                    assert p.id not in self.seen_ids, "duplicate proposal id"
                    self.seen_ids.add(p.id)
                    self.pending.append(p)

            @precondition(lambda self: self.pending)
            @rule(data=st.data())
            def tell_random_pending(self, data):
                i = data.draw(
                    st.integers(min_value=0, max_value=len(self.pending) - 1)
                )
                p = self.pending.pop(i)
                status = self.opt.tell(
                    p.id, float(self.surface(np.asarray(p.theta)))
                )
                assert status in (TELL_APPLIED, TELL_EXTRA, TELL_STALE)
                self.told_ids.append(p.id)

            @precondition(lambda self: self.told_ids)
            @rule(data=st.data())
            def tell_duplicate(self, data):
                pid = data.draw(st.sampled_from(self.told_ids))
                status = self.opt.tell(pid, 0.0)
                assert status in (TELL_DUPLICATE, TELL_STALE)

            @rule()
            def tell_unknown(self):
                try:
                    self.opt.tell("bogus-id", 0.0)
                except KeyError:
                    pass
                else:  # pragma: no cover - would be a protocol violation
                    raise AssertionError("unknown id did not raise KeyError")

            def teardown(self):
                if self.opt is None:
                    return
                # no proposal may be lost: draining every pending round must
                # terminate (bounded by max_steps) with a usable result
                for _ in range(10_000):
                    for p in self.pending:
                        status = self.opt.tell(
                            p.id, float(self.surface(np.asarray(p.theta)))
                        )
                        assert status in (TELL_APPLIED, TELL_EXTRA, TELL_STALE)
                    self.pending = list(self.opt.ask(2))
                    if not self.pending and self.opt.finished:
                        break
                else:  # pragma: no cover
                    raise AssertionError("drain did not terminate")
                result = self.opt.result()
                assert result.reason is not None

        run_state_machine_as_test(
            AskTellMachine,
            settings=hyp_settings(
                max_examples=15, stateful_step_count=30, deadline=None
            ),
        )
