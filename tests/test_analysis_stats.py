"""Tests for bootstrap CIs and the paired sign test."""

import numpy as np
import pytest

from repro.analysis.stats import (
    BootstrapCI,
    SignTestResult,
    bootstrap_median_ci,
    sign_test,
)


class TestBootstrapMedianCI:
    def test_interval_contains_point_estimate(self):
        data = np.random.default_rng(0).normal(2.0, 1.0, size=60)
        ci = bootstrap_median_ci(data, rng=1)
        assert ci.low <= ci.statistic <= ci.high

    def test_clear_effect_excludes_zero(self):
        data = np.random.default_rng(2).normal(-1.0, 0.2, size=50)
        ci = bootstrap_median_ci(data, rng=3)
        assert ci.excludes_zero()
        assert ci.high < 0.0

    def test_null_effect_straddles_zero(self):
        data = np.random.default_rng(4).normal(0.0, 1.0, size=50)
        ci = bootstrap_median_ci(data, rng=5)
        assert not ci.excludes_zero()

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(6)
        small = bootstrap_median_ci(rng.normal(size=12), rng=7)
        large = bootstrap_median_ci(rng.normal(size=400), rng=8)
        assert (large.high - large.low) < (small.high - small.low)

    def test_reproducible_with_seed(self):
        data = np.arange(20.0)
        a = bootstrap_median_ci(data, rng=9)
        b = bootstrap_median_ci(data, rng=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0, 2.0], n_resamples=10)


class TestSignTest:
    def test_all_wins_tiny_p(self):
        result = sign_test([-1.0] * 10)
        assert result.n_wins == 10
        assert result.p_value == pytest.approx(2.0**-10)

    def test_balanced_sample_large_p(self):
        result = sign_test([-1.0, 1.0] * 5)
        assert result.p_value > 0.3

    def test_ties_dropped(self):
        result = sign_test([-1.0, -1.0, 0.0, 0.05], tie_width=0.1)
        assert result.n_ties == 2
        assert result.n_effective == 2
        assert result.n_wins == 2

    def test_all_ties_p_one(self):
        result = sign_test([0.0, 0.0], tie_width=0.5)
        assert result.p_value == 1.0

    def test_exact_binomial_hand_value(self):
        # 4 wins, 1 loss: P(X >= 4 | n=5, p=.5) = (5 + 1)/32
        result = sign_test([-1, -1, -1, -1, 1])
        assert result.p_value == pytest.approx(6.0 / 32.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sign_test([])
        with pytest.raises(ValueError):
            sign_test([1.0], tie_width=-1.0)

    def test_on_real_paired_study(self):
        """MN vs DET on a small sweep: direction confirmed statistically."""
        from benchmarks._harness import paired_minima
        from repro.analysis.histograms import log_ratio

        mins_mn, mins_det = paired_minima(
            "MN", "DET", options_a={"k": 2.0},
            function="sphere", dim=2, sigma0=100.0, n_seeds=10,
            walltime=2e4, max_steps=300,
        )
        ratios = [log_ratio(a, b) for a, b in zip(mins_mn, mins_det)]
        result = sign_test(ratios, tie_width=0.1)
        # MN should not lose the majority
        assert result.n_wins >= result.n_losses
