"""Tests for the serial/thread/process/mw map helpers."""

import numpy as np
import pytest

from repro.parallel import parallel_map, seeded_tasks


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            parallel_map(_square, [1], backend="mpi")

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValueError, match="chunksize"):
            parallel_map(_square, [1, 2], backend="process", chunksize=0)

    def test_thread_backend(self):
        assert parallel_map(_square, [1, 2, 3], backend="thread") == [1, 4, 9]

    def test_process_backend_with_chunksize(self):
        result = parallel_map(
            _square, list(range(8)), backend="process", max_workers=2, chunksize=4
        )
        assert result == [x * x for x in range(8)]


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x * x


class TestMWBackend:
    def test_mw_backend_matches_serial(self):
        result = parallel_map(
            _square, list(range(8)), backend="mw",
            max_workers=3, mw_transport="inproc",
        )
        assert result == [x * x for x in range(8)]

    def test_mw_backend_threaded_transport(self):
        result = parallel_map(
            _square, list(range(6)), backend="mw",
            max_workers=2, mw_transport="threaded",
        )
        assert result == [x * x for x in range(6)]

    def test_mw_backend_process_transport(self):
        result = parallel_map(
            _square, list(range(4)), backend="mw",
            max_workers=2, mw_transport="process",
        )
        assert result == [x * x for x in range(4)]

    def test_mw_task_failure_raises_after_retries(self):
        with pytest.raises(RuntimeError, match="three is right out"):
            parallel_map(
                _fail_on_three, list(range(5)), backend="mw",
                max_workers=2, mw_transport="inproc",
            )


class TestSeededTasks:
    def test_pairs_items_with_independent_streams(self):
        tasks = seeded_tasks(["a", "b"], seed=0)
        assert [item for item, _ in tasks] == ["a", "b"]
        draws = [np.random.default_rng(seq).random() for _, seq in tasks]
        assert draws[0] != draws[1]
        again = [np.random.default_rng(seq).random() for _, seq in seeded_tasks(["a", "b"], seed=0)]
        assert draws == again
