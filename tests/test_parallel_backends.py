"""Tests for the serial/thread/process map helpers."""

import numpy as np
import pytest

from repro.parallel import parallel_map, seeded_tasks


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            parallel_map(_square, [1], backend="mpi")

    def test_invalid_chunksize_rejected(self):
        with pytest.raises(ValueError, match="chunksize"):
            parallel_map(_square, [1, 2], backend="process", chunksize=0)

    def test_thread_backend(self):
        assert parallel_map(_square, [1, 2, 3], backend="thread") == [1, 4, 9]

    def test_process_backend_with_chunksize(self):
        result = parallel_map(
            _square, list(range(8)), backend="process", max_workers=2, chunksize=4
        )
        assert result == [x * x for x in range(8)]


class TestSeededTasks:
    def test_pairs_items_with_independent_streams(self):
        tasks = seeded_tasks(["a", "b"], seed=0)
        assert [item for item, _ in tasks] == ["a", "b"]
        draws = [np.random.default_rng(seq).random() for _, seq in tasks]
        assert draws[0] != draws[1]
        again = [np.random.default_rng(seq).random() for _, seq in seeded_tasks(["a", "b"], seed=0)]
        assert draws == again
