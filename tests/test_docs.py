"""Documentation integrity: required pages exist, internal links resolve.

The CI docs job runs this file.  It checks that the architecture and
campaign guides exist, that README links to them, and that every
relative markdown link (including intra-page anchors) in README and
``docs/*.md`` points at something real.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

# [text](target) — excluding images and bare autolinks
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def _heading_slugs(path: Path):
    """GitHub-style anchor slugs for every heading in a markdown file."""
    slugs = set()
    for line in path.read_text().splitlines():
        m = re.match(r"#{1,6}\s+(.*)", line)
        if not m:
            continue
        text = re.sub(r"[`*_]", "", m.group(1)).strip().lower()
        text = re.sub(r"[^\w\s-]", "", text)
        slugs.add(re.sub(r"\s+", "-", text))
    return slugs


def _links(path: Path):
    return LINK_RE.findall(path.read_text())


def test_required_docs_exist():
    assert (REPO / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO / "docs" / "CAMPAIGNS.md").is_file()


def test_readme_links_to_docs():
    targets = _links(REPO / "README.md")
    assert any("docs/ARCHITECTURE.md" in t for t in targets)
    assert any("docs/CAMPAIGNS.md" in t for t in targets)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_internal_links_resolve(doc):
    broken = []
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{target}: missing file {path_part}")
                continue
        else:
            resolved = doc
        if anchor and resolved.suffix == ".md":
            if anchor.lower() not in _heading_slugs(resolved):
                broken.append(f"{target}: no heading for anchor #{anchor}")
    assert not broken, f"broken links in {doc.name}:\n  " + "\n  ".join(broken)
