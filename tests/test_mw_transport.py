"""Tests for the Transport abstraction extracted from MWDriver.

The driver's behavioral contract across the three same-host transports
(deterministic inproc ordering, affinity, requeue, per-worker seeding) is
covered by test_mw_driver.py; this file tests the transport layer itself —
the factory, the event protocol, and the executor wire specs that let
cross-host workers import the master's executor by name.
"""

import numpy as np
import pytest

from repro.mw import MWDriver
from repro.mw.messages import MSG_RESULT, MSG_TASK, Message
from repro.mw.transport import (
    EVENT_DIED,
    FunctionExecutor,
    InprocTransport,
    ProcessTransport,
    ThreadedTransport,
    Transport,
    executor_wire_spec,
    is_tcp_spec,
    make_transport,
    resolve_executor,
    spec_of,
)


# module-level callables (importable by wire spec, picklable for process)
def square(work, ctx):
    return work * work


def plain_double(x):
    return 2 * x


def _seqs(n, seed=0):
    return np.random.SeedSequence(seed).spawn(n)


class TestFactory:
    def test_names_map_to_classes(self):
        for spec, cls in [
            ("inproc", InprocTransport),
            ("threaded", ThreadedTransport),
            ("process", ProcessTransport),
        ]:
            t = make_transport(spec, executor=square, n_workers=2, seed_seqs=_seqs(2))
            assert isinstance(t, cls)
            assert isinstance(t, Transport)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            make_transport("carrier-pigeon", executor=square, n_workers=1,
                           seed_seqs=_seqs(1))

    def test_same_host_transports_take_only_worker_caps(self):
        with pytest.raises(ValueError, match="accepts only the worker_caps"):
            make_transport("inproc", executor=square, n_workers=1,
                           seed_seqs=_seqs(1), heartbeat_interval=1.0)

    def test_same_host_transports_accept_worker_caps(self):
        t = make_transport("inproc", executor=square, n_workers=2,
                           seed_seqs=_seqs(2), worker_caps={1: ["md", "fast"]})
        assert t.worker_caps(1) == frozenset({"md", "fast"})
        assert t.worker_caps(2) == frozenset()

    def test_tcp_spec_detection(self):
        assert is_tcp_spec("tcp://127.0.0.1:5555")
        assert not is_tcp_spec("inproc")
        assert not is_tcp_spec("udp://x:1")

    def test_tcp_spec_builds_tcp_transport(self):
        from repro.mw.tcp import TcpMasterTransport

        t = make_transport("tcp://127.0.0.1:0", executor=square, n_workers=2,
                           seed_seqs=_seqs(2))
        assert isinstance(t, TcpMasterTransport)  # not started; nothing to close


class TestInprocTransport:
    def test_send_executes_and_buffers_reply(self):
        t = make_transport("inproc", executor=square, n_workers=1, seed_seqs=_seqs(1))
        assert t.synchronous and not t.dynamic
        assert t.initially_live() == {1}
        t.send(1, Message(tag=MSG_TASK, sender=0,
                          payload={"task_id": 7, "work": 3}))
        reply = t.recv(timeout=0)
        assert reply.tag == MSG_RESULT
        assert reply.payload == {"task_id": 7, "result": 9}
        assert t.recv(timeout=0) is None

    def test_poll_reports_nothing(self):
        t = make_transport("inproc", executor=square, n_workers=1, seed_seqs=_seqs(1))
        assert t.poll() == []


class TestProcessTransport:
    def test_dead_worker_reported_exactly_once(self):
        import os
        import signal
        import time

        t = ProcessTransport(square, _seqs(2))
        t.start()
        try:
            os.kill(t.procs[1].pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            events = []
            while not events and time.monotonic() < deadline:
                events = t.poll()
                time.sleep(0.05)
            assert events == [(EVENT_DIED, 1)]
            assert t.poll() == []  # not re-reported
        finally:
            t.close()

    def test_worker_streams_are_independent(self):
        """Process workers reconstruct their spawned stream (entropy AND
        spawn key), so two ranks never share noise draws."""

        with MWDriver(draw_normal, n_workers=2, backend="process", seed=3) as driver:
            a = driver.submit(None, affinity=1)
            b = driver.submit(None, affinity=2)
            driver.wait_all(timeout=30)
            assert a.result != b.result

    def test_process_streams_match_inproc_streams(self):
        """Same root seed -> same per-rank streams on every transport."""

        def first_draws(backend):
            with MWDriver(draw_normal, n_workers=2, backend=backend, seed=11) as d:
                tasks = [d.submit(None, affinity=r) for r in (1, 2)]
                d.wait_all(timeout=30)
                return [t.result for t in tasks]

        assert first_draws("process") == first_draws("inproc")


def draw_normal(work, ctx):
    return float(ctx.rng.normal())


class TestExecutorWireSpec:
    def test_module_level_executor_round_trips(self):
        payload = executor_wire_spec(square)
        assert payload == {"kind": "executor", "spec": f"{__name__}:square"}
        assert resolve_executor(payload) is square

    def test_function_executor_round_trips(self):
        payload = FunctionExecutor(plain_double).mw_wire_spec()
        assert payload == {"kind": "function", "spec": f"{__name__}:plain_double"}
        resolved = resolve_executor(payload)
        assert isinstance(resolved, FunctionExecutor)
        assert resolved(4, None) == 8

    def test_unimportable_callables_have_no_spec(self):
        assert spec_of(lambda x: x) is None
        assert executor_wire_spec(lambda w, c: w) is None

    def test_instance_executor_has_no_generic_spec(self):
        class Exec:
            def __call__(self, work, ctx):
                return work

        assert executor_wire_spec(Exec()) is None

    def test_malformed_payloads_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            resolve_executor("not-a-dict")
        with pytest.raises(ValueError, match="module:attr"):
            resolve_executor({"kind": "executor", "spec": "no-colon"})
        with pytest.raises(ValueError, match="unknown executor kind"):
            resolve_executor({"kind": "teleport", "spec": "os:getcwd"})

    def test_missing_attribute_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            resolve_executor({"kind": "executor", "spec": "os:not_a_thing"})


class TestDriverTransportInjection:
    def test_prebuilt_transport_instance_is_used(self):
        t = InprocTransport(square, _seqs(2))
        with MWDriver(square, n_workers=2, transport=t) as driver:
            assert driver.transport is t
            task = driver.submit(5)
            driver.wait_all()
            assert task.result == 25
