"""Tests for step records, traces and the result object."""

import numpy as np
import pytest

from repro.core.state import OptimizationResult, StepRecord, Trace


def record(step, time, op="reflect", best=1.0, true=0.5):
    return StepRecord(
        step=step,
        time=time,
        operation=op,
        best_estimate=best,
        best_true=true,
        diameter=1.0,
        contraction_level=0,
    )


class TestTrace:
    def test_append_and_len(self):
        t = Trace()
        t.append(record(1, 1.0))
        t.append(record(2, 2.0))
        assert len(t) == 2
        assert t[0].step == 1

    def test_array_views(self):
        t = Trace()
        for i in range(3):
            t.append(record(i + 1, float(i + 1), best=float(3 - i)))
        np.testing.assert_allclose(t.times(), [1.0, 2.0, 3.0])
        np.testing.assert_allclose(t.best_estimates(), [3.0, 2.0, 1.0])
        assert t.best_true_values().shape == (3,)
        assert t.diameters().shape == (3,)

    def test_operations_and_counts(self):
        t = Trace()
        for op in ("reflect", "reflect", "expand", "collapse"):
            t.append(record(1, 1.0, op=op))
        assert t.operations() == ["reflect", "reflect", "expand", "collapse"]
        assert t.operation_counts() == {"reflect": 2, "expand": 1, "collapse": 1}

    def test_time_per_step(self):
        t = Trace()
        t.append(record(1, 2.0))
        t.append(record(2, 6.0))
        assert t.time_per_step() == pytest.approx(3.0)  # 6.0 / 2 steps

    def test_time_per_step_empty_is_nan(self):
        import math

        assert math.isnan(Trace().time_per_step())

    def test_iteration(self):
        t = Trace()
        t.append(record(1, 1.0))
        assert [r.step for r in t] == [1]


class TestStepRecord:
    def test_frozen(self):
        r = record(1, 1.0)
        with pytest.raises(AttributeError):
            r.step = 5

    def test_optional_fields_default(self):
        r = record(1, 1.0)
        assert r.wait_time == 0.0
        assert r.resample_rounds == 0


class TestOptimizationResult:
    def test_fields_and_repr(self):
        result = OptimizationResult(
            algorithm="PC",
            best_theta=np.array([1.0, 2.0]),
            best_estimate=0.5,
            best_true=0.4,
            n_steps=10,
            reason="tolerance",
            walltime=123.0,
        )
        text = repr(result)
        assert "PC" in text and "tolerance" in text
        assert result.extra == {}


class TestSerialization:
    def make_result(self, trace=None):
        return OptimizationResult(
            algorithm="MN",
            best_theta=np.array([1.5, -2.0]),
            best_estimate=np.float64(0.5),
            best_true=np.float64(0.25),
            n_steps=np.int64(7),
            reason="tolerance",
            walltime=12.5,
            trace=trace,
            n_underlying_calls=42,
            total_sampling_time=99.0,
            forced_decisions=1,
            extra={"restarts": np.int64(2), "grid": np.array([1.0, 2.0])},
        )

    def test_to_dict_is_plain_json(self):
        import json

        d = self.make_result().to_dict()
        text = json.dumps(d)  # would raise on numpy-type leakage
        assert json.loads(text) == d
        assert d["best_theta"] == [1.5, -2.0]
        assert d["extra"] == {"restarts": 2, "grid": [1.0, 2.0]}
        assert type(d["n_steps"]) is int and type(d["best_estimate"]) is float

    def test_round_trip(self):
        result = self.make_result()
        back = OptimizationResult.from_dict(result.to_dict())
        np.testing.assert_array_equal(back.best_theta, result.best_theta)
        assert back.best_true == result.best_true
        assert back.n_steps == result.n_steps
        assert back.reason == result.reason
        assert back.extra["restarts"] == 2
        assert back.trace is None

    def test_trace_round_trip(self):
        trace = Trace()
        trace.append(record(1, 1.0, op="reflect"))
        trace.append(record(2, 3.0, op="expand"))
        result = self.make_result(trace=trace)
        assert "trace" not in result.to_dict()  # omitted by default
        back = OptimizationResult.from_dict(result.to_dict(include_trace=True))
        assert len(back.trace) == 2
        assert back.trace.operations() == ["reflect", "expand"]
        np.testing.assert_allclose(back.trace.times(), trace.times())
