"""Unit tests for the virtual clock."""

import pytest

from repro.noise import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(2.5)
        clock.advance(1.5)
        assert clock.now == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = VirtualClock(1.0)
        assert clock.advance(2.0) == pytest.approx(3.0)

    def test_elapsed_relative_to_start(self):
        clock = VirtualClock(10.0)
        clock.advance(3.0)
        assert clock.elapsed == pytest.approx(3.0)

    def test_zero_advance_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_nan_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(float("nan"))

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_reset_to_original_start(self):
        clock = VirtualClock(2.0)
        clock.advance(10.0)
        clock.reset()
        assert clock.now == 2.0
        assert clock.elapsed == 0.0

    def test_reset_to_new_start(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.reset(100.0)
        assert clock.now == 100.0
