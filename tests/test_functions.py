"""Tests for the benchmark objective functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.functions import (
    Powell,
    Quadratic,
    Rastrigin,
    Rosenbrock,
    Sphere,
    get_function,
    initial_simplex,
    powell,
    random_vertices,
    rosenbrock,
)

finite_vec = lambda d: hnp.arrays(  # noqa: E731
    float, (d,), elements=st.floats(-10, 10, allow_nan=False)
)


class TestRosenbrock:
    def test_minimum_value_is_zero_at_ones(self):
        for d in (2, 3, 4, 10):
            f = Rosenbrock(d)
            assert f(np.ones(d)) == 0.0

    def test_eq_3_1_three_dim_form(self):
        """Hand-computed value for the 3-d chained form."""
        f = Rosenbrock(3)
        x = np.array([0.0, 1.0, 2.0])
        # (1-0)^2 + 100(1-0)^2 + (1-1)^2 + 100(2-1)^2 = 1 + 100 + 0 + 100
        assert f(x) == pytest.approx(201.0)

    def test_eq_3_2_four_dim_form(self):
        f = Rosenbrock(4)
        x = np.array([1.0, 1.0, 1.0, 2.0])
        assert f(x) == pytest.approx(100.0)

    def test_gradient_zero_at_minimum(self):
        f = Rosenbrock(5)
        np.testing.assert_allclose(f.gradient(np.ones(5)), 0.0, atol=1e-12)

    def test_gradient_matches_finite_differences(self):
        f = Rosenbrock(3)
        x = np.array([0.3, -0.7, 1.2])
        g = f.gradient(x)
        eps = 1e-6
        for i in range(3):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            fd = (f(xp) - f(xm)) / (2 * eps)
            assert g[i] == pytest.approx(fd, rel=1e-4, abs=1e-4)

    @given(x=finite_vec(4))
    @settings(max_examples=40)
    def test_nonnegative_everywhere(self, x):
        assert Rosenbrock(4)(x) >= 0.0

    @given(x=finite_vec(3))
    @settings(max_examples=40)
    def test_batch_matches_scalar(self, x):
        f = Rosenbrock(3)
        assert f.batch(x[None, :])[0] == pytest.approx(f(x))

    def test_rejects_dim_one(self):
        with pytest.raises(ValueError):
            Rosenbrock(1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Rosenbrock(3)([1.0, 2.0])

    def test_functional_form(self):
        assert rosenbrock([1.0, 1.0, 1.0]) == 0.0


class TestPowell:
    def test_eq_3_3_value(self):
        x = np.array([3.0, -1.0, 0.0, 1.0])
        # (3-10)^2 + 5(0-1)^2 + (-1-0)^4 + 10(3-1)^4 = 49+5+1+160
        assert Powell(4)(x) == pytest.approx(215.0)

    def test_minimum_at_origin(self):
        assert Powell(4)(np.zeros(4)) == 0.0
        assert Powell(8)(np.zeros(8)) == 0.0

    def test_extended_blocks_are_independent(self):
        f8 = Powell(8)
        f4 = Powell(4)
        a = np.array([3.0, -1.0, 0.0, 1.0])
        b = np.array([1.0, 2.0, 3.0, 4.0])
        assert f8(np.concatenate([a, b])) == pytest.approx(f4(a) + f4(b))

    @given(x=finite_vec(4))
    @settings(max_examples=40)
    def test_nonnegative(self, x):
        assert Powell(4)(x) >= 0.0

    @given(x=finite_vec(4))
    @settings(max_examples=40)
    def test_batch_matches_scalar(self, x):
        f = Powell(4)
        assert f.batch(x[None, :])[0] == pytest.approx(f(x))

    def test_rejects_non_multiple_of_four(self):
        for bad in (1, 2, 3, 5, 6):
            with pytest.raises(ValueError):
                Powell(bad)

    def test_functional_form(self):
        assert powell(np.zeros(4)) == 0.0


class TestSuiteFunctions:
    def test_sphere_batch_matches_scalar(self):
        f = Sphere(3)
        pts = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        np.testing.assert_allclose(f.batch(pts), [14.0, 0.0])

    def test_quadratic_custom_center(self):
        f = Quadratic(2, scales=[1.0, 4.0], center=[1.0, -1.0])
        assert f([1.0, -1.0]) == 0.0
        assert f([2.0, 0.0]) == pytest.approx(1.0 + 4.0)
        np.testing.assert_allclose(f.minimizer(), [1.0, -1.0])

    def test_quadratic_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            Quadratic(2, scales=[1.0, 0.0])

    def test_rastrigin_global_minimum(self):
        f = Rastrigin(4)
        assert f(np.zeros(4)) == pytest.approx(0.0, abs=1e-12)
        assert f(np.ones(4) * 0.5) > 0.0

    def test_distance_to_solution(self):
        f = Sphere(2)
        assert f.distance_to_solution([3.0, 4.0]) == pytest.approx(5.0)

    def test_registry_lookup(self):
        f = get_function("rosenbrock", 3)
        assert isinstance(f, Rosenbrock)
        with pytest.raises(KeyError):
            get_function("nope", 2)


class TestInitialStates:
    def test_random_vertices_shape_and_range(self):
        v = random_vertices(3, low=-6.0, high=3.0, rng=0)
        assert v.shape == (4, 3)
        assert v.min() >= -6.0
        assert v.max() <= 3.0

    def test_random_vertices_custom_count(self):
        assert random_vertices(4, n_vertices=7, rng=0).shape == (7, 4)

    def test_random_vertices_too_few_rejected(self):
        with pytest.raises(ValueError):
            random_vertices(4, n_vertices=3)

    def test_random_vertices_bad_range_rejected(self):
        with pytest.raises(ValueError):
            random_vertices(2, low=1.0, high=1.0)

    def test_random_vertices_seeded(self):
        a = random_vertices(3, rng=5)
        b = random_vertices(3, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_initial_simplex_geometry(self):
        v = initial_simplex([1.0, 2.0], step=0.5)
        np.testing.assert_allclose(v[0], [1.0, 2.0])
        np.testing.assert_allclose(v[1], [1.5, 2.0])
        np.testing.assert_allclose(v[2], [1.0, 2.5])

    def test_initial_simplex_rejects_zero_step(self):
        with pytest.raises(ValueError):
            initial_simplex([0.0, 0.0], step=0.0)

    def test_initial_simplex_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            initial_simplex([[0.0], [1.0]])


class TestBatchSuiteParity:
    """Suite-wide batch contract: one vectorized call == the scalar loop.

    Bitwise, not approximate: the batched evaluation path (--eval-batch,
    the pool's batched sampling kernel) must yield the exact doubles the
    scalar path would, or batched and unbatched campaign stores diverge.
    """

    SUITE = ("rosenbrock", "powell", "sphere", "quadratic", "rastrigin")

    @pytest.mark.parametrize("dim", (4, 16))
    @pytest.mark.parametrize("name", SUITE)
    def test_batch_bitwise_equals_scalar_loop(self, name, dim):
        f = get_function(name, dim)
        rng = np.random.default_rng(1000 * dim + len(name))
        thetas = np.ascontiguousarray(rng.uniform(-5.0, 5.0, size=(33, dim)))
        got = f.batch(thetas)
        expected = np.array([f(t) for t in thetas])
        assert got.shape == (33,)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(got, expected)

    def test_generic_fallback_matches_scalar_loop(self):
        """A value()-only subclass gets a correct (looping) batch for free."""
        from repro.functions.suite import TestFunction as Base

        class Tilted(Base):
            name = "tilted"

            def value(self, theta):
                return float(np.sum(np.abs(theta)) + theta[0])

            def minimizer(self):
                return np.zeros(self.dim)

        f = Tilted(3)
        rng = np.random.default_rng(7)
        thetas = rng.uniform(-1.0, 1.0, size=(9, 3))
        np.testing.assert_array_equal(f.batch(thetas), [f(t) for t in thetas])

    def test_batch_rejects_wrong_shape(self):
        f = get_function("sphere", 3)
        with pytest.raises(ValueError):
            f.batch(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            f.batch(np.zeros(3))
