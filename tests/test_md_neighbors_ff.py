"""Equivalence of the cell-list and all-pairs force-field paths."""

import numpy as np
import pytest

from repro.md import PeriodicBox, TIP4PForceField, WaterParameters, build_water_box


class TestNeighborMethodEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_energies_forces_virial_match(self, seed):
        """Cell-list physics is bit-comparable to the all-pairs reference."""
        sys_ = build_water_box(27, rng=seed)
        rc = min(4.0, sys_.box.min_image_cutoff * 0.99)
        ff_ap = TIP4PForceField(sys_.params, 27, cutoff=rc, neighbor_method="all_pairs")
        ff_cl = TIP4PForceField(sys_.params, 27, cutoff=rc, neighbor_method="cell_list")
        a = ff_ap.compute(sys_.pos, sys_.box)
        b = ff_cl.compute(sys_.pos, sys_.box)
        for term in a.energies:
            assert a.energies[term] == pytest.approx(b.energies[term], abs=1e-9), term
        np.testing.assert_allclose(a.forces, b.forces, atol=1e-9)
        assert a.virial == pytest.approx(b.virial, abs=1e-9)

    def test_equivalence_with_unwrapped_positions(self):
        """Unwrapped (drifted) coordinates still match: wrapping is internal."""
        sys_ = build_water_box(8, rng=2)
        pos = sys_.pos + np.array([3.0, -2.0, 1.0]) * sys_.box.lengths
        rc = min(3.5, sys_.box.min_image_cutoff * 0.99)
        a = TIP4PForceField(sys_.params, 8, cutoff=rc).compute(pos, sys_.box)
        b = TIP4PForceField(
            sys_.params, 8, cutoff=rc, neighbor_method="cell_list"
        ).compute(pos, sys_.box)
        assert a.potential_energy == pytest.approx(b.potential_energy, abs=1e-9)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            TIP4PForceField(WaterParameters(), 2, neighbor_method="verlet")

    def test_dynamics_agree_over_short_run(self):
        """A short NVE trajectory is identical under both providers."""
        from repro.md import VelocityVerlet

        results = {}
        for method in ("all_pairs", "cell_list"):
            sys_ = build_water_box(8, temperature=100.0, rng=3)
            rc = min(3.0, sys_.box.min_image_cutoff * 0.99)
            ff = TIP4PForceField(sys_.params, 8, cutoff=rc, neighbor_method=method)
            integ = VelocityVerlet(ff, dt=0.25)
            res = integ.forces(sys_)
            for _ in range(25):
                res = integ.step(sys_, res)
            results[method] = sys_.pos.copy()
        np.testing.assert_allclose(
            results["all_pairs"], results["cell_list"], atol=1e-8
        )
