"""The paper's three performance measures (§3.2, following Anderson et al.):

(1) **N** — the number of simplex iterations required to reach convergence;
(2) **R** — the error in the function value at convergence (the converged
    value is measured on the *underlying* noise-free surface so that the
    metric reflects real, not apparent, progress);
(3) **D** — the distance of the lowest point of the simplex from the known
    solution at convergence.

Tables 3.1 and 3.2 report these per run; the Fig. 3.5/3.6 comparisons reduce
pairs of runs to log-ratios of converged minima (see
:mod:`repro.analysis.histograms`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.core.state import OptimizationResult
from repro.functions.suite import TestFunction


@dataclass(frozen=True)
class PerformanceMetrics:
    """One run's (N, R, D) triple plus context."""

    n_iterations: int      # N
    value_error: float     # R = |f(theta_best) - f*|
    distance: float        # D = ||theta_best - theta*||
    walltime: float
    reason: str

    def as_row(self) -> tuple:
        return (self.n_iterations, self.value_error, self.distance)


def evaluate_result(
    result: OptimizationResult, function: TestFunction
) -> PerformanceMetrics:
    """Score one optimizer run against the known optimum of ``function``."""
    r = abs(result.best_true - function.minimum())
    d = function.distance_to_solution(result.best_theta)
    return PerformanceMetrics(
        n_iterations=result.n_steps,
        value_error=float(r),
        distance=float(d),
        walltime=result.walltime,
        reason=result.reason,
    )


@dataclass(frozen=True)
class AggregateMetrics:
    """Mean (N, R, D) over repeated runs, as the tables report."""

    n_runs: int
    mean_iterations: float
    mean_value_error: float
    mean_distance: float

    def as_row(self) -> tuple:
        return (
            self.n_runs,
            self.mean_iterations,
            self.mean_value_error,
            self.mean_distance,
        )


def evaluate_runs(
    results: Iterable[OptimizationResult],
    function: TestFunction,
) -> AggregateMetrics:
    """Aggregate (N, R, D) over several runs of the same configuration."""
    metrics: List[PerformanceMetrics] = [
        evaluate_result(r, function) for r in results
    ]
    if not metrics:
        raise ValueError("no results to aggregate")
    return AggregateMetrics(
        n_runs=len(metrics),
        mean_iterations=float(np.mean([m.n_iterations for m in metrics])),
        mean_value_error=float(np.mean([m.value_error for m in metrics])),
        mean_distance=float(np.mean([m.distance for m in metrics])),
    )
