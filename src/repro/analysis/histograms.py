"""Log-ratio histograms of converged minima (Figs. 3.5-3.17).

Each paired comparison in the paper runs two algorithms from the *same* 100
random initial simplexes and histograms ``log10(min_A / min_B)`` of the
converged (underlying) function values: zero means the methods tied, negative
values mean the numerator method got closer to the true minimum of zero.
Values are clipped into the plotted range (the paper's axes run -8..8 for
Rosenbrock and wider for Powell) so extreme wins/losses land in the edge bins
rather than vanishing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

#: Converged minima below this are treated as "exactly at the optimum" when
#: forming ratios; keeps log ratios finite on functions whose minimum is 0.
FLOOR = 1e-12


def log_ratio(min_a: float, min_b: float, floor: float = FLOOR) -> float:
    """``log10(min_a / min_b)`` with both values floored away from zero."""
    if min_a < 0 or min_b < 0:
        raise ValueError("converged minima must be >= 0 for ratio comparison")
    a = max(float(min_a), floor)
    b = max(float(min_b), floor)
    return math.log10(a / b)


@dataclass(frozen=True)
class RatioHistogram:
    """Binned distribution of paired log-ratios."""

    edges: np.ndarray    # (nbins+1,)
    counts: np.ndarray   # (nbins,)
    n_pairs: int
    clipped_low: int
    clipped_high: int

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def fraction_below(self, threshold: float = 0.0) -> float:
        """Fraction of pairs where the numerator method was strictly better
        by more than ``-threshold`` decades (default: any win)."""
        ratios = self._expand()
        return float(np.mean(ratios < threshold))

    def fraction_tied_or_below(self, tie_width: float = 0.5) -> float:
        """Fraction of pairs with ratio < tie_width (win or rough tie)."""
        ratios = self._expand()
        return float(np.mean(ratios < tie_width))

    def median(self) -> float:
        return float(np.median(self._expand()))

    def _expand(self) -> np.ndarray:
        # reconstruct per-pair values at bin centers (adequate for the
        # summary statistics used in tests/benchmarks)
        return np.repeat(self.centers, self.counts)


def ratio_histogram(
    mins_a: Sequence[float],
    mins_b: Sequence[float],
    lo: float = -8.0,
    hi: float = 8.0,
    nbins: int = 16,
    floor: float = FLOOR,
) -> RatioHistogram:
    """Histogram the paired ``log10(min_a/min_b)`` values, clipping to [lo, hi].

    ``mins_a[i]`` and ``mins_b[i]`` must come from the same initial simplex.
    """
    a = np.asarray(list(mins_a), dtype=float)
    b = np.asarray(list(mins_b), dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("paired minima must be equal-length 1-d sequences")
    if a.size == 0:
        raise ValueError("no pairs to histogram")
    if not (hi > lo):
        raise ValueError(f"need hi > lo, got [{lo}, {hi}]")
    ratios = np.array([log_ratio(x, y, floor=floor) for x, y in zip(a, b)])
    clipped_low = int(np.sum(ratios < lo))
    clipped_high = int(np.sum(ratios > hi))
    clipped = np.clip(ratios, lo, hi)
    edges = np.linspace(lo, hi, nbins + 1)
    # np.histogram puts values == hi into the last bin already
    counts, _ = np.histogram(clipped, bins=edges)
    return RatioHistogram(
        edges=edges,
        counts=counts,
        n_pairs=int(a.size),
        clipped_low=clipped_low,
        clipped_high=clipped_high,
    )
