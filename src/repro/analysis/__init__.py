"""Measurement and reporting utilities for the experiment harness."""

from repro.analysis.metrics import PerformanceMetrics, evaluate_result, evaluate_runs
from repro.analysis.histograms import RatioHistogram, log_ratio, ratio_histogram
from repro.analysis.traces import TraceSeries, trace_series
from repro.analysis.stats import (
    BootstrapCI,
    SignTestResult,
    bootstrap_median_ci,
    sign_test,
)
from repro.analysis.report import (
    format_histogram,
    format_loglog_plot,
    format_series,
    format_table,
)

__all__ = [
    "BootstrapCI",
    "PerformanceMetrics",
    "SignTestResult",
    "RatioHistogram",
    "TraceSeries",
    "bootstrap_median_ci",
    "evaluate_result",
    "evaluate_runs",
    "format_histogram",
    "format_loglog_plot",
    "format_series",
    "format_table",
    "log_ratio",
    "ratio_histogram",
    "sign_test",
    "trace_series",
]
