"""ASCII rendering of tables and figures for the benchmark harness.

Every benchmark regenerates its paper artifact as text: tables print the same
rows the paper's tables report, histogram "figures" print horizontal bar
charts, and trace figures print sampled series.  Keeping this in plain text
makes ``pytest benchmarks/ --benchmark-only -s`` self-contained (no plotting
dependencies) while still letting a human compare shapes against the paper.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.histograms import RatioHistogram
from repro.analysis.traces import TraceSeries


def _fmt(value, width: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            text = "nan"
        elif value == 0:
            text = "0"
        elif abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            text = f"{value:.3g}"
        else:
            text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render a simple fixed-width table."""
    rows = [list(r) for r in rows]
    ncols = len(headers)
    for r in rows:
        if len(r) != ncols:
            raise ValueError(f"row {r!r} does not match {ncols} headers")
    rendered: List[List[str]] = [
        [_fmt(cell, 0).strip() for cell in row] for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(ncols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_histogram(
    hist: RatioHistogram,
    title: Optional[str] = None,
    width: int = 40,
) -> str:
    """Render a log-ratio histogram as horizontal bars (Figs. 3.5-3.17 style)."""
    peak = int(hist.counts.max()) if hist.counts.size else 0
    scale = (width / peak) if peak > 0 else 0.0
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"n={hist.n_pairs} pairs; clipped: {hist.clipped_low} low, "
        f"{hist.clipped_high} high"
    )
    for lo, hi, count in zip(hist.edges[:-1], hist.edges[1:], hist.counts):
        bar = "#" * int(round(count * scale))
        lines.append(f"[{lo:+6.2f},{hi:+6.2f})  {int(count):4d} {bar}")
    return "\n".join(lines)


def format_series(
    series: Sequence[TraceSeries],
    title: Optional[str] = None,
    n_points: int = 8,
) -> str:
    """Render value-vs-time curves as sampled rows (Figs. 3.4 / 3.18 style)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for s in series:
        if s.times.size == 0:
            lines.append(f"{s.label}: <empty>")
            continue
        idx = np.unique(
            np.linspace(0, s.times.size - 1, min(n_points, s.times.size)).astype(int)
        )
        samples = ", ".join(
            f"t={s.times[i]:.3g}:v={s.values[i]:.4g}" for i in idx
        )
        lines.append(f"{s.label}: {samples}")
    return "\n".join(lines)


def format_loglog_plot(
    series: Sequence[TraceSeries],
    title: Optional[str] = None,
    cols: int = 64,
    lines_: int = 16,
) -> str:
    """Coarse ASCII log-log plot of several series (visual shape check)."""
    pts = [
        (s.label, s.times[s.times > 0], s.values[(s.times > 0)])
        for s in series
    ]
    pts = [(l, t, np.maximum(v, 1e-300)) for l, t, v in pts if t.size]
    if not pts:
        return (title or "") + "\n<no data>"
    tmin = min(t.min() for _, t, _ in pts)
    tmax = max(t.max() for _, t, _ in pts)
    vpos = [v[v > 0] for _, _, v in pts]
    vmin = min(v.min() for v in vpos if v.size)
    vmax = max(v.max() for v in vpos if v.size)
    if tmax <= tmin or vmax <= vmin:
        return (title or "") + "\n<degenerate ranges>"
    grid = [[" "] * cols for _ in range(lines_)]
    marks = "abcdefghijklmnopqrstuvwxyz"
    for si, (label, t, v) in enumerate(pts):
        m = marks[si % len(marks)]
        lx = (np.log10(t) - math.log10(tmin)) / (math.log10(tmax) - math.log10(tmin))
        ly = (np.log10(v) - math.log10(vmin)) / (math.log10(vmax) - math.log10(vmin))
        xs = np.clip((lx * (cols - 1)).astype(int), 0, cols - 1)
        ys = np.clip(((1.0 - ly) * (lines_ - 1)).astype(int), 0, lines_ - 1)
        for x, y in zip(xs, ys):
            grid[y][x] = m
    out: List[str] = []
    if title:
        out.append(title)
    out.append(f"y: log10 value in [{vmin:.3g}, {vmax:.3g}]")
    out.extend("|" + "".join(row) for row in grid)
    out.append("+" + "-" * cols)
    out.append(f"x: log10 time in [{tmin:.3g}, {tmax:.3g}]")
    out.append(
        "legend: " + ", ".join(f"{marks[i % len(marks)]}={p[0]}" for i, p in enumerate(pts))
    )
    return "\n".join(out)
