"""Uncertainty quantification for the paired-comparison studies.

The paper reports distributions "averaged over 100 different initial simplex
states" without confidence statements.  This module adds the two standard
tools for the reproduction's smaller sweeps:

* a **bootstrap confidence interval** for the median paired log-ratio (is
  "MN beats DET by half a decade" a real effect or seed luck?), and
* a **sign test** for the one-sided claim "method A ties or beats method B
  in the majority of paired starts" (exact binomial tail).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class BootstrapCI:
    """Bootstrap percentile interval for a statistic."""

    statistic: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def excludes_zero(self) -> bool:
        """Whether the interval lies strictly on one side of zero."""
        return (self.low > 0.0) or (self.high < 0.0)


def bootstrap_median_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: Optional[np.random.Generator | int] = None,
) -> BootstrapCI:
    """Percentile bootstrap CI for the median of ``values``."""
    data = np.asarray(list(values), dtype=float)
    if data.ndim != 1 or data.size < 2:
        raise ValueError("need a 1-d sample of size >= 2")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 100:
        raise ValueError(f"n_resamples must be >= 100, got {n_resamples}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    idx = gen.integers(0, data.size, size=(n_resamples, data.size))
    medians = np.median(data[idx], axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(medians, [alpha, 1.0 - alpha])
    return BootstrapCI(
        statistic=float(np.median(data)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )


@dataclass(frozen=True)
class SignTestResult:
    """Exact one-sided sign test for paired wins."""

    n_wins: int
    n_losses: int
    n_ties: int
    p_value: float  # P(wins >= observed | fair coin), ties dropped

    @property
    def n_effective(self) -> int:
        return self.n_wins + self.n_losses


def sign_test(
    values: Sequence[float],
    tie_width: float = 0.0,
) -> SignTestResult:
    """One-sided sign test that paired differences are negative (A wins).

    ``values`` are paired statistics where negative means "A better" (e.g.
    log10 ratios); pairs within ``tie_width`` of zero are ties and dropped,
    per the standard procedure.
    """
    data = np.asarray(list(values), dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("need a non-empty 1-d sample")
    if tie_width < 0.0:
        raise ValueError(f"tie_width must be >= 0, got {tie_width}")
    wins = int(np.sum(data < -tie_width))
    losses = int(np.sum(data > tie_width))
    ties = int(data.size - wins - losses)
    n = wins + losses
    if n == 0:
        return SignTestResult(n_wins=0, n_losses=0, n_ties=ties, p_value=1.0)
    # exact binomial upper tail at p = 1/2
    p = sum(math.comb(n, k) for k in range(wins, n + 1)) / 2.0**n
    return SignTestResult(n_wins=wins, n_losses=losses, n_ties=ties, p_value=float(p))
