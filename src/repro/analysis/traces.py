"""Function-value-vs-time series (Figs. 3.4 and 3.18).

The paper plots the best vertex's objective value against virtual wall time
on log-log axes.  :func:`trace_series` extracts a monotone "best so far"
series from an optimizer trace; :class:`TraceSeries` carries the arrays plus
the metadata the figure legends need (algorithm, gate constant, input id).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.state import OptimizationResult, Trace


@dataclass
class TraceSeries:
    """One curve of a value-vs-time figure."""

    label: str
    times: np.ndarray
    values: np.ndarray
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.times.shape != self.values.shape or self.times.ndim != 1:
            raise ValueError("times/values must be equal-length 1-d arrays")

    @property
    def final_value(self) -> float:
        return float(self.values[-1]) if self.values.size else float("nan")

    def value_at(self, t: float) -> float:
        """Best value achieved by virtual time ``t`` (step interpolation)."""
        if self.times.size == 0:
            return float("nan")
        idx = np.searchsorted(self.times, t, side="right") - 1
        if idx < 0:
            return float("nan")
        return float(self.values[idx])

    def decades_gained(self) -> float:
        """log10(first/last) — how many orders of magnitude were gained."""
        if self.values.size < 2 or self.values[-1] <= 0 or self.values[0] <= 0:
            return float("nan")
        return float(np.log10(self.values[0] / self.values[-1]))


def trace_series(
    result: OptimizationResult,
    label: Optional[str] = None,
    use_true: bool = True,
    monotone: bool = True,
) -> TraceSeries:
    """Build a value-vs-time curve from a finished optimization.

    ``use_true`` plots the underlying (noise-free) value of the best vertex,
    which is what makes premature convergence visible; ``monotone`` applies a
    running minimum, matching the "best found so far" convention.
    """
    trace = result.trace
    if trace is None or len(trace) == 0:
        raise ValueError("result has no trace (record_trace=False or zero steps)")
    times = trace.times()
    values = trace.best_true_values() if use_true else trace.best_estimates()
    if monotone:
        values = np.minimum.accumulate(values)
    return TraceSeries(
        label=label if label is not None else result.algorithm,
        times=times,
        values=values,
        meta={
            "algorithm": result.algorithm,
            "n_steps": result.n_steps,
            "reason": result.reason,
        },
    )


def time_per_step(trace: Trace) -> float:
    """Mean virtual time per simplex step (y-axis of Fig. 3.18c)."""
    return trace.time_per_step()
