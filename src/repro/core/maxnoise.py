"""Algorithm 2 — the max-noise (MN) algorithm.

MN inserts a *wait gate* (eq. 2.3) into the simplex loop: the move decision is
postponed until the noisiest vertex's variance is small compared to the
internal variance of the vertex function values,

    max_i sigma_i^2(t_i)  <=  k * mean_i ( g(theta_i) - gbar )^2 .

Early in the optimization the vertices are far apart in function value, so the
gate passes cheaply (poor parameter values are rejected after only short
sampling); late in the optimization the vertices cluster and the gate forces
long sampling so that moves are made on reliable estimates.  ``k`` only
controls the speed of convergence, not the outcome — a small value in 1..5 is
appropriate (§3.2).

Through the ask/tell seam (:mod:`repro.core.base`) every unsatisfied gate
check becomes one proposal round: with ``wait_target="all"`` the round holds
a proposal per active vertex (the whole simplex refines in parallel, the MW
deployment model); with ``"noisiest"`` it is a single-proposal round.  The
geometric ``wait_growth`` schedule is what keeps the number of rounds — and
hence ask/tell round-trips — logarithmic in the required sampling time.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.base import SimplexOptimizer
from repro.core.termination import TerminationCriterion
from repro.noise.stochastic import SamplingPool, StochasticFunction


class MaxNoise(SimplexOptimizer):
    """MN: classic simplex decisions behind the eq. 2.3 sampling gate.

    Parameters
    ----------
    k:
        Gate constant of eq. 2.3 (paper sweeps 2..5 in Table 3.1).
    wait_dt:
        Initial wait quantum; each unsatisfied check grows it geometrically by
        ``wait_growth`` so the gate resolves in logarithmically many rounds.
    wait_target:
        ``"all"`` (default): while waiting, every active vertex keeps
        sampling (the MW deployment model).  ``"noisiest"``: only the single
        noisiest vertex receives additional sampling — an ablation variant
        (see DESIGN.md §5) that spends less total CPU for the same wall time.

    .. note::
       On a (near-)flat surface with ``k < 1`` the eq. 2.3 gate can be
       unsatisfiable (noise variance and internal variance shrink at the
       same 1/t rate), so the termination criterion should always include a
       walltime bound — as the paper's does (§2.4.1) and
       :func:`~repro.core.termination.default_termination` provides.
    """

    name = "MN"

    def __init__(
        self,
        func: StochasticFunction,
        initial_vertices,
        *,
        k: float = 2.0,
        wait_dt: float = 1.0,
        wait_growth: float = 1.6,
        wait_target: str = "all",
        termination: Optional[TerminationCriterion] = None,
        pool: Optional[SamplingPool] = None,
        **kwargs,
    ) -> None:
        if not (k > 0.0):
            raise ValueError(f"k must be > 0, got {k!r}")
        if not (wait_dt > 0.0):
            raise ValueError(f"wait_dt must be > 0, got {wait_dt!r}")
        if not (wait_growth >= 1.0):
            raise ValueError(f"wait_growth must be >= 1, got {wait_growth!r}")
        if wait_target not in ("all", "noisiest"):
            raise ValueError(f"wait_target must be 'all' or 'noisiest', got {wait_target!r}")
        if wait_target == "noisiest":
            # the ablation variant only refines targeted vertices; idle
            # vertices keep their estimates (non-concurrent pool semantics)
            self.concurrent_sampling = False
        super().__init__(
            func, initial_vertices, termination=termination, pool=pool, **kwargs
        )
        self.k = float(k)
        self.wait_dt = float(wait_dt)
        self.wait_growth = float(wait_growth)
        self.wait_target = wait_target

    # -- the eq. 2.3 gate -------------------------------------------------------

    def _gate_satisfied(self) -> bool:
        """True when the noisiest vertex variance is within k x internal variance."""
        max_var = float(self.simplex.variances().max())
        internal = self.simplex.internal_variance()
        return max_var <= self.k * internal

    def _wait_for_gate(self) -> None:
        """Sample until the gate opens (or a termination criterion fires)."""
        dt = self.wait_dt
        while not self._gate_satisfied():
            self._check_interrupt()
            if self.wait_target == "noisiest":
                noisiest = max(self.simplex.vertices, key=lambda ev: ev.variance)
                self._wait(dt, targets=[noisiest])
            else:
                self._wait(dt)
            self._step_resamples += 1
            dt *= self.wait_growth

    def _decide_step(self) -> str:
        self._wait_for_gate()
        return self._classic_step()


#: Alias used in tables and figures.
MN = MaxNoise
