"""Confidence-interval comparisons and the seven PC condition sites (§2.3).

The point-to-point comparison algorithm replaces each plain ordering test
``g(a) < g(b)`` with the strict requirement that the two k-sigma confidence
intervals do not intersect:

    decide "a below b"     when  g(a) + k sigma_a <  g(b) - k sigma_b
    decide "a not below b" when  g(a) - k sigma_a >= g(b) + k sigma_b
    otherwise undecided -> resample and retry.

The seven sites where Algorithm 3 applies this test:

    c1  ref  vs smax   (enter the reflection-accept branch)
    c2  ref  vs min    (accept reflection without trying expansion)
    c3  exp  vs ref    (accept expansion)
    c4  exp  vs ref    (reject expansion, accept reflection)
    c5  ref  vs smax   (enter the contraction branch)
    c6  con  vs max    (accept contraction)
    c7  con  vs max    (reject contraction, collapse)

A :class:`ConditionSet` selects which sites use the error bars; sites outside
the set compare plain means (always decidable).  The paper ablates these
subsets extensively (Figs. 3.8-3.17) and concludes that single-site variants
(especially c1) outperform the strict all-sites implementation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.noise.evaluation import VertexEvaluation

ALL_CONDITIONS: FrozenSet[int] = frozenset(range(1, 8))


class Decision(enum.Enum):
    """Outcome of a (possibly confidence-gated) comparison."""

    BELOW = "below"          # a is confidently below b
    NOT_BELOW = "not_below"  # a is confidently not below b
    UNDECIDED = "undecided"  # intervals overlap; more sampling needed


def compare(
    a: VertexEvaluation,
    b: VertexEvaluation,
    k: float = 1.0,
    use_error_bars: bool = True,
) -> Decision:
    """Compare two evaluations, optionally with k-sigma interval separation.

    Without error bars this is the plain mean comparison and never returns
    :data:`Decision.UNDECIDED`.
    """
    ga, gb = a.estimate, b.estimate
    if not (math.isfinite(ga) and math.isfinite(gb)):
        raise ValueError("cannot compare unsampled evaluations")
    if not use_error_bars:
        return Decision.BELOW if ga < gb else Decision.NOT_BELOW
    if k < 0.0:
        raise ValueError(f"k must be >= 0, got {k!r}")
    ea, eb = k * a.sem, k * b.sem
    if ga + ea < gb - eb:
        return Decision.BELOW
    if ga - ea >= gb + eb:
        return Decision.NOT_BELOW
    return Decision.UNDECIDED


class ConditionSet:
    """Which of the seven PC comparison sites use the error bars.

    ``ConditionSet.all()`` is the strict c1-7 implementation; ``.only(1)`` is
    the paper's best-performing single-site variant; ``.of(1, 3, 6)`` is the
    c136 combination of Figs. 3.16-3.17; ``.none()`` degenerates PC into the
    plain deterministic comparisons.
    """

    __slots__ = ("sites",)

    def __init__(self, sites: Iterable[int]) -> None:
        sites = frozenset(int(s) for s in sites)
        bad = sites - ALL_CONDITIONS
        if bad:
            raise ValueError(f"invalid condition sites {sorted(bad)}; valid: 1..7")
        self.sites = sites

    # -- constructors -------------------------------------------------------

    @classmethod
    def all(cls) -> "ConditionSet":
        return cls(ALL_CONDITIONS)

    @classmethod
    def none(cls) -> "ConditionSet":
        return cls(frozenset())

    @classmethod
    def only(cls, site: int) -> "ConditionSet":
        return cls({site})

    @classmethod
    def of(cls, *sites: int) -> "ConditionSet":
        return cls(sites)

    # -- queries ----------------------------------------------------------

    def uses(self, site: int) -> bool:
        if site not in ALL_CONDITIONS:
            raise ValueError(f"invalid condition site {site}; valid: 1..7")
        return site in self.sites

    @property
    def label(self) -> str:
        """Compact name used in figures: ``c1``, ``c136``, ``c1-7``, ``det``."""
        if self.sites == ALL_CONDITIONS:
            return "c1-7"
        if not self.sites:
            return "det"
        return "c" + "".join(str(s) for s in sorted(self.sites))

    def __eq__(self, other) -> bool:
        return isinstance(other, ConditionSet) and self.sites == other.sites

    def __hash__(self) -> int:
        return hash(self.sites)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConditionSet({self.label})"


@dataclass
class ComparisonStats:
    """Counters for how the gated comparisons resolved (per optimization)."""

    decided_immediately: int = 0
    resample_rounds: int = 0
    forced: int = 0  # undecidable within budget; fell back to plain comparison

    def record(self, rounds: int, was_forced: bool) -> None:
        if rounds == 0:
            self.decided_immediately += 1
        else:
            self.resample_rounds += rounds
        if was_forced:
            self.forced += 1
