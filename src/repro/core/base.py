"""Shared machinery for the simplex-family optimizers.

:class:`SimplexOptimizer` owns the evaluation pool, the simplex, termination,
tracing and the vertex-replacement plumbing; each algorithm (DET, MN, PC,
PC+MN, Anderson) only implements :meth:`_decide_step` plus its own sampling
gates.  The optimizers never see the underlying deterministic surface — all
decisions go through noisy :class:`~repro.noise.evaluation.VertexEvaluation`
estimates, exactly as the paper's master only sees what workers report.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core import simplex as geom
from repro.core.comparisons import ComparisonStats
from repro.core.simplex import Simplex
from repro.core.state import OptimizationResult, StepRecord, Trace
from repro.core.termination import TerminationCriterion, default_termination
from repro.noise.evaluation import VertexEvaluation
from repro.noise.stochastic import SamplingPool, StochasticFunction


class _StopOptimization(Exception):
    """Raised inside wait/resample loops when a termination criterion fires."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class SimplexOptimizer:
    """Base class for the downhill-simplex family.

    Parameters
    ----------
    func:
        The :class:`~repro.noise.stochastic.StochasticFunction` to minimize.
    initial_vertices:
        ``(d+1, d)`` array of starting vertex coordinates.  The paper keeps
        this a *user input*: "the total cost of the optimization can depend
        dramatically on the initial state of the simplex, so it is not
        advisable to automate this step".
    alpha, beta, gamma:
        Reflection / contraction / expansion coefficients (defaults 1, 0.5, 2
        — "for optimal performance of simplex", §2.1).
    warmup:
        Sampling time given to each newly activated vertex.
    termination:
        A :class:`~repro.core.termination.TerminationCriterion`; defaults to
        tolerance + walltime + max-steps.
    pool:
        Evaluation pool; a fresh :class:`SamplingPool` is built if omitted.
        Anything with the same interface works (e.g. the MW-backed pool).
    record_trace:
        Keep per-step records for the analysis layer.
    """

    name = "base"
    #: whether idle vertices keep sampling while time passes (MW model); the
    #: classical DET baseline overrides this to False.
    concurrent_sampling = True

    def __init__(
        self,
        func: StochasticFunction,
        initial_vertices,
        *,
        alpha: float = 1.0,
        beta: float = 0.5,
        gamma: float = 2.0,
        warmup: float = 1.0,
        termination: Optional[TerminationCriterion] = None,
        pool: Optional[SamplingPool] = None,
        record_trace: bool = True,
    ) -> None:
        if not (alpha > 0.0):
            raise ValueError(f"alpha must be > 0, got {alpha!r}")
        if not (0.0 < beta < 1.0):
            raise ValueError(f"beta must be in (0, 1), got {beta!r}")
        if not (gamma > 1.0):
            raise ValueError(f"gamma must be > 1, got {gamma!r}")
        self.func = func
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        if pool is None:
            pool = SamplingPool(func, warmup=warmup, concurrent=self.concurrent_sampling)
        self.pool = pool
        self._t0 = pool.now
        vertices = np.asarray(initial_vertices, dtype=float)
        if vertices.ndim != 2:
            raise ValueError(
                f"initial_vertices must be (d+1, d), got shape {vertices.shape}"
            )
        evals = [
            self.pool.activate(v, label=f"v{i}") for i, v in enumerate(vertices)
        ]
        self.simplex = Simplex(evals)
        self.termination = termination if termination is not None else default_termination()
        self.n_steps = 0
        self.trace: Optional[Trace] = Trace() if record_trace else None
        self.stats = ComparisonStats()
        self._step_wait = 0.0
        self._step_resamples = 0
        self._stop_reason: Optional[str] = None

    # -- time -----------------------------------------------------------------

    def elapsed_walltime(self) -> float:
        """Virtual seconds since this optimizer was constructed."""
        return self.pool.now - self._t0

    # -- run loop ---------------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Iterate simplex steps until a termination criterion fires."""
        reason = self.termination.check(self)
        while reason is None:
            self._step_wait = 0.0
            self._step_resamples = 0
            t_before = self.pool.now
            try:
                operation = self._decide_step()
            except _StopOptimization as stop:
                reason = stop.reason
                break
            self.n_steps += 1
            if self.trace is not None:
                best = self.simplex.best()
                self.trace.append(
                    StepRecord(
                        step=self.n_steps,
                        time=self.pool.now,
                        operation=operation,
                        best_estimate=best.estimate,
                        best_true=self.func.true_value(best.theta),
                        diameter=self.simplex.diameter(),
                        contraction_level=self.simplex.contraction_level,
                        wait_time=self._step_wait,
                        resample_rounds=self._step_resamples,
                    )
                )
            del t_before
            reason = self.termination.check(self)
        return self._result(reason)

    def _result(self, reason: str) -> OptimizationResult:
        best = self.simplex.best()
        return OptimizationResult(
            algorithm=self.name,
            best_theta=np.array(best.theta, copy=True),
            best_estimate=best.estimate,
            best_true=self.func.true_value(best.theta),
            n_steps=self.n_steps,
            reason=reason,
            walltime=self.elapsed_walltime(),
            trace=self.trace,
            n_underlying_calls=self.func.n_underlying_calls,
            total_sampling_time=self.func.total_sampling_time,
            forced_decisions=self.stats.forced,
        )

    # -- the algorithm-specific part ---------------------------------------------

    def _decide_step(self) -> str:
        """Perform one simplex iteration; return the operation name."""
        raise NotImplementedError

    # -- shared plumbing -----------------------------------------------------------

    def _check_interrupt(self) -> None:
        """Abort mid-step if a termination criterion fired during sampling."""
        reason = self.termination.check(self)
        if reason is not None:
            raise _StopOptimization(reason)

    def _wait(self, dt: float, targets: Sequence[VertexEvaluation] = ()) -> None:
        """Spend ``dt`` virtual seconds sampling; track per-step wait time."""
        self.pool.advance(dt, targets=targets or None)
        self._step_wait += dt

    def _activate(self, theta, label: str) -> VertexEvaluation:
        return self.pool.activate(theta, label=label)

    def _discard(self, *evs: VertexEvaluation) -> None:
        for ev in evs:
            if ev in self.pool:
                self.pool.deactivate(ev)

    def _trial_points(self, mx: VertexEvaluation):
        """Reflection point and the centroid it was computed from."""
        cent = self.simplex.centroid_excluding(mx)
        ref = geom.reflect_point(cent, mx.theta, self.alpha)
        return cent, ref

    def _accept(self, mx: VertexEvaluation, new: VertexEvaluation, operation: str) -> None:
        """Replace the worst vertex with an accepted trial vertex."""
        self.simplex.replace(mx, new, operation)
        self._discard(mx)

    def _do_collapse(self, mn: VertexEvaluation) -> None:
        """Collapse every non-best vertex halfway toward the best (§2.1)."""
        replacements = []
        old = [ev for ev in self.simplex.vertices if ev is not mn]
        for i, ev in enumerate(old):
            new_theta = geom.collapse_point(ev.theta, mn.theta)
            replacements.append(self._activate(new_theta, label=f"clp{i}"))
        self.simplex.collapse(replacements)
        self._discard(*old)

    # -- shared step skeleton (Algorithms 1 & 2 differ only by the gate) ----------

    def _classic_step(self) -> str:
        """One iteration of Algorithm 1's decision tree on plain estimates."""
        mn, smax, mx = self.simplex.order()
        cent, ref_theta = self._trial_points(mx)
        ref = self._activate(ref_theta, label="ref")
        if ref.estimate < mn.estimate:
            exp_theta = geom.expand_point(ref.theta, cent, self.gamma)
            exp = self._activate(exp_theta, label="exp")
            if exp.estimate < ref.estimate:
                self._accept(mx, exp, "expand")
                self._discard(ref)
                return "expand"
            self._accept(mx, ref, "reflect")
            self._discard(exp)
            return "reflect"
        if ref.estimate < mx.estimate:
            self._accept(mx, ref, "reflect")
            return "reflect"
        con_theta = geom.contract_point(mx.theta, cent, self.beta)
        con = self._activate(con_theta, label="con")
        if con.estimate < mx.estimate:
            self._accept(mx, con, "contract")
            self._discard(ref)
            return "contract"
        self._discard(ref, con)
        self._do_collapse(mn)
        return "collapse"
