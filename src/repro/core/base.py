"""Shared machinery for the simplex-family optimizers.

:class:`SimplexOptimizer` owns the evaluation pool, the simplex, termination,
tracing and the vertex-replacement plumbing; each algorithm (DET, MN, PC,
PC+MN, Anderson) only implements :meth:`_decide_step` plus its own sampling
gates.  The optimizers never see the underlying deterministic surface — all
decisions go through noisy :class:`~repro.noise.evaluation.VertexEvaluation`
estimates, exactly as the paper's master only sees what workers report.

Ask/tell seam
-------------
Every optimizer also exposes the evaluation traffic itself: :meth:`ask`
returns pending :class:`Proposal` objects (stable ids, theta, requested
sampling time) and :meth:`tell` feeds the deterministic surface values back
— in any order.  Under the hood the sequential step loop
(:meth:`_run_inline`, unchanged algorithm code) runs on a private engine
thread whose :class:`~repro.noise.stochastic.SamplingPool` sampling requests
are published as proposal *rounds*; the noise model is applied master-side
at merge time, in pool order, once a round completes
(:meth:`~repro.noise.stochastic.StochasticFunction.merge_external`), so the
trajectory is bitwise identical to the legacy blocking path no matter how
tells interleave.  :meth:`run` is re-expressed as ``ask → evaluate → tell``
on top of this seam; the asynchronous campaign driver
(:mod:`repro.core.async_driver`) drives many optimizers' seams through one
MW worker pool with no per-iteration barrier.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import simplex as geom
from repro.core.comparisons import ComparisonStats
from repro.core.simplex import Simplex
from repro.core.state import OptimizationResult, StepRecord, Trace
from repro.core.termination import TerminationCriterion, default_termination
from repro.noise.evaluation import VertexEvaluation
from repro.noise.stochastic import SamplingPool, StochasticFunction


class _StopOptimization(Exception):
    """Raised inside wait/resample loops when a termination criterion fires."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


#: :meth:`SimplexOptimizer.tell` outcomes.
TELL_APPLIED = "applied"      # a required round slot accepted the value
TELL_EXTRA = "extra"          # a speculative refinement, merged at the next round boundary
TELL_STALE = "stale"          # the proposal's vertex (or the whole run) is gone
TELL_DUPLICATE = "duplicate"  # this id was already told; value ignored


@dataclass(frozen=True)
class Proposal:
    """One pending evaluation request from :meth:`SimplexOptimizer.ask`.

    The holder should compute the *deterministic* surface value ``f(theta)``
    — averaged over ``dt`` virtual seconds of simulation in a real
    deployment — and feed it back via ``tell(id, value)``.  Ids are stable
    (minted once, in deterministic order) and never reused within a run.
    """

    id: str           #: stable identifier, unique within one optimizer run
    theta: np.ndarray  #: point to evaluate (a private copy)
    label: str        #: vertex label ("ref", "v0", ...; "refine:<label>" for speculative work)
    dt: float         #: virtual seconds of sampling requested


class _RoundSlot:
    """Mutable state of one outstanding proposal (engine-internal)."""

    __slots__ = ("id", "ev", "dt", "value", "told")

    def __init__(self, proposal_id: str, ev: VertexEvaluation, dt: float) -> None:
        self.id = proposal_id
        self.ev = ev
        self.dt = float(dt)
        self.value: Optional[float] = None
        self.told = False


class _AskTellEngine:
    """Control inversion for :class:`SimplexOptimizer`'s sequential step loop.

    The optimizer's unchanged :meth:`SimplexOptimizer._run_inline` loop runs
    on a daemon thread; the pool's ``sample_hook`` publishes each sampling
    request as a *round* of :class:`Proposal` objects and blocks until every
    one has been told.  Determinism contract: values are merged (and noise
    drawn) in pool order only after the whole round is told, so the
    trajectory does not depend on tell order — and with no speculative
    refinements it is bitwise identical to the legacy blocking run.

    Speculative refinements (minted by ``ask(n)`` when the round alone
    cannot fill ``n`` slots) add extra sampling blocks to still-active
    vertices; they are merged at the next round boundary on the engine
    thread and never advance the virtual clock — idle MW workers keep
    sampling, exactly the paper's deployment model.  Tells for vertices
    that were discarded in the meantime are rejected as stale and counted.
    """

    _RUNNING = "running"  # engine thread is computing between rounds
    _BLOCKED = "blocked"  # engine thread waits for the current round's tells
    _DONE = "done"        # result (or error) is available

    def __init__(self, optimizer: "SimplexOptimizer") -> None:
        self._opt = optimizer
        self._lock = threading.Lock()
        self._step_wake = threading.Condition(self._lock)
        self._caller_wake = threading.Condition(self._lock)
        self._state = self._RUNNING
        self._round: Dict[str, _RoundSlot] = {}
        self._extras: Dict[str, _RoundSlot] = {}
        self._told_extras: List[_RoundSlot] = []
        self._fresh: List[Proposal] = []
        self._resolved: set = set()
        self._counter = 0
        self._result: Optional[OptimizationResult] = None
        self._error: Optional[BaseException] = None
        self._abort = False
        self._abort_reason = "closed"
        self.n_stale_tells = 0
        self.n_duplicate_tells = 0
        pool = optimizer.pool
        self._hooked = hasattr(pool, "sample_hook")
        if self._hooked:
            pool.sample_hook = self._sample_round
        self._thread = threading.Thread(
            target=self._main, name=f"asktell-{optimizer.name}", daemon=True
        )
        self._thread.start()

    # -- engine thread -----------------------------------------------------

    def _main(self) -> None:
        try:
            result = self._opt._run_inline()
            with self._lock:
                self._result = result
        except BaseException as exc:  # noqa: BLE001 - surfaced to callers
            with self._lock:
                self._error = exc
        finally:
            with self._lock:
                if self._hooked:
                    self._opt.pool.sample_hook = None
                self._state = self._DONE
                self._caller_wake.notify_all()

    def _sample_round(self, evs: List[VertexEvaluation], dt: float) -> List[float]:
        """Pool hook: publish one proposal round, block until fully told."""
        with self._lock:
            self._merge_told_extras_locked()
            if self._abort:
                raise _StopOptimization(self._abort_reason)
            slots = []
            for ev in evs:
                proposal_id = self._mint_locked()
                slot = _RoundSlot(proposal_id, ev, dt)
                self._round[proposal_id] = slot
                self._fresh.append(
                    Proposal(
                        id=proposal_id,
                        theta=np.array(ev.theta, copy=True),
                        label=ev.label,
                        dt=float(dt),
                    )
                )
                slots.append(slot)
            self._state = self._BLOCKED
            self._caller_wake.notify_all()
            while not all(s.told for s in slots):
                if self._abort:
                    self._state = self._RUNNING
                    raise _StopOptimization(self._abort_reason)
                self._step_wake.wait()
            self._state = self._RUNNING
            for slot in slots:
                del self._round[slot.id]
            self._merge_told_extras_locked()
            return [s.value for s in slots]

    def _merge_told_extras_locked(self) -> None:
        """Fold accepted refinement values in (engine thread, lock held).

        Applied only at round boundaries so refinement merges never race
        the step computation; within a batch they apply in mint order so a
        fixed set of arrivals yields one deterministic stream.
        """
        if not self._told_extras:
            return
        batch = sorted(self._told_extras, key=lambda s: s.id)
        self._told_extras.clear()
        for slot in batch:
            if slot.ev in self._opt.pool:
                self._opt.func.merge_external(slot.ev, slot.dt, slot.value)
            else:
                self.n_stale_tells += 1

    def _mint_locked(self) -> str:
        self._counter += 1
        return f"p{self._counter:06d}"

    def _raise_error_locked(self) -> None:
        if self._error is not None:
            raise self._error

    # -- caller side -------------------------------------------------------

    def ask(self, max_proposals: Optional[int] = None) -> List[Proposal]:
        """Pending proposals; blocks only while the engine computes a step."""
        with self._lock:
            while True:
                self._raise_error_locked()
                if self._fresh or self._state == self._DONE:
                    break
                if self._state == self._BLOCKED and any(
                    not slot.told for slot in self._round.values()
                ):
                    break  # the caller holds the outstanding round; nothing new yet
                self._caller_wake.wait()
            if max_proposals is None:
                out, self._fresh = self._fresh, []
            else:
                out = self._fresh[:max_proposals]
                del self._fresh[: len(out)]
                if self._state == self._BLOCKED and len(out) < max_proposals:
                    out.extend(self._mint_refinements_locked(max_proposals - len(out)))
            return out

    def _mint_refinements_locked(self, n: int) -> List[Proposal]:
        """Speculative refinement proposals: keep idle workers sampling.

        At most one outstanding refinement per active vertex, most
        uncertain (largest standard error) vertices first.  Non-concurrent
        pools (the DET baseline) read each point exactly once by
        definition, so no refinements are minted for them.
        """
        pool = self._opt.pool
        if not getattr(pool, "concurrent", True):
            return []
        busy = {id(slot.ev) for slot in self._extras.values()}
        candidates = [ev for ev in pool.active if id(ev) not in busy]
        candidates.sort(key=lambda ev: -ev.sem)
        out = []
        for ev in candidates[:n]:
            proposal_id = self._mint_locked()
            slot = _RoundSlot(proposal_id, ev, pool.warmup)
            self._extras[proposal_id] = slot
            out.append(
                Proposal(
                    id=proposal_id,
                    theta=np.array(ev.theta, copy=True),
                    label=f"refine:{ev.label}",
                    dt=float(pool.warmup),
                )
            )
        return out

    def tell(self, proposal_id: str, value: float) -> str:
        """Resolve one proposal; returns a ``TELL_*`` status string."""
        with self._lock:
            status = self._tell_locked(proposal_id, value)
            if status is None:
                raise KeyError(f"unknown proposal id {proposal_id!r}")
            return status

    def tell_many(self, items) -> List[str]:
        """Resolve a batch of ``(proposal_id, value)`` pairs under one lock.

        The batched-evaluation fan-in: a frame of ``q`` results costs one
        lock acquisition and one engine wake-up instead of ``q`` of each,
        which is what keeps the master's per-evaluation cost flat as
        ``--eval-batch`` grows.  Statuses come back in item order with the
        same semantics as :meth:`tell`, except unknown ids map to
        :data:`TELL_STALE` instead of raising — a batch fan-in cannot
        abandon the rest of the frame over one retired id (engine-side
        stale counters are untouched for those, matching the driver's
        ``KeyError`` handling for single tells).
        """
        statuses = []
        with self._lock:
            for proposal_id, value in items:
                status = self._tell_locked(proposal_id, value)
                statuses.append(TELL_STALE if status is None else status)
        return statuses

    def _tell_locked(self, proposal_id: str, value: float) -> Optional[str]:
        """One tell, lock held; ``None`` flags an unknown proposal id."""
        if proposal_id in self._resolved:
            self.n_duplicate_tells += 1
            return TELL_DUPLICATE
        slot = self._round.get(proposal_id)
        extra = self._extras.get(proposal_id) if slot is None else None
        if slot is None and extra is None:
            return None
        self._resolved.add(proposal_id)
        if self._state == self._DONE or self._abort:
            self.n_stale_tells += 1
            return TELL_STALE
        if slot is not None:
            slot.value = float(value)
            slot.told = True
            self._step_wake.notify_all()
            return TELL_APPLIED
        del self._extras[proposal_id]
        extra.value = float(value)
        extra.told = True
        self._told_extras.append(extra)
        return TELL_EXTRA

    @property
    def finished(self) -> bool:
        """True once the step loop has produced a result (or an error)."""
        with self._lock:
            return self._state == self._DONE

    def result(self) -> OptimizationResult:
        """Block until the run completes; re-raises engine-side errors."""
        with self._lock:
            while self._state != self._DONE:
                self._caller_wake.wait()
            self._raise_error_locked()
            return self._result

    def close(self, reason: str = "closed") -> None:
        """Abort the step loop at its next sampling request; idempotent.

        The engine finishes with a normal :class:`OptimizationResult`
        whose ``reason`` is the given string (the same path a mid-step
        termination takes); unresolved proposals become stale.
        """
        with self._lock:
            if self._state == self._DONE:
                return
            self._abort = True
            self._abort_reason = reason
            self._step_wake.notify_all()
        self._thread.join(timeout=10.0)


class SimplexOptimizer:
    """Base class for the downhill-simplex family.

    Parameters
    ----------
    func:
        The :class:`~repro.noise.stochastic.StochasticFunction` to minimize.
    initial_vertices:
        ``(d+1, d)`` array of starting vertex coordinates.  The paper keeps
        this a *user input*: "the total cost of the optimization can depend
        dramatically on the initial state of the simplex, so it is not
        advisable to automate this step".
    alpha, beta, gamma:
        Reflection / contraction / expansion coefficients (defaults 1, 0.5, 2
        — "for optimal performance of simplex", §2.1).
    warmup:
        Sampling time given to each newly activated vertex.
    termination:
        A :class:`~repro.core.termination.TerminationCriterion`; defaults to
        tolerance + walltime + max-steps.
    pool:
        Evaluation pool; a fresh :class:`SamplingPool` is built if omitted.
        Anything with the same interface works (e.g. the MW-backed pool).
    record_trace:
        Keep per-step records for the analysis layer.
    """

    name = "base"
    #: whether idle vertices keep sampling while time passes (MW model); the
    #: classical DET baseline overrides this to False.
    concurrent_sampling = True

    def __init__(
        self,
        func: StochasticFunction,
        initial_vertices,
        *,
        alpha: float = 1.0,
        beta: float = 0.5,
        gamma: float = 2.0,
        warmup: float = 1.0,
        termination: Optional[TerminationCriterion] = None,
        pool: Optional[SamplingPool] = None,
        record_trace: bool = True,
    ) -> None:
        if not (alpha > 0.0):
            raise ValueError(f"alpha must be > 0, got {alpha!r}")
        if not (0.0 < beta < 1.0):
            raise ValueError(f"beta must be in (0, 1), got {beta!r}")
        if not (gamma > 1.0):
            raise ValueError(f"gamma must be > 1, got {gamma!r}")
        self.func = func
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        if pool is None:
            pool = SamplingPool(func, warmup=warmup, concurrent=self.concurrent_sampling)
        self.pool = pool
        self._t0 = pool.now
        vertices = np.asarray(initial_vertices, dtype=float)
        if vertices.ndim != 2:
            raise ValueError(
                f"initial_vertices must be (d+1, d), got shape {vertices.shape}"
            )
        evals = [
            self.pool.activate(v, label=f"v{i}") for i, v in enumerate(vertices)
        ]
        self.simplex = Simplex(evals)
        self.termination = termination if termination is not None else default_termination()
        self.n_steps = 0
        self.trace: Optional[Trace] = Trace() if record_trace else None
        self.stats = ComparisonStats()
        self._step_wait = 0.0
        self._step_resamples = 0
        self._stop_reason: Optional[str] = None
        self._asktell: Optional[_AskTellEngine] = None

    # -- time -----------------------------------------------------------------

    def elapsed_walltime(self) -> float:
        """Virtual seconds since this optimizer was constructed."""
        return self.pool.now - self._t0

    # -- run loop ---------------------------------------------------------------

    def run(self) -> OptimizationResult:
        """Iterate simplex steps until a termination criterion fires.

        Re-expressed over the ask/tell seam: the step loop runs on the
        engine thread while this caller plays the worker pool, computing
        ``f(theta)`` for every proposal and telling the value straight
        back.  The parity suite (``tests/test_core_asktell.py``) asserts
        this is trajectory-identical to the sequential reference loop
        :meth:`_run_inline` for every algorithm.
        """
        engine = self._engine()
        try:
            while True:
                proposals = engine.ask()
                if not proposals:
                    break
                for proposal in proposals:
                    engine.tell(
                        proposal.id, float(self.func.f(np.asarray(proposal.theta)))
                    )
        except BaseException:
            engine.close(reason="error")
            raise
        return engine.result()

    def _run_inline(self) -> OptimizationResult:
        """The sequential reference loop (runs on the ask/tell engine thread).

        This is the pre-seam ``run()`` body, byte for byte: the parity
        suite drives it directly (no engine, pool sampling stays local) as
        the ground truth the ask/tell re-expression must reproduce.
        """
        reason = self.termination.check(self)
        while reason is None:
            self._step_wait = 0.0
            self._step_resamples = 0
            t_before = self.pool.now
            try:
                operation = self._decide_step()
            except _StopOptimization as stop:
                reason = stop.reason
                break
            self.n_steps += 1
            if self.trace is not None:
                best = self.simplex.best()
                self.trace.append(
                    StepRecord(
                        step=self.n_steps,
                        time=self.pool.now,
                        operation=operation,
                        best_estimate=best.estimate,
                        best_true=self.func.true_value(best.theta),
                        diameter=self.simplex.diameter(),
                        contraction_level=self.simplex.contraction_level,
                        wait_time=self._step_wait,
                        resample_rounds=self._step_resamples,
                    )
                )
            del t_before
            reason = self.termination.check(self)
        return self._result(reason)

    def _result(self, reason: str) -> OptimizationResult:
        best = self.simplex.best()
        return OptimizationResult(
            algorithm=self.name,
            best_theta=np.array(best.theta, copy=True),
            best_estimate=best.estimate,
            best_true=self.func.true_value(best.theta),
            n_steps=self.n_steps,
            reason=reason,
            walltime=self.elapsed_walltime(),
            trace=self.trace,
            n_underlying_calls=self.func.n_underlying_calls,
            total_sampling_time=self.func.total_sampling_time,
            forced_decisions=self.stats.forced,
        )

    # -- ask/tell interface ------------------------------------------------------

    def _engine(self) -> _AskTellEngine:
        """The lazily started ask/tell engine for this run."""
        if self._asktell is None:
            self._asktell = _AskTellEngine(self)
        return self._asktell

    def ask(self, max_proposals: Optional[int] = None) -> List[Proposal]:
        """Pending evaluation :class:`Proposal` objects (stable, unique ids).

        With ``max_proposals=None`` returns exactly the proposals the step
        loop is blocked on (one *round*; empty once the run has finished or
        while the caller already holds the round).  With an integer, also
        tops the batch up with speculative refinement proposals on active
        vertices — how an asynchronous driver keeps ``max_inflight``
        evaluations in flight when a round alone is too small.  Note the
        initial simplex is sampled synchronously at construction; ask/tell
        covers everything from the first step on.
        """
        return self._engine().ask(max_proposals)

    def tell(self, proposal_id: str, value: float) -> str:
        """Feed back the deterministic surface value for one proposal.

        Tells may arrive in any order; the noise model is applied at merge
        time in pool order, so the trajectory is independent of arrival
        order.  Returns one of :data:`TELL_APPLIED`, :data:`TELL_EXTRA`,
        :data:`TELL_STALE` (vertex retired / run over — value dropped,
        counted in :attr:`n_stale_tells`), or :data:`TELL_DUPLICATE`
        (already told — rejected cleanly).  Unknown ids raise ``KeyError``.
        """
        return self._engine().tell(proposal_id, value)

    def tell_many(self, items) -> List[str]:
        """Feed back a frame of ``(proposal_id, value)`` pairs at once.

        One lock acquisition and one engine wake-up for the whole batch —
        the fan-in half of ``--eval-batch``.  Statuses come back in item
        order; unknown ids map to :data:`TELL_STALE` instead of raising.
        """
        return self._engine().tell_many(items)

    @property
    def finished(self) -> bool:
        """True once the ask/tell run has produced a result."""
        return self._asktell is not None and self._asktell.finished

    def result(self) -> OptimizationResult:
        """The finished run's result (blocks on in-flight step computation)."""
        return self._engine().result()

    def close(self, reason: str = "closed") -> None:
        """Stop an ask/tell run early; outstanding proposals become stale."""
        if self._asktell is not None:
            self._asktell.close(reason=reason)

    @property
    def n_stale_tells(self) -> int:
        """Tells rejected because their vertex (or the run) was retired."""
        return 0 if self._asktell is None else self._asktell.n_stale_tells

    @property
    def n_duplicate_tells(self) -> int:
        """Tells rejected because the proposal id was already resolved."""
        return 0 if self._asktell is None else self._asktell.n_duplicate_tells

    # -- the algorithm-specific part ---------------------------------------------

    def _decide_step(self) -> str:
        """Perform one simplex iteration; return the operation name."""
        raise NotImplementedError

    # -- shared plumbing -----------------------------------------------------------

    def _check_interrupt(self) -> None:
        """Abort mid-step if a termination criterion fired during sampling."""
        reason = self.termination.check(self)
        if reason is not None:
            raise _StopOptimization(reason)

    def _wait(self, dt: float, targets: Sequence[VertexEvaluation] = ()) -> None:
        """Spend ``dt`` virtual seconds sampling; track per-step wait time."""
        self.pool.advance(dt, targets=targets or None)
        self._step_wait += dt

    def _activate(self, theta, label: str) -> VertexEvaluation:
        return self.pool.activate(theta, label=label)

    def _discard(self, *evs: VertexEvaluation) -> None:
        for ev in evs:
            if ev in self.pool:
                self.pool.deactivate(ev)

    def _trial_points(self, mx: VertexEvaluation):
        """Reflection point and the centroid it was computed from."""
        cent = self.simplex.centroid_excluding(mx)
        ref = geom.reflect_point(cent, mx.theta, self.alpha)
        return cent, ref

    def _accept(self, mx: VertexEvaluation, new: VertexEvaluation, operation: str) -> None:
        """Replace the worst vertex with an accepted trial vertex."""
        self.simplex.replace(mx, new, operation)
        self._discard(mx)

    def _do_collapse(self, mn: VertexEvaluation) -> None:
        """Collapse every non-best vertex halfway toward the best (§2.1)."""
        replacements = []
        old = [ev for ev in self.simplex.vertices if ev is not mn]
        for i, ev in enumerate(old):
            new_theta = geom.collapse_point(ev.theta, mn.theta)
            replacements.append(self._activate(new_theta, label=f"clp{i}"))
        self.simplex.collapse(replacements)
        self._discard(*old)

    # -- shared step skeleton (Algorithms 1 & 2 differ only by the gate) ----------

    def _classic_step(self) -> str:
        """One iteration of Algorithm 1's decision tree on plain estimates."""
        mn, smax, mx = self.simplex.order()
        cent, ref_theta = self._trial_points(mx)
        ref = self._activate(ref_theta, label="ref")
        if ref.estimate < mn.estimate:
            exp_theta = geom.expand_point(ref.theta, cent, self.gamma)
            exp = self._activate(exp_theta, label="exp")
            if exp.estimate < ref.estimate:
                self._accept(mx, exp, "expand")
                self._discard(ref)
                return "expand"
            self._accept(mx, ref, "reflect")
            self._discard(exp)
            return "reflect"
        if ref.estimate < mx.estimate:
            self._accept(mx, ref, "reflect")
            return "reflect"
        con_theta = geom.contract_point(mx.theta, cent, self.beta)
        con = self._activate(con_theta, label="con")
        if con.estimate < mx.estimate:
            self._accept(mx, con, "contract")
            self._discard(ref)
            return "contract"
        self._discard(ref, con)
        self._do_collapse(mn)
        return "collapse"
