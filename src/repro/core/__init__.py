"""The paper's contribution: stochastic variants of the downhill simplex.

Five optimizers share one skeleton (:mod:`repro.core.base`):

========  =========================================  ==========================
name      class                                      paper reference
========  =========================================  ==========================
DET       :class:`~repro.core.nelder_mead.NelderMead`   Algorithm 1 (baseline)
MN        :class:`~repro.core.maxnoise.MaxNoise`        Algorithm 2, eq. 2.3
PC        :class:`~repro.core.point_compare.PointComparison`  Algorithm 3
PC+MN     :class:`~repro.core.pc_maxnoise.PCMaxNoise`   Algorithm 4
Anderson  :class:`~repro.core.anderson.AndersonSimplex` eq. 2.4 comparator
========  =========================================  ==========================
"""

from repro.core.anderson import AndersonSimplex, AndersonStructureSearch
from repro.core.base import (
    TELL_APPLIED,
    TELL_DUPLICATE,
    TELL_EXTRA,
    TELL_STALE,
    Proposal,
    SimplexOptimizer,
)
from repro.core.checkpoint import resume, save_checkpoint, snapshot
from repro.core.comparisons import ComparisonStats, ConditionSet, Decision, compare
from repro.core.driver import ALGORITHMS, make_optimizer, optimize
from repro.core.maxnoise import MN, MaxNoise
from repro.core.nelder_mead import DET, NelderMead
from repro.core.pc_maxnoise import PCMN, PCMaxNoise
from repro.core.point_compare import PC, PointComparison
from repro.core.pso import NoisyPSO, pso_polish
from repro.core.simplex import (
    Simplex,
    collapse_point,
    contract_point,
    diameter,
    expand_point,
    reflect_point,
)
from repro.core.state import OptimizationResult, StepRecord, Trace
from repro.core.termination import (
    CompositeTermination,
    DiameterTermination,
    MaxStepsTermination,
    TerminationCriterion,
    ToleranceTermination,
    WalltimeTermination,
    default_termination,
)

__all__ = [
    "ALGORITHMS",
    "AndersonSimplex",
    "AndersonStructureSearch",
    "ComparisonStats",
    "CompositeTermination",
    "ConditionSet",
    "DET",
    "Decision",
    "DiameterTermination",
    "MN",
    "MaxNoise",
    "MaxStepsTermination",
    "NelderMead",
    "OptimizationResult",
    "PC",
    "NoisyPSO",
    "PCMN",
    "PCMaxNoise",
    "PointComparison",
    "Proposal",
    "Simplex",
    "SimplexOptimizer",
    "TELL_APPLIED",
    "TELL_DUPLICATE",
    "TELL_EXTRA",
    "TELL_STALE",
    "StepRecord",
    "TerminationCriterion",
    "ToleranceTermination",
    "Trace",
    "WalltimeTermination",
    "collapse_point",
    "compare",
    "contract_point",
    "default_termination",
    "diameter",
    "expand_point",
    "make_optimizer",
    "optimize",
    "pso_polish",
    "resume",
    "save_checkpoint",
    "snapshot",
    "reflect_point",
]
