"""Optimization traces and per-step records.

Every optimizer records one :class:`StepRecord` per simplex iteration; the
:class:`Trace` container turns those into the arrays the paper plots
(function value vs. time for Fig. 3.4, vs. steps for Fig. 3.18b, time/step for
Fig. 3.18c).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, List, Optional

import numpy as np


def plain_json(value: Any) -> Any:
    """Strip numpy types so a structure is plain-JSON serializable.

    Shared by result serialization here and by the campaign layer's
    canonical job encoding (:mod:`repro.campaign.spec`).
    """
    if isinstance(value, dict):
        return {str(k): plain_json(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [plain_json(v) for v in value]
    if isinstance(value, np.ndarray):
        return [plain_json(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value


_plain = plain_json


@dataclass(frozen=True)
class StepRecord:
    """Snapshot taken after one simplex iteration."""

    step: int                 # iteration index (1-based after the move)
    time: float               # virtual clock at the end of the step
    operation: str            # reflect / expand / contract / collapse
    best_estimate: float      # lowest (noisy) vertex estimate
    best_true: float          # f(theta_best) on the underlying surface (nan if unknown)
    diameter: float           # simplex diameter, eq. 2.2
    contraction_level: int    # l, §2.2
    wait_time: float = 0.0    # virtual time spent in wait/resample loops this step
    resample_rounds: int = 0  # gated comparisons that needed extra sampling

    def to_dict(self) -> dict:
        return _plain(asdict(self))

    @classmethod
    def from_dict(cls, data: dict) -> "StepRecord":
        return cls(**data)


class Trace:
    """Accumulates step records and exposes them as plot-ready arrays."""

    def __init__(self) -> None:
        self.records: List[StepRecord] = []

    def append(self, record: StepRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    # -- array views -------------------------------------------------------

    def times(self) -> np.ndarray:
        return np.array([r.time for r in self.records], dtype=float)

    def best_estimates(self) -> np.ndarray:
        return np.array([r.best_estimate for r in self.records], dtype=float)

    def best_true_values(self) -> np.ndarray:
        return np.array([r.best_true for r in self.records], dtype=float)

    def diameters(self) -> np.ndarray:
        return np.array([r.diameter for r in self.records], dtype=float)

    def operations(self) -> List[str]:
        return [r.operation for r in self.records]

    def time_per_step(self) -> float:
        """Mean virtual time per simplex step (Fig. 3.18c's y-axis)."""
        if not self.records:
            return float("nan")
        return self.records[-1].time / len(self.records)

    def operation_counts(self) -> dict:
        counts: dict = {}
        for r in self.records:
            counts[r.operation] = counts.get(r.operation, 0) + 1
        return counts

    # -- (de)serialization -------------------------------------------------

    def to_records(self) -> List[dict]:
        return [r.to_dict() for r in self.records]

    @classmethod
    def from_records(cls, records: List[dict]) -> "Trace":
        trace = cls()
        for rec in records:
            trace.append(StepRecord.from_dict(rec))
        return trace


@dataclass
class OptimizationResult:
    """What an optimizer run returns.

    ``best_true`` uses the underlying noise-free surface and exists for
    *measurement* (the paper's R and D metrics); a real application would not
    have it.
    """

    algorithm: str
    best_theta: np.ndarray
    best_estimate: float
    best_true: float
    n_steps: int
    reason: str
    walltime: float
    trace: Optional[Trace] = None
    n_underlying_calls: int = 0
    total_sampling_time: float = 0.0
    forced_decisions: int = 0
    extra: dict = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OptimizationResult {self.algorithm} best={self.best_estimate:.6g} "
            f"true={self.best_true:.6g} steps={self.n_steps} reason={self.reason!r}>"
        )

    # -- (de)serialization -------------------------------------------------

    def to_dict(self, include_trace: bool = False) -> dict:
        """Plain-JSON summary of the run (the campaign result-store format).

        The trace is omitted by default — it is by far the largest part of a
        result and the sweep-level aggregates never need it.
        """
        d = {
            "algorithm": self.algorithm,
            "best_theta": _plain(np.asarray(self.best_theta, dtype=float)),
            "best_estimate": float(self.best_estimate),
            "best_true": float(self.best_true),
            "n_steps": int(self.n_steps),
            "reason": str(self.reason),
            "walltime": float(self.walltime),
            "n_underlying_calls": int(self.n_underlying_calls),
            "total_sampling_time": float(self.total_sampling_time),
            "forced_decisions": int(self.forced_decisions),
            "extra": _plain(self.extra),
        }
        if include_trace and self.trace is not None:
            d["trace"] = self.trace.to_records()
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "OptimizationResult":
        """Rebuild a result from :meth:`to_dict` output."""
        data = dict(data)
        trace_records = data.pop("trace", None)
        data["best_theta"] = np.asarray(data["best_theta"], dtype=float)
        data["extra"] = dict(data.get("extra", {}))
        if trace_records is not None:
            data["trace"] = Trace.from_records(trace_records)
        return cls(**data)
