"""Optimization traces and per-step records.

Every optimizer records one :class:`StepRecord` per simplex iteration; the
:class:`Trace` container turns those into the arrays the paper plots
(function value vs. time for Fig. 3.4, vs. steps for Fig. 3.18b, time/step for
Fig. 3.18c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class StepRecord:
    """Snapshot taken after one simplex iteration."""

    step: int                 # iteration index (1-based after the move)
    time: float               # virtual clock at the end of the step
    operation: str            # reflect / expand / contract / collapse
    best_estimate: float      # lowest (noisy) vertex estimate
    best_true: float          # f(theta_best) on the underlying surface (nan if unknown)
    diameter: float           # simplex diameter, eq. 2.2
    contraction_level: int    # l, §2.2
    wait_time: float = 0.0    # virtual time spent in wait/resample loops this step
    resample_rounds: int = 0  # gated comparisons that needed extra sampling


class Trace:
    """Accumulates step records and exposes them as plot-ready arrays."""

    def __init__(self) -> None:
        self.records: List[StepRecord] = []

    def append(self, record: StepRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    # -- array views -------------------------------------------------------

    def times(self) -> np.ndarray:
        return np.array([r.time for r in self.records], dtype=float)

    def best_estimates(self) -> np.ndarray:
        return np.array([r.best_estimate for r in self.records], dtype=float)

    def best_true_values(self) -> np.ndarray:
        return np.array([r.best_true for r in self.records], dtype=float)

    def diameters(self) -> np.ndarray:
        return np.array([r.diameter for r in self.records], dtype=float)

    def operations(self) -> List[str]:
        return [r.operation for r in self.records]

    def time_per_step(self) -> float:
        """Mean virtual time per simplex step (Fig. 3.18c's y-axis)."""
        if not self.records:
            return float("nan")
        return self.records[-1].time / len(self.records)

    def operation_counts(self) -> dict:
        counts: dict = {}
        for r in self.records:
            counts[r.operation] = counts.get(r.operation, 0) + 1
        return counts


@dataclass
class OptimizationResult:
    """What an optimizer run returns.

    ``best_true`` uses the underlying noise-free surface and exists for
    *measurement* (the paper's R and D metrics); a real application would not
    have it.
    """

    algorithm: str
    best_theta: np.ndarray
    best_estimate: float
    best_true: float
    n_steps: int
    reason: str
    walltime: float
    trace: Optional[Trace] = None
    n_underlying_calls: int = 0
    total_sampling_time: float = 0.0
    forced_decisions: int = 0
    extra: dict = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OptimizationResult {self.algorithm} best={self.best_estimate:.6g} "
            f"true={self.best_true:.6g} steps={self.n_steps} reason={self.reason!r}>"
        )
