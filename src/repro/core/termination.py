"""Termination criteria (paper §2.4.1).

Two criteria are used in the paper, and either stops the simplex:

1. *Tolerance*: all function values within a predefined tolerance of the
   best (eq. 2.9): ``max_i |g_i - g_min| <= tau``.
2. *Walltime*: total (virtual) wall time exceeds a predetermined limit.

A criterion is a callable object receiving the optimizer and returning a
reason string when it fires, else ``None``.  :class:`CompositeTermination`
ORs several together; :class:`MaxStepsTermination` is an extra safety net for
tests and benchmarks.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


class TerminationCriterion:
    """Base class; subclasses implement :meth:`check`."""

    def check(self, optimizer) -> Optional[str]:
        raise NotImplementedError

    def __or__(self, other: "TerminationCriterion") -> "CompositeTermination":
        return CompositeTermination([self, other])


class ToleranceTermination(TerminationCriterion):
    """eq. 2.9: stop when the spread of vertex estimates is within ``tau``.

    Note a known property of this criterion: it measures *value* spread, not
    simplex size, so a simplex that lands symmetric around an optimum (all
    vertex values equal) terminates immediately even while geometrically
    large.  Combine with :class:`DiameterTermination` when that matters.
    """

    def __init__(self, tau: float) -> None:
        if not (tau > 0.0):
            raise ValueError(f"tau must be > 0, got {tau!r}")
        self.tau = float(tau)

    def check(self, optimizer) -> Optional[str]:
        g = optimizer.simplex.estimates()
        if not all(math.isfinite(v) for v in g):
            return None
        if float(g.max() - g.min()) <= self.tau:
            return "tolerance"
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ToleranceTermination(tau={self.tau!r})"


class WalltimeTermination(TerminationCriterion):
    """Stop when virtual wall time since the optimizer started exceeds the limit."""

    def __init__(self, limit: float) -> None:
        if not (limit > 0.0):
            raise ValueError(f"limit must be > 0, got {limit!r}")
        self.limit = float(limit)

    def check(self, optimizer) -> Optional[str]:
        if optimizer.elapsed_walltime() >= self.limit:
            return "walltime"
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalltimeTermination(limit={self.limit!r})"


class MaxStepsTermination(TerminationCriterion):
    """Stop after a fixed number of simplex iterations (safety net)."""

    def __init__(self, max_steps: int) -> None:
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps!r}")
        self.max_steps = int(max_steps)

    def check(self, optimizer) -> Optional[str]:
        if optimizer.n_steps >= self.max_steps:
            return "max_steps"
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaxStepsTermination(max_steps={self.max_steps!r})"


class DiameterTermination(TerminationCriterion):
    """Stop when the simplex diameter (eq. 2.2) shrinks below a threshold.

    Not used by the paper's experiments but convenient for deterministic
    convergence tests where eq. 2.9 would require knowing the noise floor.
    """

    def __init__(self, min_diameter: float) -> None:
        if not (min_diameter > 0.0):
            raise ValueError(f"min_diameter must be > 0, got {min_diameter!r}")
        self.min_diameter = float(min_diameter)

    def check(self, optimizer) -> Optional[str]:
        if optimizer.simplex.diameter() <= self.min_diameter:
            return "diameter"
        return None


class CompositeTermination(TerminationCriterion):
    """Fire when any member criterion fires (first reason wins)."""

    def __init__(self, criteria: Sequence[TerminationCriterion]) -> None:
        flat: List[TerminationCriterion] = []
        for c in criteria:
            if isinstance(c, CompositeTermination):
                flat.extend(c.criteria)
            else:
                flat.append(c)
        if not flat:
            raise ValueError("composite termination needs at least one criterion")
        self.criteria = flat

    def check(self, optimizer) -> Optional[str]:
        for criterion in self.criteria:
            reason = criterion.check(optimizer)
            if reason is not None:
                return reason
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompositeTermination({self.criteria!r})"


def default_termination(
    tau: float = 1e-8, walltime: float = 1e7, max_steps: int = 100_000
) -> CompositeTermination:
    """The paper's pairing (tolerance + walltime) plus a step safety net."""
    return CompositeTermination(
        [
            ToleranceTermination(tau),
            WalltimeTermination(walltime),
            MaxStepsTermination(max_steps),
        ]
    )
