"""Algorithm 1 — the deterministic downhill simplex (DET baseline).

The classical Nelder-Mead method exactly as printed in the paper, including
its branch structure (reflection is accepted whenever it beats the *worst*
vertex, contraction otherwise, collapse toward the best vertex if contraction
fails).  On a noisy objective DET reads each point once with a fixed sampling
budget and never revisits it — this is precisely the behaviour the stochastic
variants fix, and the reason DET "can terminate inappropriately at a solution
very far from the true optimum" (§1.2).

Through the ask/tell seam (:mod:`repro.core.base`) each one-shot evaluation
is a single-proposal round: the non-concurrent pool activates one trial
point at a time, so DET's asks arrive one proposal deep.  The engine mints
no speculative refinements for non-concurrent pools — extra sampling would
silently upgrade DET's fixed-budget reads into MN-style refinement and
change the trajectory.
"""

from __future__ import annotations

from repro.core.base import SimplexOptimizer


class NelderMead(SimplexOptimizer):
    """Deterministic simplex (DET): plain comparisons, one-shot evaluations.

    ``warmup`` is the fixed per-evaluation sampling budget; idle vertices do
    not refine over time (``concurrent_sampling = False``), matching a code
    that evaluates its objective once per point.
    """

    name = "DET"
    concurrent_sampling = False

    def _decide_step(self) -> str:
        return self._classic_step()


#: Alias used throughout the paper's tables and figures.
DET = NelderMead
