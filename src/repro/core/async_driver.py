"""Asynchronous evaluation driver: many ask/tell sources, one worker pool.

The barriered campaign path runs each job start-to-finish on one worker and
waits for whole batches (``MWDriver.wait_all``).  This module kills that
barrier: every optimizer is opened through its ask/tell seam
(:mod:`repro.core.base`), each proposal becomes its own mw task, and a single
scheduling loop keeps up to ``max_inflight`` evaluations in flight *across
all jobs at once*.  While one job's round waits on a straggler, the other
jobs' proposals keep the remaining workers busy — a slow node degrades
throughput by one worker instead of stalling every job at an iteration
barrier.

The loop is three beats, repeated until every source is finalized:

``top_up``
    Round-robin over unfinished sources, asking each for proposals while
    in-flight capacity remains, and submitting them to the mw driver.
``pump``
    One :meth:`~repro.mw.driver.MWDriver.pump` beat — poll worker events,
    dispatch queued tasks, drain available replies.  Lost workers are
    handled below this layer: the mw driver requeues their tasks, so a
    dropped evaluation simply arrives late.
``harvest``
    Tell every completed task's value back to its source.  Tells can arrive
    in any order and after the source finished (counted in
    ``repro_stale_tells_total``); a task that *failed* (exhausted mw
    retries) fails its source — the engine is closed and the error reported.

Telemetry: the ``repro_inflight_evals`` gauge tracks scheduling depth and
``repro_stale_tells_total`` counts tells that arrived too late to matter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class EvalSource:
    """One optimization driven through its ask/tell seam.

    Parameters
    ----------
    key:
        Stable identifier (the campaign job id) used in callbacks and logs.
    opt:
        An optimizer exposing the full ask/tell seam — ``ask(max_proposals)``,
        ``tell(id, value)``, ``finished``, ``result()`` and ``close()``
        (every :class:`~repro.core.base.SimplexOptimizer`; note
        :class:`~repro.core.pso.NoisyPSO` speaks ask/tell but has no
        termination criterion, so it is driven by :meth:`NoisyPSO.run`, not
        by this driver).
    make_work:
        Maps a :class:`~repro.core.base.Proposal` to the wire payload for the
        mw task (normally :func:`~repro.campaign.execution.proposal_work`).
    """

    key: str
    opt: Any
    make_work: Callable[[Any], Any]
    # internals, managed by the driver
    inflight: int = field(default=0, repr=False)
    failed_error: Optional[str] = field(default=None, repr=False)
    finalized: bool = field(default=False, repr=False)
    # some sources (NoisyPSO) re-return still-pending proposals from ask();
    # the driver dedupes on id so nothing is ever submitted twice
    submitted_ids: set = field(default_factory=set, repr=False)


class AsyncEvalDriver:
    """Drive many :class:`EvalSource`\\ s over one :class:`~repro.mw.driver.MWDriver`.

    Parameters
    ----------
    mw:
        The mw driver whose workers answer proposals.  Its executor must
        understand the payloads ``make_work`` produces (the campaign uses
        :func:`~repro.campaign.execution.mw_eval_executor`).
    max_inflight:
        Cap on simultaneously outstanding evaluations across all sources.
    poll_timeout:
        Real seconds each :meth:`~repro.mw.driver.MWDriver.pump` beat may
        block waiting for a reply.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; defaults to the no-op.
    heartbeat:
        Optional zero-argument callable invoked roughly every
        ``heartbeat_interval`` seconds from the scheduling loop (the campaign
        runner uses it to emit ``workers`` telemetry events for
        ``watch --cells``).
    """

    def __init__(
        self,
        mw,
        max_inflight: int = 8,
        poll_timeout: float = 0.05,
        telemetry: Optional[Telemetry] = None,
        heartbeat: Optional[Callable[[], None]] = None,
        heartbeat_interval: float = 2.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.mw = mw
        self.max_inflight = int(max_inflight)
        self.poll_timeout = float(poll_timeout)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.heartbeat = heartbeat
        self.heartbeat_interval = float(heartbeat_interval)
        self._task_map: Dict[int, tuple] = {}  # task_id -> (source, proposal)
        self.n_submitted = 0
        self.n_told = 0
        self.n_stale = 0

    # -- scheduling loop -----------------------------------------------------

    def run(
        self,
        sources: List[EvalSource],
        on_finished: Callable[[EvalSource, Any, Optional[str]], None],
    ) -> Dict[str, int]:
        """Drive every source to completion; returns scheduling stats.

        ``on_finished(source, result, error)`` fires exactly once per source:
        with the :class:`~repro.core.state.OptimizationResult` and
        ``error=None`` on success, or ``result=None`` and the error string if
        an evaluation failed after the mw layer's retries.
        """
        gauge = self.telemetry.gauge(
            "repro_inflight_evals", "proposal evaluations currently in flight"
        )
        stale_counter = self.telemetry.counter(
            "repro_stale_tells_total",
            "tells that arrived after their proposal no longer mattered",
        )
        last_beat = time.monotonic()
        try:
            while True:
                live = [s for s in sources if not s.finalized]
                if not live and not self._task_map:
                    break
                self._top_up(live)
                gauge.set(len(self._task_map))
                self.mw.pump(self.poll_timeout)
                self._harvest(stale_counter)
                gauge.set(len(self._task_map))
                for src in live:
                    self._maybe_finalize(src, on_finished)
                if self.heartbeat is not None:
                    now = time.monotonic()
                    if now - last_beat >= self.heartbeat_interval:
                        last_beat = now
                        self.heartbeat()
        finally:
            gauge.set(0.0)
        return {
            "submitted": self.n_submitted,
            "told": self.n_told,
            "stale": self.n_stale,
        }

    def _top_up(self, live: List[EvalSource]) -> None:
        """Ask sources round-robin for proposals until in-flight is full."""
        budget = self.max_inflight - len(self._task_map)
        for src in live:
            if budget <= 0:
                break
            if src.failed_error is not None or src.opt.finished:
                continue
            proposals = src.opt.ask(budget)
            for proposal in proposals:
                if proposal.id in src.submitted_ids:
                    continue
                src.submitted_ids.add(proposal.id)
                task = self.mw.submit(src.make_work(proposal))
                self._task_map[task.task_id] = (src, proposal)
                src.inflight += 1
                self.n_submitted += 1
                budget -= 1

    def _harvest(self, stale_counter) -> None:
        """Tell every settled task's value back to its source."""
        settled = [
            tid for tid, _ in self._task_map.items()
            if self.mw.tasks[tid].done or self.mw.tasks[tid].failed
        ]
        for tid in settled:
            src, proposal = self._task_map.pop(tid)
            src.inflight -= 1
            task = self.mw.tasks[tid]
            if task.failed:
                # The mw layer already retried (dead workers, transient
                # errors); a task that still failed poisons only its source.
                if src.failed_error is None:
                    src.failed_error = f"evaluation {proposal.id} failed: {task.error}"
                    close = getattr(src.opt, "close", None)
                    if close is not None:
                        close(reason=src.failed_error)
                continue
            value = task.result["value"]
            try:
                status = src.opt.tell(proposal.id, value)
            except KeyError:
                status = "stale"
            self.n_told += 1
            if status in ("stale", "duplicate"):
                self.n_stale += 1
                stale_counter.inc()

    def _maybe_finalize(
        self,
        src: EvalSource,
        on_finished: Callable[[EvalSource, Any, Optional[str]], None],
    ) -> None:
        """Fire ``on_finished`` once a source has failed or produced a result."""
        if src.finalized:
            return
        if src.failed_error is not None:
            src.finalized = True
            on_finished(src, None, src.failed_error)
        elif src.opt.finished:
            src.finalized = True
            try:
                result = src.opt.result()
            except Exception as exc:  # noqa: BLE001 - a crashed run fails its job only
                on_finished(src, None, f"{type(exc).__name__}: {exc}")
            else:
                on_finished(src, result, None)
