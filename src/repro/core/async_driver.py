"""Asynchronous evaluation driver: many ask/tell sources, one worker pool.

The barriered campaign path runs each job start-to-finish on one worker and
waits for whole batches (``MWDriver.wait_all``).  This module kills that
barrier: every optimizer is opened through its ask/tell seam
(:mod:`repro.core.base`), each proposal becomes its own mw task (or rides a
batched frame of up to ``eval_batch`` proposals), and a single scheduling
loop keeps up to ``max_inflight`` evaluations in flight *across all jobs at
once*.  While one job's round waits on a straggler, the other
jobs' proposals keep the remaining workers busy — a slow node degrades
throughput by one worker instead of stalling every job at an iteration
barrier.

The loop is three beats, repeated until every source is finalized:

``top_up``
    Round-robin over unfinished sources, asking each for proposals while
    in-flight capacity remains, and submitting them to the mw driver.
``pump``
    One :meth:`~repro.mw.driver.MWDriver.pump` beat — poll worker events,
    dispatch queued tasks, drain available replies.  Lost workers are
    handled below this layer: the mw driver requeues their tasks, so a
    dropped evaluation simply arrives late.
``harvest``
    Tell every completed task's value back to its source.  Tells can arrive
    in any order and after the source finished (counted in
    ``repro_stale_tells_total``); a task that *failed* (exhausted mw
    retries) fails its source — the engine is closed and the error reported.

Telemetry: the ``repro_inflight_evals`` gauge tracks scheduling depth and
``repro_stale_tells_total`` counts tells that arrived too late to matter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class EvalSource:
    """One optimization driven through its ask/tell seam.

    Parameters
    ----------
    key:
        Stable identifier (the campaign job id) used in callbacks and logs.
    opt:
        An optimizer exposing the full ask/tell seam — ``ask(max_proposals)``,
        ``tell(id, value)``, ``finished``, ``result()`` and ``close()``
        (every :class:`~repro.core.base.SimplexOptimizer`; note
        :class:`~repro.core.pso.NoisyPSO` speaks ask/tell but has no
        termination criterion, so it is driven by :meth:`NoisyPSO.run`, not
        by this driver).
    make_work:
        Maps a :class:`~repro.core.base.Proposal` to the wire payload for the
        mw task (normally :func:`~repro.campaign.execution.proposal_work`).
    batch_key:
        Coalescing group for batched evaluation (``eval_batch > 1``):
        proposals from sources sharing a ``batch_key`` may ride the same
        batch frame, so the runner keys it by ``function:dim`` — the unit
        one vectorized ``batch()`` call can evaluate.  ``None`` (default)
        batches only within this source.
    """

    key: str
    opt: Any
    make_work: Callable[[Any], Any]
    batch_key: Optional[str] = None
    # internals, managed by the driver
    inflight: int = field(default=0, repr=False)
    failed_error: Optional[str] = field(default=None, repr=False)
    finalized: bool = field(default=False, repr=False)
    # some sources (NoisyPSO) re-return still-pending proposals from ask();
    # the driver dedupes on id so nothing is ever submitted twice
    submitted_ids: set = field(default_factory=set, repr=False)


class AsyncEvalDriver:
    """Drive many :class:`EvalSource`\\ s over one :class:`~repro.mw.driver.MWDriver`.

    Parameters
    ----------
    mw:
        The mw driver whose workers answer proposals.  Its executor must
        understand the payloads ``make_work`` produces (the campaign uses
        :func:`~repro.campaign.execution.mw_eval_executor`).
    max_inflight:
        Cap on simultaneously outstanding evaluations across all sources.
    poll_timeout:
        Real seconds each :meth:`~repro.mw.driver.MWDriver.pump` beat may
        block waiting for a reply.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; defaults to the no-op.
    heartbeat:
        Optional zero-argument callable invoked roughly every
        ``heartbeat_interval`` seconds from the scheduling loop (the campaign
        runner uses it to emit ``workers`` telemetry events for
        ``watch --cells``).
    eval_batch:
        Proposals per mw frame (``--eval-batch q``).  At the default 1
        every proposal is its own task, exactly as before.  At ``q > 1``
        proposals are grouped by :attr:`EvalSource.batch_key` and shipped
        ``q`` to a frame via ``make_batch_work``; the worker evaluates
        them in one vectorized call and the tell fan-in splits the values
        back to per-proposal ids.  Partial groups are flushed every
        scheduling beat — a proposal withheld across beats would deadlock
        its engine's round waiting for a tell that never comes.
    make_batch_work:
        Maps a list of ``(source, proposal)`` pairs (all sharing a
        ``batch_key``) to the batch frame payload (the campaign uses
        :func:`~repro.campaign.execution.batch_proposal_work`).  Required
        when ``eval_batch > 1``.
    """

    def __init__(
        self,
        mw,
        max_inflight: int = 8,
        poll_timeout: float = 0.05,
        telemetry: Optional[Telemetry] = None,
        heartbeat: Optional[Callable[[], None]] = None,
        heartbeat_interval: float = 2.0,
        eval_batch: int = 1,
        make_batch_work: Optional[Callable[[List[tuple]], Any]] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if eval_batch < 1:
            raise ValueError(f"eval_batch must be >= 1, got {eval_batch}")
        if eval_batch > 1 and make_batch_work is None:
            raise ValueError("eval_batch > 1 requires make_batch_work")
        self.mw = mw
        self.max_inflight = int(max_inflight)
        self.poll_timeout = float(poll_timeout)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.heartbeat = heartbeat
        self.heartbeat_interval = float(heartbeat_interval)
        self.eval_batch = int(eval_batch)
        self.make_batch_work = make_batch_work
        # task_id -> [(source, proposal), ...] in frame order (len 1 unless batched)
        self._task_map: Dict[int, List[tuple]] = {}
        self.n_submitted = 0
        self.n_frames = 0
        self.n_told = 0
        self.n_stale = 0

    def _inflight_evals(self) -> int:
        """Outstanding proposal evaluations (a batch frame counts its size)."""
        return sum(len(items) for items in self._task_map.values())

    # -- scheduling loop -----------------------------------------------------

    def run(
        self,
        sources: List[EvalSource],
        on_finished: Callable[[EvalSource, Any, Optional[str]], None],
    ) -> Dict[str, int]:
        """Drive every source to completion; returns scheduling stats.

        ``on_finished(source, result, error)`` fires exactly once per source:
        with the :class:`~repro.core.state.OptimizationResult` and
        ``error=None`` on success, or ``result=None`` and the error string if
        an evaluation failed after the mw layer's retries.
        """
        gauge = self.telemetry.gauge(
            "repro_inflight_evals", "proposal evaluations currently in flight"
        )
        stale_counter = self.telemetry.counter(
            "repro_stale_tells_total",
            "tells that arrived after their proposal no longer mattered",
        )
        last_beat = time.monotonic()
        try:
            while True:
                live = [s for s in sources if not s.finalized]
                if not live and not self._task_map:
                    break
                self._top_up(live)
                gauge.set(self._inflight_evals())
                self.mw.pump(self.poll_timeout)
                self._harvest(stale_counter)
                gauge.set(self._inflight_evals())
                for src in live:
                    self._maybe_finalize(src, on_finished)
                if self.heartbeat is not None:
                    now = time.monotonic()
                    if now - last_beat >= self.heartbeat_interval:
                        last_beat = now
                        self.heartbeat()
        finally:
            gauge.set(0.0)
        return {
            "submitted": self.n_submitted,
            "frames": self.n_frames,
            "told": self.n_told,
            "stale": self.n_stale,
        }

    def _top_up(self, live: List[EvalSource]) -> None:
        """Ask sources round-robin for proposals until in-flight is full.

        With ``eval_batch > 1``, proposals accumulate in per-``batch_key``
        buckets that ship as one frame when full; whatever remains after
        the round-robin is flushed immediately as partial frames (never
        held for a later beat — see the class docstring).
        """
        budget = self.max_inflight - self._inflight_evals()
        buckets: Dict[str, List[tuple]] = {}
        for src in live:
            if budget <= 0:
                break
            if src.failed_error is not None or src.opt.finished:
                continue
            proposals = src.opt.ask(budget)
            for proposal in proposals:
                if proposal.id in src.submitted_ids:
                    continue
                src.submitted_ids.add(proposal.id)
                budget -= 1
                if self.eval_batch == 1:
                    self._submit([(src, proposal)])
                    continue
                key = src.batch_key if src.batch_key is not None else src.key
                bucket = buckets.setdefault(key, [])
                bucket.append((src, proposal))
                if len(bucket) >= self.eval_batch:
                    self._submit(buckets.pop(key))
        for items in buckets.values():
            self._submit(items)

    def _submit(self, items: List[tuple]) -> None:
        """Ship one frame: a lone proposal as the classic single-eval task,
        two or more as a batch task weighted at ``len(items)`` evaluations."""
        if len(items) == 1:
            src, proposal = items[0]
            task = self.mw.submit(src.make_work(proposal))
        else:
            task = self.mw.submit(
                self.make_batch_work(items), n_evals=len(items)
            )
        self._task_map[task.task_id] = items
        for src, _ in items:
            src.inflight += 1
        self.n_submitted += len(items)
        self.n_frames += 1

    def _harvest(self, stale_counter) -> None:
        """Tell every settled frame's values back to their sources."""
        settled = [
            tid for tid, _ in self._task_map.items()
            if self.mw.tasks[tid].done or self.mw.tasks[tid].failed
        ]
        for tid in settled:
            items = self._task_map.pop(tid)
            for src, _ in items:
                src.inflight -= 1
            task = self.mw.tasks[tid]
            if task.failed:
                # The mw layer already retried (dead workers, transient
                # errors); a frame that still failed poisons every source
                # with a proposal aboard — and only those.
                for src, proposal in items:
                    if src.failed_error is None:
                        src.failed_error = (
                            f"evaluation {proposal.id} failed: {task.error}"
                        )
                        close = getattr(src.opt, "close", None)
                        if close is not None:
                            close(reason=src.failed_error)
                continue
            if len(items) == 1:
                values = [task.result["value"]]
            else:
                values = task.result["values"]
                if len(values) != len(items):
                    raise RuntimeError(
                        f"batch task {tid} returned {len(values)} values "
                        f"for {len(items)} proposals"
                    )
            # Group the frame's results by source so each optimizer takes
            # one batched tell (one lock acquisition) instead of one per
            # proposal — the master-side half of what makes --eval-batch
            # amortize.  Item order within a source is preserved.
            grouped: Dict[int, tuple] = {}
            for (src, proposal), value in zip(items, values):
                entry = grouped.get(id(src))
                if entry is None:
                    entry = grouped[id(src)] = (src, [])
                entry[1].append((proposal.id, value))
            for src, pairs in grouped.values():
                tell_many = getattr(src.opt, "tell_many", None)
                if tell_many is not None:
                    statuses = tell_many(pairs)
                else:
                    statuses = []
                    for proposal_id, value in pairs:
                        try:
                            statuses.append(src.opt.tell(proposal_id, value))
                        except KeyError:
                            statuses.append("stale")
                for status in statuses:
                    self.n_told += 1
                    if status in ("stale", "duplicate"):
                        self.n_stale += 1
                        stale_counter.inc()

    def _maybe_finalize(
        self,
        src: EvalSource,
        on_finished: Callable[[EvalSource, Any, Optional[str]], None],
    ) -> None:
        """Fire ``on_finished`` once a source has failed or produced a result."""
        if src.finalized:
            return
        if src.failed_error is not None:
            src.finalized = True
            on_finished(src, None, src.failed_error)
        elif src.opt.finished:
            src.finalized = True
            try:
                result = src.opt.result()
            except Exception as exc:  # noqa: BLE001 - a crashed run fails its job only
                on_finished(src, None, f"{type(exc).__name__}: {exc}")
            else:
                on_finished(src, result, None)
