"""Checkpoint/resume for long optimizations.

The paper's production runs took days on a batch cluster ("the submitted
jobs may be queued for several hours or even days"), where preemption and
restart are facts of life — MW itself "restarts workers on the same
processors".  This module snapshots the master-side optimization state (the
simplex: vertex coordinates, current estimates, sampling times, noise
bookkeeping; the step counter; the virtual clock) into a codec frame on disk
and restores it into a fresh optimizer.

What is *not* checkpointed: the noise RNG stream (a resumed run draws fresh
noise — statistically equivalent, not bitwise identical) and pool transports
(workers are restarted, as in MW).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.base import SimplexOptimizer
from repro.core.driver import make_optimizer
from repro.mw.codec import pack, unpack
from repro.noise.evaluation import VertexEvaluation
from repro.noise.stochastic import StochasticFunction

FORMAT_VERSION = 1


def snapshot(optimizer: SimplexOptimizer) -> dict:
    """Capture the resumable state of an optimizer as plain codec types."""
    vertices = []
    for ev in optimizer.simplex.vertices:
        vertices.append(
            {
                "theta": np.asarray(ev.theta, dtype=float),
                "time": float(ev.time),
                "estimate": float(ev.estimate),
                "n_blocks": int(ev.n_blocks),
                "sum_wx2": float(ev._sum_wx2),
                "sigma0": None if ev.sigma0 is None else float(ev.sigma0),
                "sigma0_guess": float(ev.sigma0_guess),
                "label": ev.label,
            }
        )
    return {
        "version": FORMAT_VERSION,
        "algorithm": optimizer.name,
        "n_steps": int(optimizer.n_steps),
        "clock": float(optimizer.pool.now),
        "contraction_level": int(optimizer.simplex.contraction_level),
        "vertices": vertices,
    }


def save_checkpoint(optimizer: SimplexOptimizer, path) -> Path:
    """Write the optimizer snapshot to ``path`` (atomic rename)."""
    path = Path(path)
    data = pack(snapshot(optimizer))
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(path)
    return path


def load_snapshot(path) -> dict:
    """Read a snapshot dict back from disk (validates the version)."""
    state = unpack(Path(path).read_bytes())
    if not isinstance(state, dict) or state.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported or corrupt checkpoint: {path}")
    return state


def _restore_evaluation(record: dict) -> VertexEvaluation:
    ev = VertexEvaluation(
        record["theta"],
        sigma0=record["sigma0"],
        sigma0_guess=record["sigma0_guess"],
        label=record["label"],
    )
    ev.time = record["time"]
    ev.estimate = record["estimate"]
    ev.n_blocks = record["n_blocks"]
    ev._sum_wx2 = record["sum_wx2"]
    return ev


def resume(
    path,
    func: StochasticFunction,
    algorithm: Optional[str] = None,
    **options,
) -> SimplexOptimizer:
    """Rebuild an optimizer from a checkpoint.

    ``func`` supplies the objective and a fresh noise stream; ``algorithm``
    defaults to the checkpointed one.  Options (k, conditions, termination,
    ...) are passed through to the constructor.  The restored optimizer
    continues from the saved step count, vertex estimates/sampling times and
    virtual clock.
    """
    state = load_snapshot(path)
    algo = algorithm if algorithm is not None else state["algorithm"]
    thetas = np.array([rec["theta"] for rec in state["vertices"]], dtype=float)
    opt = make_optimizer(algo, func, thetas, **options)
    # swap in the checkpointed evaluations (overwriting the warmup ones)
    restored = [_restore_evaluation(rec) for rec in state["vertices"]]
    for old, new in zip(list(opt.simplex.vertices), restored):
        opt.pool.deactivate(old)
        opt.pool.adopt(new)
    opt.simplex.vertices = restored
    opt.simplex.contraction_level = state["contraction_level"]
    opt.n_steps = state["n_steps"]
    # fast-forward the clock to the checkpointed time
    behind = state["clock"] - opt.pool.now
    if behind > 0:
        opt.pool.clock.advance(behind)
    opt._t0 = opt.pool.now - state["clock"]
    return opt
