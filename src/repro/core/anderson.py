"""The Anderson et al. comparator (eqs. 2.4-2.8).

Anderson, Ferris & Himsworth (SIAM J. Optim. 11:837, 2000) advance their
direct search only once the noise at every point is below a cutoff that
tightens as the search region shrinks:

    sigma_i^2(t_i)  <  k1 * 2^(-l (1 + k2))     for all i          (eq. 2.4)

where ``l`` is the contraction level (the region size is ``2^-l`` times the
initial size).  The paper evaluates *this criterion* inside the Nelder-Mead
loop (":class:`AndersonSimplex`" here, used for Table 3.2 / Fig. 3.4) and
keeps the rest of their method aside; for completeness this module also
implements the structure-based direct search itself
(:class:`AndersonStructureSearch`), with the set-valued operations of
eqs. 2.6-2.8:

    REFLECT(S, x)  = { 2x - x_i  | x_i in S }
    EXPAND(S, x)   = { 2x_i - x  | x_i in S }     (doubles the structure)
    CONTRACT(S, x) = { (x + x_i)/2 | x_i in S }   (halves the structure)

Unlike the MN gate, eq. 2.4 keys off the *simplex size* rather than the
spread of function values, so k1 "must be parameterized separately for each
new surface": too small a k1 forces so much sampling per step that the
walltime budget is exhausted after only a handful of iterations (the small-N,
large-R rows of Table 3.2), while a very large k1 makes the size of the
simplex irrelevant and the algorithm degenerates toward DET.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.core.maxnoise import MaxNoise
from repro.core.state import OptimizationResult
from repro.core.termination import TerminationCriterion
from repro.noise.stochastic import SamplingPool, StochasticFunction


class AndersonSimplex(MaxNoise):
    """Nelder-Mead moves gated by the Anderson criterion (eq. 2.4).

    Parameters
    ----------
    k1:
        Noise-variance cutoff scale; Table 3.2 sweeps 2**0, 2**10, 2**20,
        2**30.  Values should scale with the initial simplex size.
    k2:
        Tightening exponent; the paper always sets it to zero.
    """

    name = "Anderson"

    def __init__(
        self,
        func: StochasticFunction,
        initial_vertices,
        *,
        k1: float = 1.0,
        k2: float = 0.0,
        wait_dt: float = 1.0,
        wait_growth: float = 1.6,
        termination: Optional[TerminationCriterion] = None,
        pool: Optional[SamplingPool] = None,
        **kwargs,
    ) -> None:
        if not (k1 > 0.0):
            raise ValueError(f"k1 must be > 0, got {k1!r}")
        if k2 < 0.0:
            raise ValueError(f"k2 must be >= 0, got {k2!r}")
        super().__init__(
            func,
            initial_vertices,
            k=1.0,  # unused; the gate is overridden below
            wait_dt=wait_dt,
            wait_growth=wait_growth,
            termination=termination,
            pool=pool,
            **kwargs,
        )
        self.k1 = float(k1)
        self.k2 = float(k2)

    def threshold(self) -> float:
        """Current cutoff ``k1 * 2**(-l (1 + k2))``."""
        l = self.simplex.contraction_level
        return self.k1 * 2.0 ** (-l * (1.0 + self.k2))

    def _gate_satisfied(self) -> bool:
        return bool(self.simplex.variances().max() < self.threshold())


class AndersonStructureSearch:
    """The full Anderson et al. direct search on m-point structures.

    Implemented as a paper-faithful extension (DESIGN.md §6): a *structure*
    ``S`` of ``m`` points is reflected / expanded / contracted as a set around
    its best point; eq. 2.4 gates every ranking.  This is not used by any of
    the paper's tables — they only borrow the criterion — but completes the
    comparison surface.

    Parameters
    ----------
    func:
        Stochastic objective.
    initial_points:
        ``(m, d)`` array, the starting structure (m >= d + 1 recommended).
    k1, k2:
        eq. 2.4 constants.
    warmup, wait_dt, wait_growth:
        Sampling schedule, as for the simplex algorithms.
    max_iterations, walltime:
        Stop conditions.
    min_size:
        Stop when the structure size D(S) (eq. 2.5) drops below this.
    """

    name = "AndersonDS"

    def __init__(
        self,
        func: StochasticFunction,
        initial_points,
        *,
        k1: float = 1.0,
        k2: float = 0.0,
        warmup: float = 1.0,
        wait_dt: float = 1.0,
        wait_growth: float = 1.6,
        max_iterations: int = 500,
        walltime: float = 1e7,
        min_size: float = 1e-8,
    ) -> None:
        pts = np.asarray(initial_points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] < 2:
            raise ValueError(f"initial_points must be (m>=2, d), got {pts.shape}")
        self.func = func
        self.pool = SamplingPool(func, warmup=warmup, concurrent=True)
        self.evals = [self.pool.activate(p, label=f"s{i}") for i, p in enumerate(pts)]
        self.k1 = float(k1)
        self.k2 = float(k2)
        self.wait_dt = float(wait_dt)
        self.wait_growth = float(wait_growth)
        self.max_iterations = int(max_iterations)
        self.walltime = float(walltime)
        self.min_size = float(min_size)
        self.level = 0  # l: expansion decrements, contraction increments
        self._t0 = self.pool.now
        self.n_steps = 0

    # -- structure geometry (eqs. 2.5-2.8) ----------------------------------

    def size(self) -> float:
        """D(S) = max pairwise distance (eq. 2.5)."""
        from repro.core.simplex import diameter

        return diameter([ev.theta for ev in self.evals])

    @staticmethod
    def reflect(points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """REFLECT(S, x) = {2x - xi} (eq. 2.6)."""
        return 2.0 * x - points

    @staticmethod
    def expand(points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """EXPAND(S, x) = {2 xi - x} (eq. 2.7; doubles the size)."""
        return 2.0 * points - x

    @staticmethod
    def contract(points: np.ndarray, x: np.ndarray) -> np.ndarray:
        """CONTRACT(S, x) = {(x + xi)/2} (eq. 2.8; halves the size)."""
        return 0.5 * (x + points)

    # -- sampling gate -------------------------------------------------------

    def _wait_for_gate(self, evals) -> None:
        cutoff = self.k1 * 2.0 ** (-self.level * (1.0 + self.k2))
        dt = self.wait_dt
        while max(ev.variance for ev in evals) >= cutoff:
            if self.pool.now - self._t0 >= self.walltime:
                return
            self.pool.advance(dt)
            dt *= self.wait_growth

    def _activate_structure(self, points: np.ndarray, tag: str):
        return [
            self.pool.activate(p, label=f"{tag}{i}") for i, p in enumerate(points)
        ]

    def _swap_to(self, new_evals) -> None:
        for ev in self.evals:
            if ev in self.pool:
                self.pool.deactivate(ev)
        self.evals = new_evals

    def _mean(self, evals) -> float:
        return float(np.mean([ev.estimate for ev in evals]))

    # -- main loop --------------------------------------------------------------

    def run(self) -> OptimizationResult:
        reason = "max_iterations"
        while self.n_steps < self.max_iterations:
            if self.pool.now - self._t0 >= self.walltime:
                reason = "walltime"
                break
            if self.size() <= self.min_size:
                reason = "size"
                break
            self._wait_for_gate(self.evals)
            best = min(self.evals, key=lambda ev: ev.estimate)
            x = best.theta
            pts = np.array([ev.theta for ev in self.evals])
            refl_pts = self.reflect(pts, x)
            refl = self._activate_structure(refl_pts, "r")
            self._wait_for_gate(refl)
            if self._mean(refl) < self._mean(self.evals):
                exp = self._activate_structure(self.expand(pts, x), "e")
                self._wait_for_gate(exp)
                if self._mean(exp) < self._mean(refl):
                    self._swap_to(exp)
                    for ev in refl:
                        self.pool.deactivate(ev)
                    self.level -= 1
                else:
                    self._swap_to(refl)
                    for ev in exp:
                        self.pool.deactivate(ev)
            else:
                for ev in refl:
                    self.pool.deactivate(ev)
                con = self._activate_structure(self.contract(pts, x), "c")
                self._wait_for_gate(con)
                self._swap_to(con)
                self.level += 1
            self.n_steps += 1
        best = min(self.evals, key=lambda ev: ev.estimate)
        return OptimizationResult(
            algorithm=self.name,
            best_theta=np.array(best.theta, copy=True),
            best_estimate=best.estimate,
            best_true=self.func.true_value(best.theta),
            n_steps=self.n_steps,
            reason=reason,
            walltime=self.pool.now - self._t0,
            trace=None,
            n_underlying_calls=self.func.n_underlying_calls,
            total_sampling_time=self.func.total_sampling_time,
        )
