"""Particle swarm with a noise-aware simplex polish (paper §5.2 future work).

"Particle swarm optimization (PSO) suffers from the disadvantage of slow
convergence in the refined search stages ... while the maxnoise,
point-to-point and simplex in general lack the ability to converge to a
global minimum but converge quickly to a local minimum.  An ability to use
PSO with maxnoise and point-to-point may prove to be another step forward."

This module implements exactly that combination: a global PSO stage over the
noisy objective (each particle's fitness is a sampled evaluation with the
usual ``sigma0/sqrt(t)`` error; the personal/global bests use a
confidence-interval update rule so noise does not corrupt the incumbent),
followed by an MN or PC local stage seeded with a simplex around the swarm's
best point.

Like the simplex family, :class:`NoisyPSO` speaks ask/tell — but natively,
with no engine thread: one swarm generation is one batch of proposals
(:meth:`NoisyPSO.ask` moves the swarm and mints a proposal per particle,
:meth:`NoisyPSO.tell` collects surface values in any order, and the last
tell of a generation merges noise and updates the incumbents in particle
order so the result is identical to the legacy interleaved loop).
:meth:`NoisyPSO.step` is re-expressed on top of that seam.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.base import (
    TELL_APPLIED,
    TELL_DUPLICATE,
    Proposal,
)
from repro.core.driver import make_optimizer
from repro.core.state import OptimizationResult
from repro.core.termination import default_termination
from repro.functions.suite import initial_simplex
from repro.noise.stochastic import SamplingPool, StochasticFunction


class NoisyPSO:
    """Global stage: particle swarm over a stochastic objective.

    Parameters
    ----------
    func:
        Stochastic objective.
    bounds:
        ``(low, high)`` arrays (or scalars) for the search box.
    n_particles:
        Swarm size.
    inertia, cognitive, social:
        Standard PSO coefficients.
    eval_time:
        Sampling time per fitness evaluation.
    k:
        Confidence width for incumbent updates: a particle replaces its
        personal/global best only when its interval is ``k`` sigma below the
        incumbent's — the PC idea applied to swarm bookkeeping.
    rng:
        Generator or seed for swarm initialization and velocity updates
        (independent from the objective's noise stream).
    """

    name = "PSO"

    def __init__(
        self,
        func: StochasticFunction,
        bounds,
        dim: int,
        n_particles: int = 12,
        inertia: float = 0.7,
        cognitive: float = 1.5,
        social: float = 1.5,
        eval_time: float = 1.0,
        k: float = 1.0,
        rng=None,
    ) -> None:
        if n_particles < 2:
            raise ValueError(f"n_particles must be >= 2, got {n_particles}")
        if not (eval_time > 0.0):
            raise ValueError(f"eval_time must be > 0, got {eval_time}")
        low, high = bounds
        self.low = np.broadcast_to(np.asarray(low, dtype=float), (dim,)).copy()
        self.high = np.broadcast_to(np.asarray(high, dtype=float), (dim,)).copy()
        if np.any(self.high <= self.low):
            raise ValueError("bounds must satisfy high > low elementwise")
        self.func = func
        self.dim = dim
        self.k = float(k)
        self.eval_time = float(eval_time)
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

        span = self.high - self.low
        self.pos = self.rng.uniform(self.low, self.high, size=(n_particles, dim))
        self.vel = self.rng.uniform(-span, span, size=(n_particles, dim)) * 0.1
        self.best_pos = self.pos.copy()
        self.best_val = np.empty(n_particles)
        self.best_sem = np.empty(n_particles)
        for i in range(n_particles):
            ev = self.func.evaluate(self.pos[i], self.eval_time)
            self.best_val[i] = ev.estimate
            self.best_sem[i] = ev.sem
        g = int(np.argmin(self.best_val))
        self.gbest_pos = self.best_pos[g].copy()
        self.gbest_val = float(self.best_val[g])
        self.gbest_sem = float(self.best_sem[g])
        self.n_iterations = 0
        # ask/tell generation state (see module docstring)
        self._pending: Dict[str, int] = {}
        self._proposals: List[Proposal] = []
        self._gen_values: Dict[int, float] = {}
        self._resolved: set = set()
        self._counter = 0
        self.n_duplicate_tells = 0
        self.n_stale_tells = 0

    def _confidently_below(self, val: float, sem: float, inc_val: float, inc_sem: float) -> bool:
        """PC-style incumbent update: k-sigma intervals must separate."""
        return val + self.k * sem < inc_val - self.k * inc_sem

    # -- ask/tell seam --------------------------------------------------------

    def ask(self, max_proposals: Optional[int] = None) -> List[Proposal]:
        """Return pending proposals, advancing the swarm if none are out.

        A generation is minted lazily: when no proposals are outstanding the
        swarm moves (velocity/position update, drawing ``r1``/``r2`` from the
        swarm rng exactly as the legacy loop did) and one proposal per
        particle is returned.  While a generation is in flight, ``ask``
        re-returns the still-untold proposals — PSO is generation-batched, so
        there is nothing speculative to mint beyond the batch.
        """
        if not self._pending:
            self._advance_swarm()
        out = list(self._proposals)
        if max_proposals is not None:
            out = out[: max(0, int(max_proposals))]
        return out

    def tell(self, proposal_id: str, value: float) -> str:
        """Feed back the deterministic surface value for one proposal.

        Accepts tells in any order.  The last tell of a generation triggers
        the merge: noise is applied from the objective's generator in
        particle order (so the stream is independent of arrival order) and
        the personal/global incumbents update in particle order, matching the
        legacy interleaved loop bit for bit.  Returns a ``TELL_*`` status;
        unknown ids raise ``KeyError``.
        """
        if proposal_id in self._resolved:
            self.n_duplicate_tells += 1
            return TELL_DUPLICATE
        if proposal_id not in self._pending:
            raise KeyError(f"unknown proposal id {proposal_id!r}")
        i = self._pending.pop(proposal_id)
        self._resolved.add(proposal_id)
        self._gen_values[i] = float(value)
        self._proposals = [p for p in self._proposals if p.id != proposal_id]
        if not self._pending:
            self._finish_iteration()
        return TELL_APPLIED

    def _advance_swarm(self) -> None:
        """Move the swarm and mint one proposal per particle."""
        n = self.pos.shape[0]
        r1 = self.rng.random((n, self.dim))
        r2 = self.rng.random((n, self.dim))
        self.vel = (
            self.inertia * self.vel
            + self.cognitive * r1 * (self.best_pos - self.pos)
            + self.social * r2 * (self.gbest_pos[None, :] - self.pos)
        )
        self.pos = np.clip(self.pos + self.vel, self.low, self.high)
        self._gen_values = {}
        self._proposals: List[Proposal] = []
        for i in range(n):
            pid = f"pso{self._counter:06d}"
            self._counter += 1
            self._pending[pid] = i
            self._proposals.append(
                Proposal(
                    id=pid,
                    theta=self.pos[i].copy(),
                    label=f"pso:{self.n_iterations}:{i}",
                    dt=self.eval_time,
                )
            )

    def _finish_iteration(self) -> None:
        """Merge a completed generation and update the incumbents."""
        n = self.pos.shape[0]
        for i in range(n):
            ev = self.func.start(self.pos[i])
            self.func.merge_external(ev, self.eval_time, self._gen_values[i])
            if self._confidently_below(
                ev.estimate, ev.sem, self.best_val[i], self.best_sem[i]
            ):
                self.best_val[i] = ev.estimate
                self.best_sem[i] = ev.sem
                self.best_pos[i] = self.pos[i].copy()
            if self._confidently_below(
                ev.estimate, ev.sem, self.gbest_val, self.gbest_sem
            ):
                self.gbest_val = ev.estimate
                self.gbest_sem = ev.sem
                self.gbest_pos = self.pos[i].copy()
        self._gen_values = {}
        self.n_iterations += 1

    def step(self) -> None:
        """One swarm iteration, re-expressed over the ask/tell seam:
        ask the full generation, answer every proposal from the underlying
        surface, and let the final tell merge and update incumbents."""
        for proposal in self.ask():
            self.tell(proposal.id, float(self.func.f(np.asarray(proposal.theta))))

    def run(self, n_iterations: int = 30) -> np.ndarray:
        """Run the swarm; returns the global-best position."""
        for _ in range(n_iterations):
            self.step()
        return self.gbest_pos.copy()


def pso_polish(
    func: StochasticFunction,
    bounds,
    dim: int,
    polish_algorithm: str = "PC",
    pso_iterations: int = 30,
    n_particles: int = 12,
    polish_step: float = 0.25,
    tau: float = 1e-3,
    walltime: float = 1e5,
    max_steps: int = 1000,
    seed: Optional[int] = None,
    **polish_options,
) -> OptimizationResult:
    """The §5.2 hybrid: global NoisyPSO, then an MN/PC simplex polish.

    The polish stage starts from an axis-aligned simplex of half-width
    ``polish_step`` around the swarm's best point and inherits the shared
    virtual clock, so the returned walltime covers both stages.
    """
    swarm = NoisyPSO(
        func, bounds, dim, n_particles=n_particles, rng=seed,
    )
    center = swarm.run(pso_iterations)
    vertices = initial_simplex(center, step=polish_step)
    termination = default_termination(tau=tau, walltime=walltime, max_steps=max_steps)
    opt = make_optimizer(
        polish_algorithm, func, vertices, termination=termination, **polish_options
    )
    result = opt.run()
    result.extra["pso_iterations"] = swarm.n_iterations
    result.extra["pso_best"] = center
    result.algorithm = f"PSO+{result.algorithm}"
    return result
