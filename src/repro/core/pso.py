"""Particle swarm with a noise-aware simplex polish (paper §5.2 future work).

"Particle swarm optimization (PSO) suffers from the disadvantage of slow
convergence in the refined search stages ... while the maxnoise,
point-to-point and simplex in general lack the ability to converge to a
global minimum but converge quickly to a local minimum.  An ability to use
PSO with maxnoise and point-to-point may prove to be another step forward."

This module implements exactly that combination: a global PSO stage over the
noisy objective (each particle's fitness is a sampled evaluation with the
usual ``sigma0/sqrt(t)`` error; the personal/global bests use a
confidence-interval update rule so noise does not corrupt the incumbent),
followed by an MN or PC local stage seeded with a simplex around the swarm's
best point.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.driver import make_optimizer
from repro.core.state import OptimizationResult
from repro.core.termination import default_termination
from repro.functions.suite import initial_simplex
from repro.noise.stochastic import SamplingPool, StochasticFunction


class NoisyPSO:
    """Global stage: particle swarm over a stochastic objective.

    Parameters
    ----------
    func:
        Stochastic objective.
    bounds:
        ``(low, high)`` arrays (or scalars) for the search box.
    n_particles:
        Swarm size.
    inertia, cognitive, social:
        Standard PSO coefficients.
    eval_time:
        Sampling time per fitness evaluation.
    k:
        Confidence width for incumbent updates: a particle replaces its
        personal/global best only when its interval is ``k`` sigma below the
        incumbent's — the PC idea applied to swarm bookkeeping.
    rng:
        Generator or seed for swarm initialization and velocity updates
        (independent from the objective's noise stream).
    """

    name = "PSO"

    def __init__(
        self,
        func: StochasticFunction,
        bounds,
        dim: int,
        n_particles: int = 12,
        inertia: float = 0.7,
        cognitive: float = 1.5,
        social: float = 1.5,
        eval_time: float = 1.0,
        k: float = 1.0,
        rng=None,
    ) -> None:
        if n_particles < 2:
            raise ValueError(f"n_particles must be >= 2, got {n_particles}")
        if not (eval_time > 0.0):
            raise ValueError(f"eval_time must be > 0, got {eval_time}")
        low, high = bounds
        self.low = np.broadcast_to(np.asarray(low, dtype=float), (dim,)).copy()
        self.high = np.broadcast_to(np.asarray(high, dtype=float), (dim,)).copy()
        if np.any(self.high <= self.low):
            raise ValueError("bounds must satisfy high > low elementwise")
        self.func = func
        self.dim = dim
        self.k = float(k)
        self.eval_time = float(eval_time)
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

        span = self.high - self.low
        self.pos = self.rng.uniform(self.low, self.high, size=(n_particles, dim))
        self.vel = self.rng.uniform(-span, span, size=(n_particles, dim)) * 0.1
        self.best_pos = self.pos.copy()
        self.best_val = np.empty(n_particles)
        self.best_sem = np.empty(n_particles)
        for i in range(n_particles):
            ev = self.func.evaluate(self.pos[i], self.eval_time)
            self.best_val[i] = ev.estimate
            self.best_sem[i] = ev.sem
        g = int(np.argmin(self.best_val))
        self.gbest_pos = self.best_pos[g].copy()
        self.gbest_val = float(self.best_val[g])
        self.gbest_sem = float(self.best_sem[g])
        self.n_iterations = 0

    def _confidently_below(self, val: float, sem: float, inc_val: float, inc_sem: float) -> bool:
        """PC-style incumbent update: k-sigma intervals must separate."""
        return val + self.k * sem < inc_val - self.k * inc_sem

    def step(self) -> None:
        """One swarm iteration: move, evaluate, update incumbents."""
        n = self.pos.shape[0]
        r1 = self.rng.random((n, self.dim))
        r2 = self.rng.random((n, self.dim))
        self.vel = (
            self.inertia * self.vel
            + self.cognitive * r1 * (self.best_pos - self.pos)
            + self.social * r2 * (self.gbest_pos[None, :] - self.pos)
        )
        self.pos = np.clip(self.pos + self.vel, self.low, self.high)
        for i in range(n):
            ev = self.func.evaluate(self.pos[i], self.eval_time)
            if self._confidently_below(
                ev.estimate, ev.sem, self.best_val[i], self.best_sem[i]
            ):
                self.best_val[i] = ev.estimate
                self.best_sem[i] = ev.sem
                self.best_pos[i] = self.pos[i].copy()
            if self._confidently_below(
                ev.estimate, ev.sem, self.gbest_val, self.gbest_sem
            ):
                self.gbest_val = ev.estimate
                self.gbest_sem = ev.sem
                self.gbest_pos = self.pos[i].copy()
        self.n_iterations += 1

    def run(self, n_iterations: int = 30) -> np.ndarray:
        """Run the swarm; returns the global-best position."""
        for _ in range(n_iterations):
            self.step()
        return self.gbest_pos.copy()


def pso_polish(
    func: StochasticFunction,
    bounds,
    dim: int,
    polish_algorithm: str = "PC",
    pso_iterations: int = 30,
    n_particles: int = 12,
    polish_step: float = 0.25,
    tau: float = 1e-3,
    walltime: float = 1e5,
    max_steps: int = 1000,
    seed: Optional[int] = None,
    **polish_options,
) -> OptimizationResult:
    """The §5.2 hybrid: global NoisyPSO, then an MN/PC simplex polish.

    The polish stage starts from an axis-aligned simplex of half-width
    ``polish_step`` around the swarm's best point and inherits the shared
    virtual clock, so the returned walltime covers both stages.
    """
    swarm = NoisyPSO(
        func, bounds, dim, n_particles=n_particles, rng=seed,
    )
    center = swarm.run(pso_iterations)
    vertices = initial_simplex(center, step=polish_step)
    termination = default_termination(tau=tau, walltime=walltime, max_steps=max_steps)
    opt = make_optimizer(
        polish_algorithm, func, vertices, termination=termination, **polish_options
    )
    result = opt.run()
    result.extra["pso_iterations"] = swarm.n_iterations
    result.extra["pso_best"] = center
    result.algorithm = f"PSO+{result.algorithm}"
    return result
