"""Algorithm 4 — point-to-point comparison combined with max-noise (PC+MN).

Both gates must pass for a move: the eq. 2.3 max-noise wait condition at the
top of each iteration *and* the per-comparison confidence-interval separation
of the PC algorithm (written in Algorithm 4 with bare sigma terms, i.e. the
PC width fixed at k = 1).  The stricter conditions slow each step down but
the steps that are taken are more reliable — the paper measures the same
final accuracy as PC with roughly 5x fewer simplex steps (178 vs 900 at
sigma0 = 1000, §3.3).

Under the ask/tell seam (:mod:`repro.core.base`) the two gates interleave as
alternating proposal rounds: first the MN wait refines all active vertices
(one round per unsatisfied eq. 2.3 check), then the PC comparison sites add
their own rounds.  Nothing here overrides the seam — both gates funnel every
sample through :meth:`SamplingPool.advance`, which is the interception point.
"""

from __future__ import annotations

from typing import Optional

from repro.core.comparisons import ConditionSet
from repro.core.point_compare import PointComparison
from repro.core.termination import TerminationCriterion
from repro.noise.stochastic import SamplingPool, StochasticFunction


class PCMaxNoise(PointComparison):
    """PC+MN: the PC step behind the MN sampling gate.

    Parameters
    ----------
    k_mn:
        Constant of the max-noise gate (eq. 2.3).
    k:
        Confidence width for the PC comparisons; Algorithm 4 uses bare sigma
        terms, so this defaults to 1 and normally stays there.
    """

    name = "PC+MN"

    def __init__(
        self,
        func: StochasticFunction,
        initial_vertices,
        *,
        k_mn: float = 2.0,
        k: float = 1.0,
        conditions: Optional[ConditionSet] = None,
        wait_dt: float = 1.0,
        wait_growth: float = 1.6,
        termination: Optional[TerminationCriterion] = None,
        pool: Optional[SamplingPool] = None,
        **kwargs,
    ) -> None:
        if not (k_mn > 0.0):
            raise ValueError(f"k_mn must be > 0, got {k_mn!r}")
        if not (wait_dt > 0.0):
            raise ValueError(f"wait_dt must be > 0, got {wait_dt!r}")
        if not (wait_growth >= 1.0):
            raise ValueError(f"wait_growth must be >= 1, got {wait_growth!r}")
        super().__init__(
            func,
            initial_vertices,
            k=k,
            conditions=conditions,
            termination=termination,
            pool=pool,
            **kwargs,
        )
        self.k_mn = float(k_mn)
        self.wait_dt = float(wait_dt)
        self.wait_growth = float(wait_growth)

    def _gate_satisfied(self) -> bool:
        max_var = float(self.simplex.variances().max())
        return max_var <= self.k_mn * self.simplex.internal_variance()

    def _wait_for_gate(self) -> None:
        dt = self.wait_dt
        while not self._gate_satisfied():
            self._check_interrupt()
            self._wait(dt)
            self._step_resamples += 1
            dt *= self.wait_growth

    def _decide_step(self) -> str:
        self._wait_for_gate()
        return super()._decide_step()


#: Alias used in tables and figures.
PCMN = PCMaxNoise
