"""Simplex geometry and bookkeeping (paper §2.1-§2.2).

A d-dimensional simplex is ``d+1`` vertices; here each vertex is a
:class:`~repro.noise.evaluation.VertexEvaluation` so the geometric object also
carries the noisy objective estimates the move decisions are made from.

The transformation operations use the paper's coefficients (``alpha=1``
reflection, ``gamma=2`` expansion, ``beta=0.5`` contraction):

* reflection   ``ref = (1+alpha) cent - alpha max      = 2 cent - max``
* expansion    ``exp = gamma ref - (gamma-1) cent      = 2 ref - cent``
* contraction  ``con = beta max + (1-beta) cent        = 0.5 max + 0.5 cent``
* collapse     ``theta_i <- 0.5 theta_i + 0.5 theta_min`` for all i != min

The *contraction level* ``l`` tracks the size of the simplex as a power of two
of its initial size (§2.2): contraction increments ``l``, expansion decrements
it, reflection leaves it unchanged and a collapse adds ``d``.  The Anderson
criterion (eq. 2.4) keys its noise threshold off ``l``.

This module sits *below* the ask/tell seam and deliberately does not route
through it: the transformations are pure geometry over already-merged
estimates — they read vertex positions and values but never sample, so there
is no evaluation traffic here to intercept.  All sampling triggered by a
transformation (activating the trial point, gate waits) flows through
:class:`~repro.noise.stochastic.SamplingPool`, which is the seam's single
interception point.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.noise.evaluation import VertexEvaluation

# -- pure geometric transforms (stateless, shared with the Anderson search) --


def reflect_point(cent: np.ndarray, worst: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Reflection of ``worst`` through the centroid ``cent``."""
    return (1.0 + alpha) * cent - alpha * worst


def expand_point(ref: np.ndarray, cent: np.ndarray, gamma: float = 2.0) -> np.ndarray:
    """Expansion past the reflected point ``ref`` away from ``cent``."""
    return gamma * ref - (gamma - 1.0) * cent


def contract_point(worst: np.ndarray, cent: np.ndarray, beta: float = 0.5) -> np.ndarray:
    """Contraction of ``worst`` toward the centroid ``cent``."""
    return beta * worst + (1.0 - beta) * cent


def collapse_point(theta: np.ndarray, theta_min: np.ndarray) -> np.ndarray:
    """Collapse of a vertex halfway toward the best vertex."""
    return 0.5 * (theta + theta_min)


def diameter(points: Sequence[np.ndarray]) -> float:
    """Simplex "diameter" D = max pairwise distance (eq. 2.2)."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"expected a stack of points, got shape {pts.shape}")
    # pairwise distances without scipy: ||a-b||^2 = |a|^2 + |b|^2 - 2 a.b
    sq = np.einsum("ij,ij->i", pts, pts)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (pts @ pts.T)
    np.maximum(d2, 0.0, out=d2)
    return float(np.sqrt(d2.max()))


class Simplex:
    """Ordered collection of ``d+1`` vertex evaluations plus size bookkeeping.

    Parameters
    ----------
    evaluations:
        Exactly ``d+1`` evaluations whose ``theta`` vectors all have length
        ``d`` and are affinely independent enough to span the space (a strict
        check is not enforced; a degenerate simplex still *works*, it just
        explores a subspace, matching standard NM behaviour).
    """

    def __init__(self, evaluations: Sequence[VertexEvaluation]) -> None:
        evals = list(evaluations)
        if len(evals) < 2:
            raise ValueError("a simplex needs at least 2 vertices (d >= 1)")
        dim = evals[0].theta.shape[0]
        if len(evals) != dim + 1:
            raise ValueError(
                f"{dim}-dim simplex requires {dim + 1} vertices, got {len(evals)}"
            )
        for ev in evals:
            if ev.theta.shape != (dim,):
                raise ValueError("vertex dimensionality mismatch")
        self.vertices: List[VertexEvaluation] = evals
        self.dim = dim
        self.contraction_level = 0  # l in §2.2
        self.initial_diameter = self.diameter()

    # -- ordering ----------------------------------------------------------

    def order(self) -> Tuple[VertexEvaluation, VertexEvaluation, VertexEvaluation]:
        """Return ``(min, smax, max)`` by the current (noisy) estimates.

        The identification of lowest / second-highest / highest vertices is
        done on plain estimates, as in the paper; it is the *move decisions*
        that get confidence treatment in the PC algorithms.
        """
        ordered = sorted(self.vertices, key=lambda ev: ev.estimate)
        return ordered[0], ordered[-2], ordered[-1]

    def best(self) -> VertexEvaluation:
        """Vertex with the lowest current estimate."""
        return min(self.vertices, key=lambda ev: ev.estimate)

    def worst(self) -> VertexEvaluation:
        """Vertex with the highest current estimate."""
        return max(self.vertices, key=lambda ev: ev.estimate)

    def estimates(self) -> np.ndarray:
        """Current objective estimates, one per vertex."""
        return np.array([ev.estimate for ev in self.vertices], dtype=float)

    def variances(self) -> np.ndarray:
        """Current noise variances ``sigma_i^2(t_i)``, one per vertex."""
        return np.array([ev.variance for ev in self.vertices], dtype=float)

    def internal_variance(self) -> float:
        """Mean squared deviation of the estimates from their mean.

        This is the "internal variance of the vertices themselves" that the
        MN gate (eq. 2.3) compares the worst-case noise variance against.
        """
        g = self.estimates()
        return float(np.mean((g - g.mean()) ** 2))

    # -- geometry ------------------------------------------------------------

    def points(self) -> np.ndarray:
        """Stack of vertex coordinates, shape ``(d+1, d)``."""
        return np.array([ev.theta for ev in self.vertices], dtype=float)

    def centroid_excluding(self, excluded: VertexEvaluation) -> np.ndarray:
        """Centroid of all vertices except ``excluded`` (normally the worst)."""
        pts = [ev.theta for ev in self.vertices if ev is not excluded]
        if len(pts) == len(self.vertices):
            raise ValueError("excluded vertex is not part of this simplex")
        return np.mean(pts, axis=0)

    def diameter(self) -> float:
        """Current simplex diameter (eq. 2.2)."""
        return diameter(self.points())

    # -- mutation -------------------------------------------------------------

    def replace(
        self, old: VertexEvaluation, new: VertexEvaluation, operation: str
    ) -> None:
        """Swap ``old`` for ``new`` and update the contraction level.

        ``operation`` must be ``"reflect"``, ``"expand"`` or ``"contract"``.
        """
        try:
            idx = self.vertices.index(old)
        except ValueError:
            raise ValueError("old vertex is not part of this simplex") from None
        self.vertices[idx] = new
        if operation == "reflect":
            pass
        elif operation == "expand":
            self.contraction_level -= 1
        elif operation == "contract":
            self.contraction_level += 1
        else:
            raise ValueError(f"unknown operation {operation!r}")

    def collapse(self, replacements: Sequence[VertexEvaluation]) -> None:
        """Replace every vertex except the current best with ``replacements``.

        The caller supplies the ``d`` new evaluations (at the halfway points);
        the contraction level increases by ``d`` (§2.2: "collapse operations
        increase l by d").
        """
        best = self.best()
        if len(replacements) != self.dim:
            raise ValueError(
                f"collapse needs {self.dim} replacement vertices, got {len(replacements)}"
            )
        self.vertices = [best, *replacements]
        self.contraction_level += self.dim

    def __len__(self) -> int:
        return len(self.vertices)

    def __iter__(self):
        return iter(self.vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simplex d={self.dim} l={self.contraction_level} "
            f"D={self.diameter():.4g} best={self.best().estimate:.6g}>"
        )
