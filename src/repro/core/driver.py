"""One-call front door for the optimizer family.

:func:`optimize` wires together a (possibly plain) objective, the noise
model, an initial simplex and an algorithm choice, and optionally performs
restarts (the paper's §1.3.5.1 note: the simplex "has also been used for
finding the global minima ... by restarting").

>>> from repro import optimize
>>> result = optimize("rosenbrock", dim=3, algorithm="PC", sigma0=100.0,
...                   seed=7, walltime=1e5)
>>> result.best_theta.shape
(3,)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type, Union

import numpy as np

from repro.core.anderson import AndersonSimplex
from repro.core.base import SimplexOptimizer
from repro.core.maxnoise import MaxNoise
from repro.core.nelder_mead import NelderMead
from repro.core.pc_maxnoise import PCMaxNoise
from repro.core.point_compare import PointComparison
from repro.core.state import OptimizationResult
from repro.core.termination import default_termination
from repro.functions import get_function, initial_simplex, random_vertices
from repro.functions.suite import TestFunction
from repro.noise.stochastic import StochasticFunction

#: Registry of the paper's algorithms, keyed by their table/figure names.
ALGORITHMS: Dict[str, Type[SimplexOptimizer]] = {
    "DET": NelderMead,
    "MN": MaxNoise,
    "PC": PointComparison,
    "PC+MN": PCMaxNoise,
    "ANDERSON": AndersonSimplex,
}


def make_optimizer(
    algorithm: str,
    func: StochasticFunction,
    vertices: np.ndarray,
    **options,
) -> SimplexOptimizer:
    """Instantiate an optimizer by its paper name (case-insensitive)."""
    key = algorithm.upper()
    try:
        cls = ALGORITHMS[key]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None
    return cls(func, vertices, **options)


def optimize(
    objective: Union[str, Callable, TestFunction, StochasticFunction],
    *,
    algorithm: str = "PC",
    dim: Optional[int] = None,
    vertices=None,
    x0=None,
    step: float = 1.0,
    sigma0: float = 0.0,
    noise_mode: str = "average",
    sigma_known: bool = True,
    seed: Optional[int] = None,
    tau: float = 1e-8,
    walltime: float = 1e7,
    max_steps: int = 100_000,
    warmup: float = 1.0,
    restarts: int = 0,
    **options,
) -> OptimizationResult:
    """Minimize a (possibly noisy) objective with one of the paper's algorithms.

    Parameters
    ----------
    objective:
        A registered function name (``"rosenbrock"`` requires ``dim``), a
        plain callable, a :class:`TestFunction` or an already-wrapped
        :class:`StochasticFunction`.
    vertices / x0:
        Either an explicit ``(d+1, d)`` initial simplex, or a starting point
        from which an axis-aligned simplex of the given ``step`` is built.  If
        neither is given, a random simplex over [-5, 5) is drawn (needs
        ``dim``).
    sigma0, noise_mode, sigma_known, seed:
        Noise-model parameters (ignored when ``objective`` is already a
        :class:`StochasticFunction`).
    tau, walltime, max_steps:
        Termination criteria (eq. 2.9 tolerance, virtual walltime, safety).
    restarts:
        Number of times to restart the simplex around the incumbent best
        point with a shrinking step (global-search extension; 0 = off).
    options:
        Forwarded to the algorithm constructor (``k``, ``conditions``, ...).
    """
    rng = np.random.default_rng(seed)
    if isinstance(objective, StochasticFunction):
        func = objective
    else:
        if isinstance(objective, str):
            if dim is None:
                raise ValueError("dim is required when naming a test function")
            objective = get_function(objective, dim)
        func = StochasticFunction(
            objective,
            sigma0=sigma0,
            mode=noise_mode,
            rng=rng,
            sigma_known=sigma_known,
        )

    if vertices is not None:
        verts = np.asarray(vertices, dtype=float)
    elif x0 is not None:
        verts = initial_simplex(x0, step=step)
    else:
        if dim is None:
            raise ValueError("provide vertices, x0, or dim for a random simplex")
        verts = random_vertices(dim, rng=rng)

    termination = default_termination(tau=tau, walltime=walltime, max_steps=max_steps)

    best: Optional[OptimizationResult] = None
    current_verts = verts
    current_step = step
    for attempt in range(restarts + 1):
        opt = make_optimizer(
            algorithm,
            func,
            current_verts,
            warmup=warmup,
            termination=termination,
            **options,
        )
        result = opt.run()
        if best is None or result.best_estimate < best.best_estimate:
            best = result
        if attempt < restarts:
            current_step = max(current_step * 0.5, 1e-6)
            current_verts = initial_simplex(best.best_theta, step=current_step)
    assert best is not None
    best.extra["restarts"] = restarts
    return best
