"""Algorithm 3 — the point-to-point comparison (PC) algorithm.

PC fixes MN's weakness (one noisy vertex that does not even influence the
move can hold the whole simplex hostage) by comparing only the *significant*
vertices pairwise, each at a chosen confidence: a comparison is accepted only
when the two k-sigma intervals are disjoint, and the involved points are
resampled until that happens.  Sampling proceeds "until the point where the
simplex transformation can be made at the chosen accuracy" (§2.3).

The seven comparison sites (c1..c7) and their pairings:

    c1 / c5:  ref vs smax  — enter the accept branch / the contract branch
    c2:       ref vs min   — accept reflection without trying expansion
    c3 / c4:  exp vs ref   — accept expansion / fall back to reflection
    c6 / c7:  con vs max   — accept contraction / collapse

Which sites carry error bars is configurable via
:class:`~repro.core.comparisons.ConditionSet` — the ablation axis of
Figs. 3.8-3.17.  A site without error bars decides on plain means and never
triggers resampling.

Through the ask/tell seam (:mod:`repro.core.base`) each resampling wait at a
comparison site is one proposal round over the currently active vertices —
the trial point under comparison samples alongside the simplex, so a round
may carry up to ``dim + 2`` proposals.  Comparison decisions themselves read
only merged estimates and never cross the seam.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.core import simplex as geom
from repro.core.base import SimplexOptimizer
from repro.core.comparisons import ConditionSet, Decision
from repro.core.termination import TerminationCriterion
from repro.noise.evaluation import VertexEvaluation
from repro.noise.stochastic import SamplingPool, StochasticFunction


class PointComparison(SimplexOptimizer):
    """PC: every simplex move justified by disjoint confidence intervals.

    Parameters
    ----------
    k:
        Confidence width in standard errors (paper compares k=1 vs k=2,
        Fig. 3.7; Algorithm 3 is written with a generic k).
    conditions:
        Which sites use error bars (default: all seven, the strict "c1-7"
        implementation of Algorithm 3 as printed).
    resample_dt, resample_growth:
        Initial resampling quantum and geometric growth factor for
        undecidable comparisons.
    max_resample_rounds:
        Budget per comparison; beyond it the decision is *forced* on plain
        means (the paper notes coincidentally near-identical vertices would
        otherwise sample forever, §2.3).
    """

    name = "PC"

    def __init__(
        self,
        func: StochasticFunction,
        initial_vertices,
        *,
        k: float = 1.0,
        conditions: Optional[ConditionSet] = None,
        resample_dt: float = 1.0,
        resample_growth: float = 1.6,
        max_resample_rounds: int = 60,
        termination: Optional[TerminationCriterion] = None,
        pool: Optional[SamplingPool] = None,
        **kwargs,
    ) -> None:
        if not (k > 0.0):
            raise ValueError(f"k must be > 0, got {k!r}")
        if not (resample_dt > 0.0):
            raise ValueError(f"resample_dt must be > 0, got {resample_dt!r}")
        if not (resample_growth >= 1.0):
            raise ValueError(f"resample_growth must be >= 1, got {resample_growth!r}")
        if max_resample_rounds < 1:
            raise ValueError(f"max_resample_rounds must be >= 1, got {max_resample_rounds!r}")
        super().__init__(
            func, initial_vertices, termination=termination, pool=pool, **kwargs
        )
        self.k = float(k)
        self.conditions = conditions if conditions is not None else ConditionSet.all()
        self.resample_dt = float(resample_dt)
        self.resample_growth = float(resample_growth)
        self.max_resample_rounds = int(max_resample_rounds)

    # -- gated comparisons ------------------------------------------------------

    def _interval(self, ev: VertexEvaluation, with_bars: bool) -> Tuple[float, float]:
        """(lower, upper) of the k-sigma interval; degenerate without bars."""
        if not with_bars:
            return ev.estimate, ev.estimate
        half = self.k * ev.sem
        if not math.isfinite(half):
            half = math.inf
        return ev.estimate - half, ev.estimate + half

    def _test_below(self, a: VertexEvaluation, b: VertexEvaluation, bars: bool) -> bool:
        """Site test ``g(a) + k sigma_a < g(b) - k sigma_b`` (bars optional)."""
        _, upper_a = self._interval(a, bars)
        lower_b, _ = self._interval(b, bars)
        return upper_a < lower_b

    def _test_not_below(self, a: VertexEvaluation, b: VertexEvaluation, bars: bool) -> bool:
        """Site test ``g(a) - k sigma_a >= g(b) + k sigma_b`` (bars optional)."""
        lower_a, _ = self._interval(a, bars)
        _, upper_b = self._interval(b, bars)
        return lower_a >= upper_b

    def _decide_pair(
        self,
        a: VertexEvaluation,
        b: VertexEvaluation,
        site_below: int,
        site_not_below: int,
    ) -> Decision:
        """Resolve a paired condition (c1/c5, c3/c4 or c6/c7), resampling as needed.

        Returns :data:`Decision.BELOW` when the ``site_below`` condition fires
        and :data:`Decision.NOT_BELOW` when ``site_not_below`` fires.  If the
        resampling budget is exhausted the decision is forced on plain means.
        """
        bars_below = self.conditions.uses(site_below)
        bars_not = self.conditions.uses(site_not_below)
        dt = self.resample_dt
        rounds = 0
        while True:
            if self._test_below(a, b, bars_below):
                self.stats.record(rounds, was_forced=False)
                return Decision.BELOW
            if self._test_not_below(a, b, bars_not):
                self.stats.record(rounds, was_forced=False)
                return Decision.NOT_BELOW
            if rounds >= self.max_resample_rounds:
                self.stats.record(rounds, was_forced=True)
                return (
                    Decision.BELOW
                    if a.estimate < b.estimate
                    else Decision.NOT_BELOW
                )
            self._check_interrupt()
            self._wait(dt, targets=[a, b])
            self._step_resamples += 1
            rounds += 1
            dt *= self.resample_growth

    def _single_condition(
        self, a: VertexEvaluation, b: VertexEvaluation, site: int
    ) -> bool:
        """One-shot site (c2): ``g(a) - k sigma_a > g(b) + k sigma_b``.

        Algorithm 3 has no resample loop here — when uncertain the flow simply
        proceeds to the expansion attempt.
        """
        bars = self.conditions.uses(site)
        lower_a, _ = self._interval(a, bars)
        _, upper_b = self._interval(b, bars)
        return lower_a > upper_b

    # -- Algorithm 3 -------------------------------------------------------------

    def _decide_step(self) -> str:
        mn, smax, mx = self.simplex.order()
        cent, ref_theta = self._trial_points(mx)
        ref = self._activate(ref_theta, label="ref")
        branch = self._decide_pair(ref, smax, site_below=1, site_not_below=5)
        if branch is Decision.BELOW:  # condition 1
            if self._single_condition(ref, mn, site=2):  # condition 2
                self._accept(mx, ref, "reflect")
                return "reflect"
            exp_theta = geom.expand_point(ref.theta, cent, self.gamma)
            exp = self._activate(exp_theta, label="exp")
            verdict = self._decide_pair(exp, ref, site_below=3, site_not_below=4)
            if verdict is Decision.BELOW:  # condition 3
                self._accept(mx, exp, "expand")
                self._discard(ref)
                return "expand"
            # condition 4
            self._accept(mx, ref, "reflect")
            self._discard(exp)
            return "reflect"
        # condition 5
        con_theta = geom.contract_point(mx.theta, cent, self.beta)
        con = self._activate(con_theta, label="con")
        verdict = self._decide_pair(con, mx, site_below=6, site_not_below=7)
        if verdict is Decision.BELOW:  # condition 6
            self._accept(mx, con, "contract")
            self._discard(ref)
            return "contract"
        # condition 7
        self._discard(ref, con)
        self._do_collapse(mn)
        return "collapse"


#: Alias used in tables and figures.
PC = PointComparison
