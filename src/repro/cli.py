"""Command-line interface: ``repro-opt`` (or ``python -m repro``).

Subcommands:

* ``run``     — optimize a named test function with one of the paper's
  algorithms under the eq. 1.1/1.2 noise model.
* ``water``   — reparameterize TIP4P on the calibrated surrogate from the
  Table 3.4a initial simplex.
* ``scaleup`` — the Fig. 3.18 scale-up study on the virtual cluster.
* ``optroot`` — inspect an $OPTROOT directory tree (systems, phases,
  processor count, property specs).
* ``campaign`` — durable, parallel, resumable experiment sweeps
  (``campaign run | serve | status | watch | metrics | summary |
  compare | compact | migrate-store | store-serve``); see
  :mod:`repro.campaign` and ``docs/CAMPAIGNS.md``.
  ``run --backend mw`` distributes jobs through the :mod:`repro.mw`
  master-worker layer, and several runner processes pointed at the same
  directory cooperatively drain one campaign — claim leases (on by
  default; ``--lease-ttl``, ``--no-lease``) guarantee exactly one runner
  executes each job.  ``--store jsonl|jsonl:N|sqlite|store://host:port``
  picks the result store engine (``--shards N`` is shorthand for
  ``jsonl:N``; ``store://`` talks to a ``campaign store-serve`` process
  over TCP, so runners need no shared filesystem); ``campaign
  migrate-store`` converts an existing campaign between engines or shard
  counts.  With ``--transport tcp://host:port`` the master listens for
  remote workers instead of spawning local ones.  ``run --telemetry``
  (or ``$REPRO_TELEMETRY=1``) records metrics and a job-lifecycle trace
  to ``<dir>/telemetry.jsonl``; ``campaign metrics`` exports them as
  Prometheus text or JSON (see ``docs/OBSERVABILITY.md``).
  ``campaign serve DIR1 DIR2 …`` drains many campaigns (tenants)
  through one long-lived master and one worker fleet: dispatch slots
  are shared by deficit-weighted round-robin (``--weight``,
  ``--quota``) and each tenant's constraint vector only places on
  workers whose declared capabilities cover it (``--worker-caps`` for
  local transports, ``mw-worker --caps`` over tcp).
* ``mw-worker`` — standalone TCP worker: connects to a master at
  ``tcp://host:port`` and serves tasks until the master shuts down.
  Start any number of these on any hosts that can reach the master; no
  shared filesystem is needed.  ``--caps md,fast`` declares the
  capability vector the worker advertises in its hello handshake.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core import optimize

    extra = {}
    if args.algorithm.upper() == "ANDERSON":
        extra["k1"] = args.k1
    result = optimize(
        args.function,
        dim=args.dim,
        algorithm=args.algorithm,
        sigma0=args.sigma0,
        seed=args.seed,
        tau=args.tau,
        walltime=args.walltime,
        max_steps=args.max_steps,
        **extra,
    )
    print(f"algorithm : {result.algorithm}")
    print(f"best theta: {np.array2string(result.best_theta, precision=5)}")
    print(f"estimate  : {result.best_estimate:.6g}")
    print(f"true value: {result.best_true:.6g}")
    print(f"steps     : {result.n_steps} ({result.reason})")
    print(f"walltime  : {result.walltime:.4g} virtual seconds")
    return 0


def _cmd_water(args: argparse.Namespace) -> int:
    from repro.water import TIP4P_PUBLISHED, parameterize_water

    result = parameterize_water(
        algorithm=args.algorithm,
        seed=args.seed,
        walltime=args.walltime,
        max_steps=args.max_steps,
        tau=args.tau,
    )
    eps, sig, qh = result.best_theta
    print(f"algorithm : {result.algorithm}")
    print(f"epsilon   : {eps:.4f} kcal/mol  (published TIP4P: {TIP4P_PUBLISHED[0]})")
    print(f"sigma     : {sig:.4f} A         (published TIP4P: {TIP4P_PUBLISHED[1]})")
    print(f"qH        : {qh:.4f} e          (published TIP4P: {TIP4P_PUBLISHED[2]})")
    print(f"final cost: {result.best_true:.4f}")
    print(f"steps     : {result.n_steps} ({result.reason})")
    return 0


def _cmd_scaleup(args: argparse.Namespace) -> int:
    from repro.cluster import Cluster, SimulatedMWPool
    from repro.core import MaxNoise, default_termination
    from repro.functions import Rosenbrock, random_vertices
    from repro.noise import StochasticFunction

    cluster = Cluster.palmetto(n_nodes=args.nodes)
    for d in args.dims:
        func = StochasticFunction(Rosenbrock(d), sigma0=0.0, rng=np.random.default_rng(d))
        pool = SimulatedMWPool(func, cluster, dim=d, ns=args.ns)
        vertices = random_vertices(d, low=-5.0, high=5.0, rng=np.random.default_rng(args.seed))
        opt = MaxNoise(
            func,
            vertices,
            k=2.0,
            pool=pool,
            termination=default_termination(
                tau=1e-12, walltime=args.walltime, max_steps=args.max_steps
            ),
        )
        result = opt.run()
        print(
            f"d={d:4d}  cores={pool.allocation.total:4d}  steps={result.n_steps:4d}  "
            f"time/step={result.walltime / max(result.n_steps, 1):8.3f}  "
            f"overhead={pool.comm_overhead:9.2f}"
        )
    return 0


def _cmd_optroot(args: argparse.Namespace) -> int:
    from repro.optroot import OptRoot, load_input, load_property_specs

    root = OptRoot(args.root)
    systems = root.systems()
    print(f"OPTROOT : {root.root}")
    print(f"systems : {systems}")
    for system in systems:
        phases = root.phases(system)
        print(f"  {system}: {len(phases)} phase(s)")
    print(f"processors required: {root.n_processors_required()}")
    try:
        config = load_input(root)
        print(f"parameters: {config.names} ({len(config.vertices)} vertex rows)")
    except FileNotFoundError:
        print("parameters: <no input file>")
    try:
        specs = load_property_specs(root)
        print(f"properties: {sorted(specs)}")
    except (FileNotFoundError, ValueError):
        print("properties: <none>")
    return 0


def _campaign_spec_from_args(args: argparse.Namespace):
    from repro.campaign import CampaignSpec

    if args.spec is not None:
        return CampaignSpec.load(args.spec)
    return CampaignSpec(
        name=args.name,
        algorithms=list(args.algorithms),
        functions=list(args.functions),
        dims=list(args.dims),
        sigma0s=list(args.sigma0s),
        seeds=args.seeds,
        n_seeds=args.n_seeds,
        base_seed=args.base_seed,
        noise_mode=args.noise_mode,
        tau=args.tau,
        walltime=args.walltime,
        max_steps=args.max_steps,
    )


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import DEFAULT_LEASE_TTL, SPEC_FILENAME, Campaign
    from repro.telemetry import TELEMETRY_ENV
    from pathlib import Path

    if args.telemetry:
        # Through the environment rather than a parameter so pool / mw
        # worker subprocesses inherit the decision too.
        os.environ[TELEMETRY_ENV] = "1"
    spec = None
    if (Path(args.directory) / SPEC_FILENAME).exists():
        if args.spec is not None:
            spec = _campaign_spec_from_args(args)  # mismatch is an error
        else:
            print("resuming existing campaign (grid flags ignored; spec.json rules)")
    else:
        spec = _campaign_spec_from_args(args)
    try:
        campaign = Campaign(args.directory, spec=spec, shards=args.shards,
                            store=args.store)
    except ValueError as exc:  # conflicting spec / shard count / engine
        print(f"error: {exc}", file=sys.stderr)
        return 2
    progress_cb = None
    if args.progress:
        def progress_cb(snap):
            print(snap.line(), flush=True)
    backend = args.backend
    if backend is None:
        backend = "mw" if args.async_mode else "serial"
    if args.async_mode and backend != "mw":
        print("error: --async schedules through the mw driver; "
              "drop --backend or pass --backend mw", file=sys.stderr)
        return 2
    if args.eval_batch > 1 and not args.async_mode:
        print("error: --eval-batch batches ask/tell proposals, which only "
              "exist under --async", file=sys.stderr)
        return 2
    if backend == "mw":
        from repro.campaign.runner import validate_mw_transport

        try:
            validate_mw_transport(args.mw_transport)
        except ValueError as exc:  # a typo'd --transport fails up front
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = campaign.run(
        backend=backend,
        max_workers=args.max_workers,
        chunksize=args.chunksize,
        batch_size=args.batch_size,
        max_jobs=args.max_jobs,
        mw_transport=args.mw_transport,
        mw_affinity=args.mw_affinity,
        async_mode=args.async_mode,
        max_inflight=args.max_inflight,
        eval_batch=args.eval_batch,
        flush_interval=args.flush_interval,
        stagger=args.stagger,
        lease=args.lease,
        lease_ttl=(DEFAULT_LEASE_TTL if args.lease_ttl is None
                   else args.lease_ttl),
        progress=progress_cb,
    )
    print(f"campaign  : {campaign.spec.name}")
    print(f"directory : {campaign.directory}")
    print(f"backend   : {backend}" + (" (async)" if args.async_mode else ""))
    print(f"report    : {report}")
    if report.interrupted or report.n_remaining > 0:
        print("resume    : re-run the same command to finish the remaining jobs")
    return 130 if report.interrupted else 0


def _open_campaign(directory):
    """Open an existing campaign or exit with a clean error (rc 2)."""
    from repro.campaign import Campaign

    try:
        return Campaign(directory)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _parse_name_value(pairs, flag, cast):
    """``NAME=VALUE`` repeatable-flag pairs -> {name: cast(value)}."""
    out = {}
    for pair in pairs or []:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ValueError(f"{flag} expects NAME=VALUE, got {pair!r}")
        out[name] = cast(value)
    return out


def _cmd_campaign_serve(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.campaign import DEFAULT_LEASE_TTL, MultiCampaignMaster, serve_status
    from repro.telemetry import TELEMETRY_ENV

    if args.status:
        try:
            rows = serve_status(args.directories)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for row in rows:
            if args.json:
                print(json.dumps(row), flush=True)
            else:
                cons = ",".join(row["constraints"]) or "-"
                quota = row["max_inflight"] if row["max_inflight"] else "-"
                print(f"{row['name']:<20} {row['done']:>6}/{row['n_jobs']:<6} "
                      f"done  {row['pending']:>5} pending  "
                      f"w={row['weight']:g} prio={row['priority']} "
                      f"caps={cons} quota={quota}")
        return 0
    if args.telemetry:
        # Through the environment so mw worker subprocesses inherit it.
        os.environ[TELEMETRY_ENV] = "1"
    try:
        weights = _parse_name_value(args.weight, "--weight", float)
        quotas = _parse_name_value(args.quota, "--quota", int)
        worker_caps = {}
        for pair in args.worker_caps or []:
            rank, sep, caps = pair.partition("=")
            if not sep or not rank.isdigit():
                raise ValueError(
                    f"--worker-caps expects RANK=cap1,cap2, got {pair!r}"
                )
            worker_caps[int(rank)] = [c for c in caps.split(",") if c.strip()]
        master = MultiCampaignMaster(
            args.directories,
            transport=args.transport,
            max_workers=args.max_workers,
            weights=weights,
            quotas=quotas,
            worker_caps=worker_caps,
            batch_size=args.batch_size,
            lease=args.lease,
            lease_ttl=(DEFAULT_LEASE_TTL if args.lease_ttl is None
                       else args.lease_ttl),
            mw_max_retries=args.mw_max_retries,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"serving {len(master.tenants)} campaign(s) on {args.transport}: "
          f"{', '.join(sorted(master.tenants))}", flush=True)
    interrupted = False
    try:
        # Parsed by scripts and tests (ephemeral tcp ports), so the bound
        # address line is printed as soon as the transport is listening.
        def on_start(driver):
            address = getattr(driver.transport, "address", None)
            if address:
                print(f"listening at {address}", flush=True)

        reports = master.serve(timeout=args.timeout, on_start=on_start)
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        interrupted = True
        reports = {name: t.report(interrupted=True)
                   for name, t in master.tenants.items()}
    for name in sorted(reports):
        print(f"{name:<20} : {reports[name]}")
    return 130 if interrupted else 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    import json

    from repro.campaign import watch_campaign

    campaign = _open_campaign(args.directory)
    try:
        for snap in watch_campaign(
            campaign,
            interval=args.interval,
            max_ticks=1 if args.once else None,
        ):
            if args.json:
                print(json.dumps(snap.to_dict()), flush=True)
                continue
            print(snap.line(), flush=True)
            if args.cells:
                for cell in snap.cells:
                    print(cell.line(), flush=True)
                for worker in snap.workers:
                    print(worker.line(), flush=True)
    except KeyboardInterrupt:
        return 130
    return 0


def _cmd_campaign_metrics(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.telemetry import (
        TELEMETRY_FILENAME,
        merge_snapshots,
        read_trace,
        render_prometheus,
    )

    campaign = _open_campaign(args.directory)
    path = Path(campaign.directory) / TELEMETRY_FILENAME
    if not path.exists():
        print(
            f"error: no {TELEMETRY_FILENAME} in {campaign.directory}; "
            f"run the campaign with --telemetry (or $REPRO_TELEMETRY=1) first",
            file=sys.stderr,
        )
        return 2
    # Registries are process-local, so runners persist snapshots into the
    # trace; keep the latest snapshot per (run, runner) and merge those.
    latest = {}
    for event in read_trace(path):
        if event.get("event") == "metrics":
            latest[(event.get("run_id"), event.get("runner"))] = event["metrics"]
    if not latest:
        print(
            "error: the telemetry trace holds no metrics snapshots yet "
            "(is a run still in flight?)",
            file=sys.stderr,
        )
        return 2
    merged = merge_snapshots(latest.values())
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        print(render_prometheus(merged), end="")
    return 0


def _cmd_mw_worker(args: argparse.Namespace) -> int:
    from repro.mw.codec import CodecError
    from repro.mw.tcp import run_worker
    from repro.mw.transport import resolve_executor

    executor = None
    if args.executor is not None:
        try:
            executor = resolve_executor({"kind": "executor", "spec": args.executor})
        except (ImportError, AttributeError, ValueError) as exc:
            print(f"error: cannot resolve executor {args.executor!r}: {exc}",
                  file=sys.stderr)
            return 2
    caps = [c.strip() for c in (args.caps or "").split(",") if c.strip()]
    try:
        stats = run_worker(
            args.url, executor=executor, connect_timeout=args.connect_timeout,
            caps=caps,
        )
    except KeyboardInterrupt:
        return 130
    except (ImportError, AttributeError) as exc:
        # the master-advertised executor spec did not resolve on this host
        print(f"error: cannot resolve the master's executor spec: {exc}",
              file=sys.stderr)
        return 1
    except (OSError, CodecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if stats.get("refused"):
        print(f"refused by master: {stats['refused']}", file=sys.stderr)
        return 1
    print(
        f"worker rank {stats['rank']} finished: "
        f"{stats['executed']} tasks executed, {stats['errors']} errors"
    )
    return 0


def _cmd_campaign_store_serve(args: argparse.Namespace) -> int:
    from repro.campaign.backends import (
        ENGINE_SQLITE,
        ENGINE_STORE,
        StoreServer,
        is_store_url,
        parse_store_spec,
    )
    from repro.campaign.sharding import open_store, read_manifest

    try:
        engine, shards = parse_store_spec(args.store)
        if engine is not None and is_store_url(engine):
            raise ValueError(
                "store-serve serves a *local* store; --store must be a "
                "local engine (jsonl, jsonl:N, sqlite), not a store:// URL"
            )
        manifest = read_manifest(args.directory)
        if manifest is not None and manifest.get("engine") == ENGINE_STORE:
            raise ValueError(
                f"{args.directory} is a store:// *client* directory "
                f"(server {manifest.get('url')!r}); point store-serve at "
                f"the directory that holds the data"
            )
        if engine is None and shards is None and manifest is None:
            engine = ENGINE_SQLITE  # fresh directories default to sqlite
        backend = open_store(args.directory, shards=shards, engine=engine)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = StoreServer(backend, listen=args.listen)
    try:
        server.start()
    except OSError as exc:
        print(f"error: cannot listen on {args.listen}: {exc}", file=sys.stderr)
        backend.close()
        return 2
    # Parsed by scripts and tests (ephemeral --listen ports), so the
    # address line goes first and is flushed immediately.
    print(f"serving {args.directory} ({backend.engine}) at {server.address}",
          flush=True)
    print("press Ctrl-C to stop", flush=True)
    # Install our own INT/TERM handlers: a server backgrounded with `&`
    # from a non-interactive shell (the CI pattern) inherits SIGINT as
    # ignored, and SIGTERM is how process managers stop services — both
    # must shut the listener down cleanly, not leak it.
    import signal

    def _stop(signum, frame):
        raise KeyboardInterrupt

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, _stop)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        backend.close()
    return 0


def _cmd_campaign_compact(args: argparse.Namespace) -> int:
    campaign = _open_campaign(args.directory)
    stats = campaign.compact()
    n_shards = getattr(campaign.store, "n_shards", 1)
    layout = f"  ({n_shards} shards)" if n_shards > 1 else ""
    print(f"store     : {campaign.store.path}{layout}")
    print(
        f"records   : {stats.n_records_before} -> {stats.n_records_after} "
        f"({stats.n_dropped} duplicate/stale dropped)"
    )
    print(f"bytes     : {stats.bytes_before} -> {stats.bytes_after}")
    return 0


def _cmd_campaign_migrate_store(args: argparse.Namespace) -> int:
    from repro.campaign import migrate_store, parse_store_spec

    try:
        engine, shards = parse_store_spec(args.store)
        store, n_copied = migrate_store(
            args.source, args.dest, engine=engine, shards=shards
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    n_shards = getattr(store, "n_shards", 1)
    layout = f" ({n_shards} shards)" if n_shards > 1 else ""
    print(f"source    : {args.source}")
    print(f"dest      : {args.dest}")
    print(f"engine    : {store.engine}{layout}")
    print(f"records   : {n_copied} copied (leases are not migrated)")
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.analysis import format_table

    campaign = _open_campaign(args.directory)
    status = campaign.status()
    print(f"campaign  : {status['name']}")
    print(f"directory : {status['directory']}")
    if status["engine"] != "jsonl":
        print(f"store     : {status['engine']}")
    elif status["shards"] > 1:
        print(f"store     : {status['shards']} shards")
    claimed = f", {status['claimed']} claimed" if status["claimed"] else ""
    print(
        f"jobs      : {status['n_jobs']} total, {status['done']} done, "
        f"{status['failed']} failed (retried on next run), "
        f"{status['pending']} pending{claimed}"
    )
    rows = [
        [label, function, dim, f"{sigma0:g}",
         f"{counts['done']}/{counts['total']}", counts["claimed"]]
        for (label, _algo, function, dim, sigma0), counts in sorted(
            status["cells"].items()
        )
    ]
    print(format_table(
        ["variant", "function", "dim", "sigma0", "done", "claimed"], rows
    ))
    return 0


def _cmd_campaign_summary(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.campaign import CellSummary

    campaign = _open_campaign(args.directory)
    summaries = campaign.summary()
    if not summaries:
        print("no completed jobs yet")
        return 0
    print(
        format_table(
            CellSummary.header(),
            [s.as_row() for s in summaries],
            title=f"campaign {campaign.spec.name!r}: per-cell aggregates",
        )
    )
    return 0


def _cmd_campaign_compare(args: argparse.Namespace) -> int:
    campaign = _open_campaign(args.directory)
    try:
        cmp = campaign.compare(
            args.label_a,
            args.label_b,
            tie_width=args.tie_width,
            function=args.function,
            dim=args.dim,
            sigma0=args.sigma0,
            pooled=args.pooled,
        )
    except ValueError as exc:
        labels = sorted({r["job"]["label"] for r in campaign.store.completed()})
        print(f"error: {exc}; completed variants: {labels}", file=sys.stderr)
        return 2
    print(f"pairs        : {cmp.n_pairs} shared seeds")
    print(f"median ratio : {cmp.median:+.3f} decades (negative = {cmp.label_a} wins)")
    if cmp.median_ci is not None:
        ci = cmp.median_ci
        print(f"bootstrap CI : [{ci.low:+.3f}, {ci.high:+.3f}] at {ci.confidence:.0%}")
    s = cmp.sign
    print(
        f"sign test    : {s.n_wins} wins / {s.n_losses} losses / {s.n_ties} ties, "
        f"p = {s.p_value:.4f}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-opt",
        description="Automated, parallel optimization algorithms for stochastic functions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="optimize a test function")
    p_run.add_argument("--function", default="rosenbrock",
                       choices=["rosenbrock", "powell", "sphere", "quadratic", "rastrigin"])
    p_run.add_argument("--dim", type=int, default=3)
    p_run.add_argument("--algorithm", default="PC",
                       choices=["DET", "MN", "PC", "PC+MN", "ANDERSON"])
    p_run.add_argument("--sigma0", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--tau", type=float, default=1e-3)
    p_run.add_argument("--walltime", type=float, default=1e5)
    p_run.add_argument("--max-steps", type=int, default=2000)
    p_run.add_argument("--k1", type=float, default=2.0**10,
                       help="Anderson criterion cutoff (ANDERSON only)")
    p_run.set_defaults(func=_cmd_run)

    p_water = sub.add_parser("water", help="reparameterize TIP4P water")
    p_water.add_argument("--algorithm", default="MN",
                         choices=["DET", "MN", "PC", "PC+MN"])
    p_water.add_argument("--seed", type=int, default=0)
    p_water.add_argument("--tau", type=float, default=1e-3)
    p_water.add_argument("--walltime", type=float, default=3e5)
    p_water.add_argument("--max-steps", type=int, default=300)
    p_water.set_defaults(func=_cmd_water)

    p_scale = sub.add_parser("scaleup", help="MW scale-up study (Fig 3.18)")
    p_scale.add_argument("--dims", type=int, nargs="+", default=[20, 50, 100])
    p_scale.add_argument("--nodes", type=int, default=60)
    p_scale.add_argument("--ns", type=int, default=1)
    p_scale.add_argument("--seed", type=int, default=7)
    p_scale.add_argument("--walltime", type=float, default=5e4)
    p_scale.add_argument("--max-steps", type=int, default=150)
    p_scale.set_defaults(func=_cmd_scaleup)

    p_root = sub.add_parser("optroot", help="inspect an $OPTROOT tree")
    p_root.add_argument("root")
    p_root.set_defaults(func=_cmd_optroot)

    p_worker = sub.add_parser(
        "mw-worker",
        help="standalone TCP worker serving a remote mw master (no shared "
             "filesystem needed)",
    )
    p_worker.add_argument("url", help="the master's tcp://host:port")
    p_worker.add_argument("--executor", default=None, metavar="MODULE:ATTR",
                          help="executor override; by default the worker runs "
                               "the executor spec the master advertises")
    p_worker.add_argument("--connect-timeout", type=float, default=30.0,
                          help="seconds to keep retrying the initial "
                               "connection (workers may start before the "
                               "master)")
    p_worker.add_argument("--caps", default="", metavar="CAP[,CAP...]",
                          help="capability vector this worker declares in its "
                               "hello (e.g. 'md,fast'); constraint-pinned "
                               "jobs only dispatch to workers whose caps "
                               "cover them")
    p_worker.set_defaults(func=_cmd_mw_worker)

    p_camp = sub.add_parser(
        "campaign", help="durable, parallel, resumable experiment sweeps"
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    p_crun = camp_sub.add_parser(
        "run", help="run (or resume) the pending jobs of a campaign"
    )
    p_crun.add_argument("directory", help="campaign directory (spec.json + results.jsonl)")
    p_crun.add_argument("--spec", default=None,
                        help="JSON spec file to initialise a new campaign from")
    p_crun.add_argument("--name", default="campaign")
    p_crun.add_argument("--algorithms", nargs="+",
                        default=["PC", "MN"],
                        choices=["DET", "MN", "PC", "PC+MN", "ANDERSON"])
    p_crun.add_argument("--functions", nargs="+", default=["rosenbrock"],
                        choices=["rosenbrock", "powell", "sphere", "quadratic", "rastrigin"])
    p_crun.add_argument("--dims", type=int, nargs="+", default=[4])
    p_crun.add_argument("--sigma0s", type=float, nargs="+", default=[1000.0])
    p_crun.add_argument("--seeds", type=int, nargs="+", default=None,
                        help="explicit seed list (default: SeedSequence-spawned)")
    p_crun.add_argument("--n-seeds", type=int, default=5)
    p_crun.add_argument("--base-seed", type=int, default=0)
    p_crun.add_argument("--noise-mode", default="resample",
                        choices=["average", "resample"])
    p_crun.add_argument("--tau", type=float, default=1e-3)
    p_crun.add_argument("--walltime", type=float, default=3e4)
    p_crun.add_argument("--max-steps", type=int, default=600)
    p_crun.add_argument("--backend", default=None,
                        choices=["serial", "thread", "process", "mw"],
                        help="mw dispatches jobs through the master-worker "
                             "driver (default: serial, or mw with --async)")
    p_crun.add_argument("--async", dest="async_mode", action="store_true",
                        help="barrier-free mw scheduling: every job's ask/tell "
                             "proposals share the worker pool, replies are "
                             "told back in arrival order, and a straggler "
                             "worker delays one evaluation instead of an "
                             "iteration (implies --backend mw; see "
                             "docs/CAMPAIGNS.md)")
    p_crun.add_argument("--max-inflight", type=int, default=None, metavar="N",
                        help="async mode: cap on simultaneously outstanding "
                             "evaluations across all jobs (default 2x workers, "
                             "or 2x --eval-batch if larger)")
    p_crun.add_argument("--eval-batch", type=int, default=1, metavar="Q",
                        help="async mode: proposals per mw frame; same-objective "
                             "proposals ride one frame and the worker evaluates "
                             "them in a single vectorized call, amortizing "
                             "codec/transport overhead on cheap objectives "
                             "(default 1: one task per proposal)")
    p_crun.add_argument("--flush-interval", type=float, default=2.0, metavar="S",
                        help="async mode: max seconds a finished job's record "
                             "may wait in the coalescing buffer before a "
                             "record_many flush (default 2.0)")
    p_crun.add_argument("--max-workers", type=int, default=None)
    p_crun.add_argument("--chunksize", type=int, default=1,
                        help="jobs per IPC message on the process backend")
    p_crun.add_argument("--batch-size", type=int, default=None,
                        help="jobs between store writes (resume granularity)")
    p_crun.add_argument("--max-jobs", type=int, default=None,
                        help="stop after this many jobs (smoke tests / partial runs)")
    p_crun.add_argument("--transport", "--mw-transport", dest="mw_transport",
                        default="process", metavar="TRANSPORT",
                        help="what mw workers run on (mw backend only): "
                             "inproc | threaded | process, or tcp://host:port "
                             "to listen for remote 'mw-worker' processes")
    p_crun.add_argument("--mw-affinity", action="store_true",
                        help="pin jobs round-robin to mw worker ranks")
    p_crun.add_argument("--store", default=None, metavar="ENGINE",
                        help="result store engine: jsonl (single file, the "
                             "default), jsonl:N (N sharded files), sqlite "
                             "(one transactional WAL database), or "
                             "store://host:port (a 'campaign store-serve' "
                             "process — no shared filesystem needed); "
                             "existing stores auto-detect from "
                             "store-manifest.json")
    p_crun.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shorthand for --store jsonl:N — shard the "
                             "result store into N results-<k>.jsonl files "
                             "(migrates a legacy single-file store in place; "
                             "existing sharded stores auto-detect)")
    p_crun.add_argument("--no-lease", dest="lease", action="store_false",
                        help="disable claim leases and fall back to the "
                             "stagger+shed heuristic (duplicate in-flight "
                             "work possible)")
    p_crun.add_argument("--lease-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="seconds a claim survives without renewal — how "
                             "long a killed runner's jobs stay unavailable "
                             "(default 60)")
    p_crun.add_argument("--stagger", action="store_true",
                        help="start at a PID-derived grid offset so concurrent "
                             "runners drain disjoint regions (the --no-lease "
                             "fallback; harmless with leases)")
    p_crun.add_argument("--progress", action="store_true",
                        help="print a heartbeat line after every recorded batch")
    p_crun.add_argument("--telemetry", action="store_true",
                        help="record metrics and a job-lifecycle trace into "
                             "<dir>/telemetry.jsonl (same as $REPRO_TELEMETRY=1; "
                             "read back with 'campaign metrics')")
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cmulti = camp_sub.add_parser(
        "serve",
        help="drain many campaign directories through one shared worker "
             "fleet (multi-tenant scheduling; see docs/CAMPAIGNS.md)",
    )
    p_cmulti.add_argument("directories", nargs="+", metavar="DIRECTORY",
                          help="campaign directories (each spec.json names "
                               "one tenant; names must be unique)")
    p_cmulti.add_argument("--transport", default="process", metavar="TRANSPORT",
                          help="shared fleet transport: inproc | threaded | "
                               "process, or tcp://host:port to listen for "
                               "remote 'mw-worker [--caps ...]' processes")
    p_cmulti.add_argument("--max-workers", type=int, default=None,
                          help="worker rank slots (default: CPU count)")
    p_cmulti.add_argument("--weight", action="append", metavar="NAME=W",
                          help="override a tenant's dispatch-slot weight "
                               "(repeatable; default: the spec's weight)")
    p_cmulti.add_argument("--quota", action="append", metavar="NAME=N",
                          help="override a tenant's max inflight jobs "
                               "(repeatable; default: the spec's "
                               "max_inflight)")
    p_cmulti.add_argument("--worker-caps", action="append",
                          metavar="RANK=CAP[,CAP...]",
                          help="declare capability vectors for same-host "
                               "transports, e.g. --worker-caps 1=md,fast "
                               "(repeatable; tcp workers declare their own "
                               "via 'mw-worker --caps')")
    p_cmulti.add_argument("--batch-size", type=int, default=8,
                          help="jobs claimed per top-up per tenant (lease "
                               "granularity; default 8)")
    p_cmulti.add_argument("--no-lease", dest="lease", action="store_false",
                          help="disable claim leases (single-master setups "
                               "only; peers may duplicate work)")
    p_cmulti.add_argument("--lease-ttl", type=float, default=None,
                          metavar="SECONDS",
                          help="seconds a claim survives without renewal "
                               "(default 60)")
    p_cmulti.add_argument("--mw-max-retries", type=int, default=2,
                          help="dispatch retries before a task is failed")
    p_cmulti.add_argument("--timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="bound the whole serve in wall-clock seconds "
                               "(on tcp the master otherwise waits for "
                               "capable workers indefinitely)")
    p_cmulti.add_argument("--telemetry", action="store_true",
                          help="record repro_sched_* metrics and the job "
                               "trace (same as $REPRO_TELEMETRY=1)")
    p_cmulti.add_argument("--status", action="store_true",
                          help="print one status row per tenant (progress + "
                               "scheduling policy) and exit without serving")
    p_cmulti.add_argument("--json", action="store_true",
                          help="with --status: one JSON object per line")
    p_cmulti.set_defaults(func=_cmd_campaign_serve)

    p_cstat = camp_sub.add_parser("status", help="job counts and per-cell progress")
    p_cstat.add_argument("directory")
    p_cstat.set_defaults(func=_cmd_campaign_status)

    p_cwatch = camp_sub.add_parser(
        "watch", help="tail live progress (done/failed/remaining, rate, ETA)"
    )
    p_cwatch.add_argument("directory")
    p_cwatch.add_argument("--interval", type=float, default=2.0,
                          help="seconds between polls")
    p_cwatch.add_argument("--once", action="store_true",
                          help="print a single snapshot and exit")
    p_cwatch.add_argument("--cells", action="store_true",
                          help="append one line per grid cell (done/claimed/"
                               "failed counts) to every snapshot")
    p_cwatch.add_argument("--json", action="store_true",
                          help="emit one JSON object per refresh instead of "
                               "the human one-liner (for dashboards)")
    p_cwatch.set_defaults(func=_cmd_campaign_watch)

    p_cmetrics = camp_sub.add_parser(
        "metrics",
        help="merge the metrics snapshots from telemetry.jsonl and print "
             "them in Prometheus text exposition format",
    )
    p_cmetrics.add_argument("directory")
    p_cmetrics.add_argument("--json", action="store_true",
                            help="emit the merged snapshot as JSON instead of "
                                 "Prometheus text")
    p_cmetrics.set_defaults(func=_cmd_campaign_metrics)

    p_ccompact = camp_sub.add_parser(
        "compact", help="rewrite the result store one-line-per-job (atomic)"
    )
    p_ccompact.add_argument("directory")
    p_ccompact.set_defaults(func=_cmd_campaign_compact)

    p_cmig = camp_sub.add_parser(
        "migrate-store",
        help="copy a campaign's store into a fresh directory under a new "
             "engine or shard count (jsonl <-> sqlite, resharding); lossless "
             "and idempotent, leases not migrated",
    )
    p_cmig.add_argument("source", help="existing campaign directory")
    p_cmig.add_argument("dest", help="fresh destination directory")
    p_cmig.add_argument("--store", required=True, metavar="ENGINE",
                        help="destination engine: jsonl | jsonl:N | sqlite")
    p_cmig.set_defaults(func=_cmd_campaign_migrate_store)

    p_cserve = camp_sub.add_parser(
        "store-serve",
        help="serve a local result store over TCP for store:// runners "
             "(no shared filesystem needed; Ctrl-C to stop)",
    )
    p_cserve.add_argument("directory",
                          help="directory holding (or to hold) the store")
    p_cserve.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                          help="address to listen on (port 0 picks a free "
                               "port; the bound address is printed on "
                               "startup; default %(default)s)")
    p_cserve.add_argument("--store", default=None, metavar="ENGINE",
                          help="backing engine for a *fresh* directory: "
                               "jsonl | jsonl:N | sqlite (default sqlite); "
                               "existing stores auto-detect from "
                               "store-manifest.json")
    p_cserve.set_defaults(func=_cmd_campaign_store_serve)

    p_csum = camp_sub.add_parser("summary", help="per-cell aggregate table")
    p_csum.add_argument("directory")
    p_csum.set_defaults(func=_cmd_campaign_summary)

    p_ccmp = camp_sub.add_parser(
        "compare", help="paired comparison of two algorithm variants"
    )
    p_ccmp.add_argument("directory")
    p_ccmp.add_argument("label_a")
    p_ccmp.add_argument("label_b")
    p_ccmp.add_argument("--tie-width", type=float, default=0.5)
    p_ccmp.add_argument("--function", default=None,
                        help="restrict the comparison to one test function")
    p_ccmp.add_argument("--dim", type=int, default=None)
    p_ccmp.add_argument("--sigma0", type=float, default=None)
    p_ccmp.add_argument("--pooled", action="store_true",
                        help="deliberately pool pairs across grid cells")
    p_ccmp.set_defaults(func=_cmd_campaign_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
