"""Command-line interface: ``repro-opt`` (or ``python -m repro``).

Subcommands:

* ``run``     — optimize a named test function with one of the paper's
  algorithms under the eq. 1.1/1.2 noise model.
* ``water``   — reparameterize TIP4P on the calibrated surrogate from the
  Table 3.4a initial simplex.
* ``scaleup`` — the Fig. 3.18 scale-up study on the virtual cluster.
* ``optroot`` — inspect an $OPTROOT directory tree (systems, phases,
  processor count, property specs).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core import optimize

    extra = {}
    if args.algorithm.upper() == "ANDERSON":
        extra["k1"] = args.k1
    result = optimize(
        args.function,
        dim=args.dim,
        algorithm=args.algorithm,
        sigma0=args.sigma0,
        seed=args.seed,
        tau=args.tau,
        walltime=args.walltime,
        max_steps=args.max_steps,
        **extra,
    )
    print(f"algorithm : {result.algorithm}")
    print(f"best theta: {np.array2string(result.best_theta, precision=5)}")
    print(f"estimate  : {result.best_estimate:.6g}")
    print(f"true value: {result.best_true:.6g}")
    print(f"steps     : {result.n_steps} ({result.reason})")
    print(f"walltime  : {result.walltime:.4g} virtual seconds")
    return 0


def _cmd_water(args: argparse.Namespace) -> int:
    from repro.water import TIP4P_PUBLISHED, parameterize_water

    result = parameterize_water(
        algorithm=args.algorithm,
        seed=args.seed,
        walltime=args.walltime,
        max_steps=args.max_steps,
        tau=args.tau,
    )
    eps, sig, qh = result.best_theta
    print(f"algorithm : {result.algorithm}")
    print(f"epsilon   : {eps:.4f} kcal/mol  (published TIP4P: {TIP4P_PUBLISHED[0]})")
    print(f"sigma     : {sig:.4f} A         (published TIP4P: {TIP4P_PUBLISHED[1]})")
    print(f"qH        : {qh:.4f} e          (published TIP4P: {TIP4P_PUBLISHED[2]})")
    print(f"final cost: {result.best_true:.4f}")
    print(f"steps     : {result.n_steps} ({result.reason})")
    return 0


def _cmd_scaleup(args: argparse.Namespace) -> int:
    from repro.cluster import Cluster, SimulatedMWPool
    from repro.core import MaxNoise, default_termination
    from repro.functions import Rosenbrock, random_vertices
    from repro.noise import StochasticFunction

    cluster = Cluster.palmetto(n_nodes=args.nodes)
    for d in args.dims:
        func = StochasticFunction(Rosenbrock(d), sigma0=0.0, rng=np.random.default_rng(d))
        pool = SimulatedMWPool(func, cluster, dim=d, ns=args.ns)
        vertices = random_vertices(d, low=-5.0, high=5.0, rng=np.random.default_rng(args.seed))
        opt = MaxNoise(
            func,
            vertices,
            k=2.0,
            pool=pool,
            termination=default_termination(
                tau=1e-12, walltime=args.walltime, max_steps=args.max_steps
            ),
        )
        result = opt.run()
        print(
            f"d={d:4d}  cores={pool.allocation.total:4d}  steps={result.n_steps:4d}  "
            f"time/step={result.walltime / max(result.n_steps, 1):8.3f}  "
            f"overhead={pool.comm_overhead:9.2f}"
        )
    return 0


def _cmd_optroot(args: argparse.Namespace) -> int:
    from repro.optroot import OptRoot, load_input, load_property_specs

    root = OptRoot(args.root)
    systems = root.systems()
    print(f"OPTROOT : {root.root}")
    print(f"systems : {systems}")
    for system in systems:
        phases = root.phases(system)
        print(f"  {system}: {len(phases)} phase(s)")
    print(f"processors required: {root.n_processors_required()}")
    try:
        config = load_input(root)
        print(f"parameters: {config.names} ({len(config.vertices)} vertex rows)")
    except FileNotFoundError:
        print("parameters: <no input file>")
    try:
        specs = load_property_specs(root)
        print(f"properties: {sorted(specs)}")
    except (FileNotFoundError, ValueError):
        print("properties: <none>")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-opt",
        description="Automated, parallel optimization algorithms for stochastic functions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="optimize a test function")
    p_run.add_argument("--function", default="rosenbrock",
                       choices=["rosenbrock", "powell", "sphere", "quadratic", "rastrigin"])
    p_run.add_argument("--dim", type=int, default=3)
    p_run.add_argument("--algorithm", default="PC",
                       choices=["DET", "MN", "PC", "PC+MN", "ANDERSON"])
    p_run.add_argument("--sigma0", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--tau", type=float, default=1e-3)
    p_run.add_argument("--walltime", type=float, default=1e5)
    p_run.add_argument("--max-steps", type=int, default=2000)
    p_run.add_argument("--k1", type=float, default=2.0**10,
                       help="Anderson criterion cutoff (ANDERSON only)")
    p_run.set_defaults(func=_cmd_run)

    p_water = sub.add_parser("water", help="reparameterize TIP4P water")
    p_water.add_argument("--algorithm", default="MN",
                         choices=["DET", "MN", "PC", "PC+MN"])
    p_water.add_argument("--seed", type=int, default=0)
    p_water.add_argument("--tau", type=float, default=1e-3)
    p_water.add_argument("--walltime", type=float, default=3e5)
    p_water.add_argument("--max-steps", type=int, default=300)
    p_water.set_defaults(func=_cmd_water)

    p_scale = sub.add_parser("scaleup", help="MW scale-up study (Fig 3.18)")
    p_scale.add_argument("--dims", type=int, nargs="+", default=[20, 50, 100])
    p_scale.add_argument("--nodes", type=int, default=60)
    p_scale.add_argument("--ns", type=int, default=1)
    p_scale.add_argument("--seed", type=int, default=7)
    p_scale.add_argument("--walltime", type=float, default=5e4)
    p_scale.add_argument("--max-steps", type=int, default=150)
    p_scale.set_defaults(func=_cmd_scaleup)

    p_root = sub.add_parser("optroot", help="inspect an $OPTROOT tree")
    p_root.add_argument("root")
    p_root.set_defaults(func=_cmd_optroot)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
