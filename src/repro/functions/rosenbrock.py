"""The Rosenbrock "banana" function (eqs. 3.1-3.2).

The paper's workhorse test problem: a long, narrow, banana-shaped valley
containing the minimum at ``(1, ..., 1)`` that "discriminates well between
different methods".  The d-dimensional chained form used here,

    f(x) = sum_{i=2}^{d} [ (1 - x_{i-1})**2 + 100 (x_i - x_{i-1}**2)**2 ],

matches eq. 3.1 (d=3) and eq. 3.2 (d=4) and extends to the d=20/50/100
scale-up study of §3.4.
"""

from __future__ import annotations

import numpy as np

from repro.functions.suite import TestFunction


class Rosenbrock(TestFunction):
    """Chained d-dimensional Rosenbrock function with minimum 0 at ones."""

    name = "rosenbrock"

    def __init__(self, dim: int = 3) -> None:
        if dim < 2:
            raise ValueError(f"Rosenbrock needs dim >= 2, got {dim}")
        super().__init__(dim)

    def value(self, theta: np.ndarray) -> float:
        head = theta[:-1]
        tail = theta[1:]
        return float(
            np.sum((1.0 - head) ** 2) + 100.0 * np.sum((tail - head * head) ** 2)
        )

    def batch(self, thetas) -> np.ndarray:
        thetas = self._as_batch(thetas)
        head = thetas[:, :-1]
        tail = thetas[:, 1:]
        return np.sum((1.0 - head) ** 2, axis=1) + 100.0 * np.sum(
            (tail - head * head) ** 2, axis=1
        )

    def gradient(self, theta) -> np.ndarray:
        """Analytic gradient (used only by tests to verify the minimum)."""
        theta = np.asarray(theta, dtype=float)
        g = np.zeros_like(theta)
        head = theta[:-1]
        tail = theta[1:]
        # d/d head terms
        g[:-1] += -2.0 * (1.0 - head) - 400.0 * head * (tail - head * head)
        # d/d tail terms
        g[1:] += 200.0 * (tail - head * head)
        return g

    def minimizer(self) -> np.ndarray:
        return np.ones(self.dim)


def rosenbrock(theta) -> float:
    """Functional form; dimensionality inferred from the argument."""
    theta = np.asarray(theta, dtype=float)
    return Rosenbrock(theta.shape[0]).value(theta)
