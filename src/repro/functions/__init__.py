"""Benchmark objective functions used in the paper's evaluation.

The paper optimizes the Rosenbrock "banana" function in 3 and 4 (and, for the
scale-up study, up to 100) dimensions and the Powell singular function in 4
dimensions.  The suite also carries the extension functions called for by the
paper's future-work section (§5.2: "the suite of test problems ... should be
enlarged").
"""

from repro.functions.rosenbrock import Rosenbrock, rosenbrock
from repro.functions.powell import Powell, powell
from repro.functions.suite import (
    Quadratic,
    Rastrigin,
    Sphere,
    TestFunction,
    get_function,
    initial_simplex,
    random_vertices,
)

__all__ = [
    "Powell",
    "Quadratic",
    "Rastrigin",
    "Rosenbrock",
    "Sphere",
    "TestFunction",
    "get_function",
    "initial_simplex",
    "powell",
    "random_vertices",
    "rosenbrock",
]
