"""The Powell singular function (eq. 3.3).

    f(x) = (x1 + 10 x2)**2 + 5 (x3 - x4)**2 + (x2 - 2 x3)**4 + 10 (x1 - x4)**4

Minimum 0 at the origin; the Hessian there is singular, which makes the late
stages of any simplex method slow and noise-sensitive — exactly why the paper
uses it alongside Rosenbrock for the 4-d PC/PC+MN comparison (Fig. 3.6).

The class generalizes to ``dim`` a multiple of 4 by chaining independent
4-variable blocks (the standard extended-Powell construction); ``dim=4``
reproduces eq. 3.3 exactly.
"""

from __future__ import annotations

import numpy as np

from repro.functions.suite import TestFunction


class Powell(TestFunction):
    """Extended Powell singular function; minimum 0 at the origin."""

    name = "powell"

    def __init__(self, dim: int = 4) -> None:
        if dim < 4 or dim % 4 != 0:
            raise ValueError(f"Powell needs dim a positive multiple of 4, got {dim}")
        super().__init__(dim)

    def value(self, theta: np.ndarray) -> float:
        x = theta.reshape(-1, 4)
        x1, x2, x3, x4 = x[:, 0], x[:, 1], x[:, 2], x[:, 3]
        return float(
            np.sum(
                (x1 + 10.0 * x2) ** 2
                + 5.0 * (x3 - x4) ** 2
                + (x2 - 2.0 * x3) ** 4
                + 10.0 * (x1 - x4) ** 4
            )
        )

    def batch(self, thetas) -> np.ndarray:
        thetas = self._as_batch(thetas)
        x = thetas.reshape(thetas.shape[0], -1, 4)
        x1, x2, x3, x4 = x[..., 0], x[..., 1], x[..., 2], x[..., 3]
        return np.sum(
            (x1 + 10.0 * x2) ** 2
            + 5.0 * (x3 - x4) ** 2
            + (x2 - 2.0 * x3) ** 4
            + 10.0 * (x1 - x4) ** 4,
            axis=1,
        )

    def minimizer(self) -> np.ndarray:
        return np.zeros(self.dim)


def powell(theta) -> float:
    """Functional form of eq. 3.3 (or its extended version)."""
    theta = np.asarray(theta, dtype=float)
    return Powell(theta.shape[0]).value(theta)
