"""Common test-function machinery and the extension suite.

Every benchmark objective derives from :class:`TestFunction`, which records
the known minimizer/minimum so the analysis layer can compute the paper's
R (function-value error) and D (distance to solution) metrics without
re-deriving them per experiment.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Type

import numpy as np


class TestFunction:
    """A deterministic objective with known optimum.

    Subclasses implement :meth:`value`; vectorized batch evaluation via
    :meth:`batch` falls back to a loop unless overridden.

    Parameters
    ----------
    dim:
        Parameter-space dimensionality ``d``.
    """

    name: str = "abstract"

    def __init__(self, dim: int) -> None:
        dim = int(dim)
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim

    # -- required interface ----------------------------------------------

    def value(self, theta: np.ndarray) -> float:
        raise NotImplementedError

    def minimizer(self) -> np.ndarray:
        """Location of the (a) global minimum."""
        raise NotImplementedError

    def minimum(self) -> float:
        """Function value at the minimizer (0 for the whole suite)."""
        return 0.0

    # -- conveniences -------------------------------------------------------

    def __call__(self, theta) -> float:
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.dim,):
            raise ValueError(
                f"{self.name} expects shape ({self.dim},), got {theta.shape}"
            )
        return float(self.value(theta))

    def batch(self, thetas) -> np.ndarray:
        """Evaluate a ``(n, d)`` stack of points; returns shape ``(n,)``.

        Every suite member overrides this with a closed-form vectorized
        kernel (one numpy expression over the whole stack) — the hot path
        of batched evaluation (``--eval-batch``) and the batched sampling
        kernel in :mod:`repro.noise`.  This generic fallback exists for
        user-defined subclasses that only implement :meth:`value`; it
        preallocates the output and loops, and is the behavioural
        reference the suite-wide parity test pins every override to.
        """
        thetas = self._as_batch(thetas)
        out = np.empty(thetas.shape[0], dtype=float)
        for i in range(thetas.shape[0]):
            out[i] = self.value(thetas[i])
        return out

    def _as_batch(self, thetas) -> np.ndarray:
        """Validate and contiguize a ``(n, d)`` stack for a batch kernel.

        C-contiguity matters beyond speed: np.sum's pairwise accumulation
        over a contiguous row is bitwise the 1-d vector reduction, which
        is the value/batch equality every kernel override relies on.
        """
        thetas = np.ascontiguousarray(thetas, dtype=float)
        if thetas.ndim != 2 or thetas.shape[1] != self.dim:
            raise ValueError(
                f"{self.name} batch expects shape (n, {self.dim}), got {thetas.shape}"
            )
        return thetas

    def distance_to_solution(self, theta) -> float:
        """Euclidean distance from ``theta`` to the known minimizer (metric D)."""
        theta = np.asarray(theta, dtype=float)
        return float(np.linalg.norm(theta - self.minimizer()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(dim={self.dim})"


class Sphere(TestFunction):
    """``f(x) = sum(x**2)`` — the simplest convex sanity check."""

    name = "sphere"

    # value/batch share one reduction expression: np.sum's pairwise
    # accumulation is identical for a 1-d vector and for each row of a
    # C-contiguous stack, so batch(thetas)[i] == value(thetas[i]) bitwise
    # — the invariant the batched sampling kernel in repro.noise rests on.

    def value(self, theta: np.ndarray) -> float:
        return float(np.sum(theta * theta))

    def batch(self, thetas) -> np.ndarray:
        thetas = self._as_batch(thetas)
        return np.sum(thetas * thetas, axis=1)

    def minimizer(self) -> np.ndarray:
        return np.zeros(self.dim)


class Quadratic(TestFunction):
    """Anisotropic convex quadratic ``f(x) = sum(c_i * (x_i - m_i)**2)``.

    Useful for convergence property tests: the unique minimum and curvature
    are fully controlled.
    """

    name = "quadratic"

    def __init__(self, dim: int, scales=None, center=None) -> None:
        super().__init__(dim)
        self.scales = (
            np.ones(dim) if scales is None else np.asarray(scales, dtype=float)
        )
        self.center = (
            np.zeros(dim) if center is None else np.asarray(center, dtype=float)
        )
        if self.scales.shape != (dim,) or self.center.shape != (dim,):
            raise ValueError("scales/center must have shape (dim,)")
        if np.any(self.scales <= 0):
            raise ValueError("scales must be positive for a proper minimum")

    # Same bitwise value/batch contract as Sphere: one np.sum reduction
    # over ``scales * diff**2`` in both paths.

    def value(self, theta: np.ndarray) -> float:
        diff = theta - self.center
        return float(np.sum(self.scales * (diff * diff)))

    def batch(self, thetas) -> np.ndarray:
        diff = self._as_batch(thetas) - self.center
        return np.sum(self.scales * (diff * diff), axis=1)

    def minimizer(self) -> np.ndarray:
        return self.center.copy()


class Rastrigin(TestFunction):
    """Multimodal extension function ``10 d + sum(x**2 - 10 cos(2 pi x))``."""

    name = "rastrigin"

    def value(self, theta: np.ndarray) -> float:
        return float(
            10.0 * self.dim
            + np.sum(theta * theta - 10.0 * np.cos(2.0 * math.pi * theta))
        )

    def batch(self, thetas) -> np.ndarray:
        thetas = self._as_batch(thetas)
        return 10.0 * self.dim + np.sum(
            thetas * thetas - 10.0 * np.cos(2.0 * math.pi * thetas), axis=1
        )

    def minimizer(self) -> np.ndarray:
        return np.zeros(self.dim)


# -- initial-state generators (paper §3.2 / §3.3) ----------------------------


def random_vertices(
    dim: int,
    n_vertices: Optional[int] = None,
    low: float = -5.0,
    high: float = 5.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Random initial simplex vertices, uniform per coordinate.

    The paper draws each coordinate of each vertex uniformly: over ``[-6, 3]``
    for the 3-d MN/Anderson study (§3.2) and over ``[-5, 5)`` for the 4-d
    PC/PC+MN study (§3.3).  Returns shape ``(n_vertices, dim)``; the default
    ``n_vertices`` is ``dim + 1``.
    """
    if n_vertices is None:
        n_vertices = dim + 1
    if n_vertices < dim + 1:
        raise ValueError(
            f"a {dim}-dim simplex needs >= {dim + 1} vertices, got {n_vertices}"
        )
    if not (high > low):
        raise ValueError(f"need high > low, got [{low}, {high})")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    return gen.uniform(low, high, size=(n_vertices, dim))


def initial_simplex(
    x0,
    step: float = 1.0,
) -> np.ndarray:
    """Axis-aligned regular-ish initial simplex around a starting point.

    Vertex 0 is ``x0``; vertex ``i`` offsets coordinate ``i-1`` by ``step``.
    This is the conventional deterministic construction used when a study
    specifies a starting *point* rather than a starting simplex.
    """
    x0 = np.asarray(x0, dtype=float)
    if x0.ndim != 1:
        raise ValueError(f"x0 must be 1-d, got shape {x0.shape}")
    if step == 0.0:
        raise ValueError("step must be nonzero (degenerate simplex)")
    d = x0.shape[0]
    verts = np.tile(x0, (d + 1, 1))
    verts[1:] += np.eye(d) * step
    return verts


_REGISTRY: Dict[str, Type[TestFunction]] = {}


def _register(cls: Type[TestFunction]) -> Type[TestFunction]:
    _REGISTRY[cls.name] = cls
    return cls


def get_function(name: str, dim: int, **kwargs) -> TestFunction:
    """Look up a test function by name (``rosenbrock``, ``powell``, ...)."""
    # populate lazily to avoid circular imports
    if not _REGISTRY:
        from repro.functions.powell import Powell
        from repro.functions.rosenbrock import Rosenbrock

        for cls in (Rosenbrock, Powell, Sphere, Quadratic, Rastrigin):
            _register(cls)
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown test function {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(dim, **kwargs)
