"""The vertex level: one server and ``Ns`` simulation clients (paper §4.3).

"Each vertex has one server process running and Ns client processes.  Each
client process maps onto a single system ... The server process communicates
with the client processes and coordinates the start and end of each
simulation."  Clients never talk to each other; the server aggregates their
partial property measurements into the numbers the worker reports upward.

A *system* here is any callable ``system(theta, dt, rng) -> dict`` returning
partial observations (e.g. one property's block mean over ``dt`` of sampling).
The server merges the client dicts (by default: averaging values that share a
key) and can apply a cost function on top.  Worker <-> server traffic uses the
file-I/O spool of :mod:`repro.mw.fileio`, matching the paper's architecture.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.mw.fileio import FileIOChannel
from repro.mw.worker import WorkerContext

System = Callable[[np.ndarray, float, np.random.Generator], Dict[str, float]]


class SimulationClient:
    """One client: runs one system's sampling simulation.

    Parameters
    ----------
    system:
        ``system(theta, dt, rng) -> {property: value}``.
    seed_seq:
        Private RNG stream (independent across clients, so the Ns
        simulations are uncorrelated as in the paper).
    """

    def __init__(self, system: System, seed_seq: Optional[np.random.SeedSequence] = None) -> None:
        self.system = system
        self.rng = np.random.default_rng(seed_seq)
        self.n_runs = 0

    def run(self, theta: np.ndarray, dt: float) -> Dict[str, float]:
        self.n_runs += 1
        out = self.system(np.asarray(theta, dtype=float), float(dt), self.rng)
        if not isinstance(out, dict):
            raise TypeError(
                f"system must return a dict of properties, got {type(out).__name__}"
            )
        return out


def mean_aggregator(observations: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Average every property over the clients that reported it."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for obs in observations:
        for key, value in obs.items():
            sums[key] = sums.get(key, 0.0) + float(value)
            counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}


class VertexServer:
    """Coordinates the ``Ns`` clients attached to one simplex vertex.

    Parameters
    ----------
    systems:
        The ``Ns`` system callables (one per client).
    cost:
        Optional ``cost(properties) -> float``; when given, evaluations carry
        a ``"sample"`` entry holding the aggregated cost, which is what the
        worker reports to the master (eq. 1.3).
    aggregator:
        How client observations combine; defaults to per-key averaging.
    seed:
        Root seed; clients get independent spawned streams.
    parallel_clients:
        Run clients on threads (real concurrency for slow systems) instead of
        a deterministic serial loop.
    """

    def __init__(
        self,
        systems: Sequence[System],
        cost: Optional[Callable[[Dict[str, float]], float]] = None,
        aggregator: Callable[[Sequence[Dict[str, float]]], Dict[str, float]] = mean_aggregator,
        seed: Optional[int] = None,
        parallel_clients: bool = False,
    ) -> None:
        if not systems:
            raise ValueError("a vertex server needs at least one system (Ns >= 1)")
        seqs = np.random.SeedSequence(seed).spawn(len(systems))
        self.clients = [SimulationClient(sys_, sq) for sys_, sq in zip(systems, seqs)]
        self.cost = cost
        self.aggregator = aggregator
        self.parallel_clients = bool(parallel_clients)
        self.n_evaluations = 0

    @property
    def ns(self) -> int:
        """Number of client simulations per evaluation (the paper's Ns)."""
        return len(self.clients)

    def evaluate(self, theta, dt: float) -> Dict[str, Any]:
        """Run all clients at ``theta`` for ``dt``; aggregate their output."""
        theta = np.asarray(theta, dtype=float)
        dt = float(dt)
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        observations: List[Dict[str, float]] = [None] * len(self.clients)  # type: ignore[list-item]
        if self.parallel_clients and len(self.clients) > 1:
            threads = []
            errors: List[BaseException] = []

            def _run(i: int, client: SimulationClient) -> None:
                try:
                    observations[i] = client.run(theta, dt)
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            for i, client in enumerate(self.clients):
                t = threading.Thread(target=_run, args=(i, client), daemon=True)
                threads.append(t)
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]
        else:
            for i, client in enumerate(self.clients):
                observations[i] = client.run(theta, dt)
        properties = self.aggregator(observations)
        self.n_evaluations += 1
        result: Dict[str, Any] = {"dt": dt, "properties": properties}
        if self.cost is not None:
            result["sample"] = float(self.cost(properties))
        return result

    # -- file-I/O service loop (worker <-> server, Fig. 3.2) -------------------

    def serve(
        self,
        requests: FileIOChannel,
        responses: FileIOChannel,
        timeout: float = 5.0,
    ) -> int:
        """Serve requests until a ``None`` sentinel arrives; returns count.

        Each request frame is ``{"theta": ndarray, "dt": float}``; each
        response repeats the request's ``seq`` so callers can correlate.
        """
        served = 0
        while True:
            frame = requests.read(timeout=timeout)
            if frame is None:
                return served
            result = self.evaluate(frame["theta"], frame["dt"])
            result["seq"] = frame.get("seq", served)
            responses.write(result)
            served += 1


class ServerProxyExecutor:
    """MW executor that forwards sampling work to a vertex server via files.

    This is the glue of Fig. 3.2: the worker (MW level) packs ``(theta, dt)``
    into the request spool, the server (client-server level) runs its Ns
    simulations and spools the aggregated result back.
    """

    def __init__(
        self,
        requests: FileIOChannel,
        responses: FileIOChannel,
        timeout: float = 30.0,
    ) -> None:
        self.requests = requests
        self.responses = responses
        self.timeout = float(timeout)
        self._seq = 0

    def __call__(self, work, context: WorkerContext) -> Dict[str, Any]:
        self._seq += 1
        self.requests.write(
            {
                "theta": np.asarray(work["theta"], dtype=float),
                "dt": float(work["dt"]),
                "seq": self._seq,
            }
        )
        result = self.responses.read(timeout=self.timeout)
        if result.get("seq") != self._seq:
            raise RuntimeError(
                f"out-of-order server response: expected {self._seq}, got {result.get('seq')}"
            )
        return result
