"""File-I/O spool channel — how workers talk to their vertex servers.

"The workers and their corresponding servers communicate via file I/O"
(paper §3.1, Fig. 3.2).  A :class:`FileIOChannel` is a one-directional spool
directory: the writer drops numbered frames (codec-encoded, written to a temp
name then atomically renamed so readers never observe partial writes); the
reader consumes them in order and deletes them.  Two channels back-to-back
give the worker<->server duplex of the paper's architecture.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, List, Optional

from repro.mw.codec import pack, unpack

_FRAME_SUFFIX = ".frame"
_TMP_SUFFIX = ".tmp"


class FileIOChannel:
    """Ordered, atomic, single-reader/single-writer file spool.

    Parameters
    ----------
    directory:
        Spool directory (created if missing).
    name:
        Channel name; frames are ``<name>.<seq>.frame``.
    """

    def __init__(self, directory, name: str = "chan") -> None:
        if not name or "/" in name or "." in name:
            raise ValueError(f"invalid channel name {name!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.name = name
        self._write_seq = 0
        self._read_seq = 0

    # -- writing --------------------------------------------------------------

    def write(self, obj: Any) -> Path:
        """Append one frame; returns its final path."""
        data = pack(obj)
        seq = self._write_seq
        final = self.directory / f"{self.name}.{seq:09d}{_FRAME_SUFFIX}"
        tmp = self.directory / f"{self.name}.{seq:09d}{_TMP_SUFFIX}"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)  # atomic publish
        self._write_seq += 1
        return final

    # -- reading --------------------------------------------------------------

    def _frame_path(self, seq: int) -> Path:
        return self.directory / f"{self.name}.{seq:09d}{_FRAME_SUFFIX}"

    def read(self, timeout: Optional[float] = None, poll: float = 0.01) -> Any:
        """Consume the next frame in order; blocks up to ``timeout`` seconds.

        Raises ``TimeoutError`` when nothing arrives in time.
        """
        path = self._frame_path(self._read_seq)
        deadline = None if timeout is None else time.monotonic() + timeout
        while not path.exists():
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"no frame {self._read_seq} on channel {self.name!r}")
            time.sleep(poll)
        data = path.read_bytes()
        obj = unpack(data)
        path.unlink()
        self._read_seq += 1
        return obj

    def try_read(self) -> Any:
        """Non-blocking read; returns ``None`` when no frame is pending.

        (Frames whose payload *is* ``None`` are indistinguishable from "no
        frame" here; use :meth:`pending` first when that matters.)
        """
        if not self.pending():
            return None
        return self.read(timeout=0.001)

    def pending(self) -> bool:
        """Whether the next in-order frame has been published."""
        return self._frame_path(self._read_seq).exists()

    def drain(self) -> List[Any]:
        """Consume every published in-order frame."""
        out: List[Any] = []
        while self.pending():
            out.append(self.read(timeout=0.001))
        return out
