"""MWDriver — the master: manages workers, dispatches tasks (paper §3.1).

The driver schedules :class:`~repro.mw.task.MWTask` objects onto a pool of
worker ranks reached through a :class:`~repro.mw.transport.Transport` — the
MWRMComm seam of the original MW library.  Design points taken from the
paper's MW usage:

* tasks and workers do not communicate with one another directly — results
  come back to the master only;
* each simplex vertex prefers a dedicated worker (*affinity*), and "when a
  worker is restarted by the master, it is restarted on the same processors";
* worker errors (and worker deaths) requeue the task (up to ``max_retries``)
  rather than aborting the optimization.

Transports (``backend=``):

``inproc``
    No concurrency; ``wait_all`` executes tasks synchronously in deterministic
    round-robin order.  Used by unit tests and the virtual-cluster simulator.
``threaded``
    One Python thread per worker, ``queue.Queue`` channels.  Real overlap
    for I/O-bound executors.
``process``
    One OS process per worker, ``multiprocessing`` queues carrying
    codec-encoded frames.  Real parallelism; the executor must be picklable.
``tcp://host:port``
    Cross-host sockets (:mod:`repro.mw.tcp`): the master listens, standalone
    ``python -m repro mw-worker`` processes connect — before or after the
    master starts waiting — and dead peers (detected by heartbeat silence or
    a dropped connection) feed the same requeue path as crashed processes.

The campaign engine builds its distributed backend on this driver: each
:class:`~repro.campaign.spec.Job` becomes one task
(``python -m repro campaign run <dir> --backend mw``), so campaign sweeps
inherit the crash-requeue and affinity semantics above.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

import numpy as np

from repro.mw.messages import MSG_RESULT, MSG_TASK, Message
from repro.mw.task import MWTask, TaskState
from repro.mw.transport import (
    EVENT_DIED,
    EVENT_JOINED,
    Transport,
    make_transport,
)
from repro.mw.worker import Executor
from repro.telemetry import Telemetry

_log = logging.getLogger(__name__)


class MWDriver:
    """Master process of the MW framework.

    Parameters
    ----------
    executor:
        ``executor(work, context) -> result`` run on workers.  Must be
        picklable for the ``process`` transport and importable by wire
        spec (``module:attr``) for TCP workers not launched with their
        own ``--executor``.
    n_workers:
        Number of worker ranks (the paper uses ``d + 3`` for a d-dim
        simplex).  On TCP this is the number of slots remote workers can
        occupy.
    backend:
        ``"inproc"`` (default), ``"threaded"``, ``"process"``, or a
        ``"tcp://host:port"`` listen URL.
    max_retries:
        How many times a task is requeued after worker errors or deaths
        before being marked failed.
    seed:
        Root seed; each worker rank receives an independent spawned RNG
        stream (on every transport, including reconnecting TCP workers).
    transport:
        Pre-built :class:`~repro.mw.transport.Transport` instance,
        overriding ``backend`` (advanced; the driver still owns its
        lifecycle and will ``start``/``close`` it).
    transport_options:
        Extra keyword options for :func:`~repro.mw.transport.make_transport`
        (e.g. TCP heartbeat tuning).
    telemetry:
        The :class:`~repro.telemetry.Telemetry` context dispatches,
        replies, requeues, and dead-worker events are counted in;
        defaults to :meth:`Telemetry.from_env`.  It is handed to the
        transport before ``start()`` so transport-level series (TCP
        frame counts, heartbeat gaps) land in the same registry.
    """

    def __init__(
        self,
        executor: Executor,
        n_workers: int = 2,
        backend: str = "inproc",
        max_retries: int = 2,
        seed: Optional[int] = None,
        transport: Optional[Transport] = None,
        transport_options: Optional[dict] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.backend = backend
        self.n_workers = n_workers
        self.max_retries = int(max_retries)
        self.tasks: Dict[int, MWTask] = {}
        self._pending: deque[MWTask] = deque()
        self._running: Dict[int, MWTask] = {}
        self._shutdown = False
        self.telemetry = telemetry if telemetry is not None else Telemetry.from_env()
        # Per-rank utilization bookkeeping (always on — two dict writes per
        # task): dispatch time, task tally, and accumulated busy seconds.
        self._t0 = time.monotonic()
        self._rank_tasks: Dict[int, int] = {}
        self._rank_evals: Dict[int, int] = {}
        self._rank_busy: Dict[int, float] = {}
        self._dispatch_t: Dict[int, float] = {}
        seqs = np.random.SeedSequence(seed).spawn(n_workers)
        if transport is None:
            transport = make_transport(
                backend,
                executor=executor,
                n_workers=n_workers,
                seed_seqs=seqs,
                **(transport_options or {}),
            )
        self.transport = transport
        self.transport.telemetry = self.telemetry
        self.transport.start()
        live = self.transport.initially_live()
        self._alive = {rank: rank in live for rank in range(1, n_workers + 1)}
        self._idle: List[int] = [r for r in range(1, n_workers + 1) if self._alive[r]]

    @property
    def _procs(self):
        """Worker processes of the ``process`` transport (tests/diagnostics)."""
        return self.transport.procs

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "MWDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- submission ---------------------------------------------------------------

    def submit(self, work: Any, affinity: Optional[int] = None,
               n_evals: int = 1,
               constraints: Optional[Iterable[str]] = None) -> MWTask:
        """Queue one unit of work; returns its :class:`MWTask` handle.

        ``n_evals`` is the task's evaluation weight — a batched frame
        carrying ``q`` proposals submits with ``n_evals=q`` so the
        inflight/utilization accounting counts evaluations, not frames.

        ``constraints`` is a capability constraint vector: the task is
        dispatched only to workers whose declared capability set covers
        it (hard requirement — the task waits for a capable worker on a
        dynamic transport, and fails if a static transport has none).
        ``affinity`` stays a soft preference within the eligible set.
        """
        if self._shutdown:
            raise RuntimeError("driver has been shut down")
        if affinity is not None and not (1 <= affinity <= self.n_workers):
            raise ValueError(
                f"affinity must be a worker rank in 1..{self.n_workers}, got {affinity}"
            )
        task = MWTask(work, affinity=affinity, n_evals=n_evals,
                      constraints=constraints or ())
        self.tasks[task.task_id] = task
        self._pending.append(task)
        return task

    # -- hooks -----------------------------------------------------------------

    def act_on_completed_task(self, task: MWTask) -> None:
        """Subclass hook, called once per task reaching DONE (MW API)."""

    # -- scheduling core ------------------------------------------------------------

    def worker_caps(self, rank: int) -> FrozenSet[str]:
        """Capability vector worker ``rank`` declared (empty if none)."""
        return self.transport.worker_caps(rank)

    def _eligible(self, task: MWTask, rank: int) -> bool:
        """Whether ``rank`` can run ``task`` (caps cover its constraints)."""
        if not task.constraints:
            return True
        return task.constraints <= self.transport.worker_caps(rank)

    def _pick_worker(self, task: MWTask) -> Optional[int]:
        """Choose an idle eligible worker, honouring affinity when possible.

        Constraints are hard: only workers whose capability vector covers
        the task's constraint vector are considered.  Among the eligible,
        the *fewest-capability* worker wins (first-come order breaks
        ties), so unconstrained tasks don't burn the rare capable ranks
        that constrained tasks behind them will need.  Affinity is soft:
        the preferred rank wins when idle and eligible; when the preferred
        rank is *dead*, falling back to another worker is logged and
        counted in ``repro_sched_fallbacks_total`` — a silent fallback
        used to hide exactly the placement drift operators care about.
        """
        live_idle = [r for r in self._idle if self._alive[r]]
        eligible = [r for r in live_idle if self._eligible(task, r)]
        if not eligible:
            return None
        pick = min(eligible, key=lambda r: len(self.transport.worker_caps(r)))
        if task.affinity is not None:
            if task.affinity in eligible:
                return task.affinity
            if not self._alive.get(task.affinity, False):
                _log.warning(
                    "task %d prefers worker %d, which is dead; "
                    "falling back to worker %d",
                    task.task_id, task.affinity, pick,
                )
                self.telemetry.counter(
                    "repro_sched_fallbacks_total",
                    "Tasks dispatched off their preferred (affinity) rank "
                    "because it was dead.",
                ).inc()
        return pick

    def _live_idle_count(self) -> int:
        return sum(1 for r in self._idle if self._alive[r])

    def _dispatch(self) -> bool:
        """Send as many pending tasks as there are idle eligible workers.

        A constrained task with no idle eligible worker is deferred
        without blocking the tasks behind it (no head-of-line blocking);
        the loop stops only when every idle worker is taken.
        """
        sent = False
        deferred: deque[MWTask] = deque()
        while self._pending:
            if not self._live_idle_count():
                break
            task = self._pending.popleft()
            rank = self._pick_worker(task)
            if rank is None:
                deferred.append(task)
                continue
            self._idle.remove(rank)
            task.mark_running(rank)
            self._running[task.task_id] = task
            self._dispatch_t[task.task_id] = time.monotonic()
            self.telemetry.counter(
                "repro_mw_tasks_dispatched_total",
                "Task dispatches to workers (retries re-count).",
            ).inc()
            message = Message(
                tag=MSG_TASK,
                sender=0,
                payload={"task_id": task.task_id, "work": task.work},
            )
            self.transport.send(rank, message)
            if self.transport.synchronous:
                # the reply is already buffered; handle it before the next
                # pick so the worker returns to the idle pool (deterministic
                # round-robin and per-task affinity, as inproc always had)
                self._drain_buffered_replies()
            sent = True
        self._pending.extendleft(reversed(deferred))
        return sent

    def _drain_buffered_replies(self) -> None:
        """Handle every reply available without blocking (synchronous path)."""
        while True:
            reply = self.transport.recv(timeout=0)
            if reply is None:
                return
            self._handle_reply(reply)

    def _handle_reply(self, message: Message) -> None:
        payload = message.payload
        task = self.tasks.get(payload["task_id"])
        if task is None or task.state is not TaskState.RUNNING:
            return  # stale reply (e.g. from a worker presumed dead)
        rank = task.worker
        self._running.pop(task.task_id, None)
        t_sent = self._dispatch_t.pop(task.task_id, None)
        if rank is not None:
            busy = 0.0 if t_sent is None else time.monotonic() - t_sent
            self._rank_tasks[rank] = self._rank_tasks.get(rank, 0) + 1
            self._rank_evals[rank] = self._rank_evals.get(rank, 0) + task.n_evals
            self._rank_busy[rank] = self._rank_busy.get(rank, 0.0) + busy
        if rank is not None and rank not in self._idle and self._alive.get(rank, False):
            self._idle.append(rank)
        if message.tag == MSG_RESULT:
            self.telemetry.counter(
                "repro_mw_replies_total", "Task replies from workers.",
                outcome="result",
            ).inc()
            task.mark_done(payload["result"])
            self.act_on_completed_task(task)
        else:
            self.telemetry.counter(
                "repro_mw_replies_total", "Task replies from workers.",
                outcome="error",
            ).inc()
            error = payload.get("error", "unknown error")
            if task.attempts > self.max_retries:
                task.mark_failed(error)
            else:
                task.mark_retry(error)
                self._pending.append(task)
                self.telemetry.counter(
                    "repro_mw_requeues_total",
                    "Tasks requeued after worker errors or deaths.",
                ).inc()

    def _requeue_tasks_of(self, rank: int) -> None:
        """Return a dead worker's in-flight tasks to the queue (or fail them)."""
        for task in list(self._running.values()):
            if task.worker == rank:
                self._running.pop(task.task_id, None)
                self._dispatch_t.pop(task.task_id, None)
                if task.attempts > self.max_retries:
                    task.mark_failed("worker died")
                else:
                    task.mark_retry("worker died")
                    self._pending.append(task)
                    self.telemetry.counter(
                        "repro_mw_requeues_total",
                        "Tasks requeued after worker errors or deaths.",
                    ).inc()

    def _poll_transport(self) -> None:
        """Apply join/death events: liveness, idle pool, crash requeue."""
        for kind, rank in self.transport.poll():
            if kind == EVENT_JOINED:
                self._alive[rank] = True
                if rank not in self._idle and not any(
                    t.worker == rank for t in self._running.values()
                ):
                    self._idle.append(rank)
            elif kind == EVENT_DIED:
                self._alive[rank] = False
                if rank in self._idle:
                    self._idle.remove(rank)
                self.telemetry.counter(
                    "repro_mw_worker_deaths_total",
                    "Workers declared dead (crash or heartbeat silence).",
                ).inc()
                self._requeue_tasks_of(rank)

    def _fail_unmatchable(self) -> None:
        """On a static transport, fail pending tasks no live worker can run.

        Dynamic transports (TCP) may still grow a capable worker, so
        there a constrained task waits; a static pool that lacks the
        capability can never satisfy it and hanging would be a bug.
        """
        if self.transport.dynamic:
            return
        survivors: deque[MWTask] = deque()
        for task in self._pending:
            if task.constraints and not any(
                self._alive.get(r, False)
                and task.constraints <= self.transport.worker_caps(r)
                for r in range(1, self.n_workers + 1)
            ):
                task.mark_failed(
                    "no live worker satisfies constraints "
                    f"{sorted(task.constraints)}"
                )
            else:
                survivors.append(task)
        self._pending = survivors

    def _outstanding(self) -> int:
        return len(self._pending) + len(self._running)

    def _outstanding_evals(self) -> int:
        """Evaluation-weighted outstanding work (batch frames count ``q``)."""
        return sum(t.n_evals for t in self._pending) + sum(
            t.n_evals for t in self._running.values()
        )

    def wait_all(self, timeout: Optional[float] = None) -> List[MWTask]:
        """Drive scheduling until every submitted task is DONE or FAILED.

        Returns all tasks in submission order.  Raises ``TimeoutError`` if a
        real-time ``timeout`` (seconds) elapses first (the synchronous inproc
        transport ignores it).  On a dynamic transport (TCP) the master keeps
        waiting for workers to join — pass a ``timeout`` to bound that.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._outstanding():
            self._poll_transport()
            self._fail_unmatchable()
            if not self.transport.dynamic and not any(self._alive.values()):
                for task in list(self._pending):
                    task.mark_failed("no live workers")
                self._pending.clear()
                break
            self._dispatch()
            if self.transport.synchronous:
                continue  # dispatch already processed replies
            wait = 0.1
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{self._outstanding()} tasks outstanding at timeout"
                    )
                wait = min(wait, remaining)
            reply = self.transport.recv(timeout=wait)
            if reply is not None:
                self._handle_reply(reply)
        return sorted(self.tasks.values(), key=lambda t: t.task_id)

    def pump(self, timeout: float = 0.05) -> int:
        """One scheduling beat: poll events, dispatch, drain available replies.

        The non-barriered counterpart of :meth:`wait_all` for callers that
        keep their own event loop (the async campaign driver): progress is
        made if possible, but the call returns after at most ``timeout``
        real seconds whether or not any task completed.  Returns the number
        of *evaluations* still outstanding — a batched frame counts its
        ``n_evals``, not 1, so the number means the same thing at every
        ``--eval-batch`` — and ``while driver.pump(): ...`` still drains
        the queue (zero evaluations iff zero tasks).  The point, though,
        is to interleave ``submit`` calls between beats instead of
        waiting for it to hit zero.
        """
        self._poll_transport()
        self._fail_unmatchable()
        if not self.transport.dynamic and not any(self._alive.values()):
            for task in list(self._pending):
                task.mark_failed("no live workers")
            self._pending.clear()
            return self._outstanding_evals()
        self._dispatch()
        if not self.transport.synchronous:
            reply = self.transport.recv(timeout=max(0.0, float(timeout)))
            if reply is not None:
                self._handle_reply(reply)
                self._drain_buffered_replies()
        return self._outstanding_evals()

    # -- teardown ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop all workers (shutdown fan-out via the transport); idempotent."""
        if self._shutdown:
            return
        self._shutdown = True
        self.transport.close()

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Task counts by state plus the live worker count (monitoring hook)."""
        states = {s: 0 for s in TaskState}
        for task in self.tasks.values():
            states[task.state] += 1
        return {
            "n_tasks": len(self.tasks),
            "pending": states[TaskState.PENDING],
            "running": states[TaskState.RUNNING],
            "done": states[TaskState.DONE],
            "failed": states[TaskState.FAILED],
            "live_workers": sum(self._alive.values()),
        }

    def utilization(self, elapsed_s: Optional[float] = None) -> List[dict]:
        """Per-rank utilization rows — the paper-style worker table.

        One row per rank: ``tasks`` completed (replies received),
        ``busy_s`` accumulated dispatch-to-reply seconds, ``elapsed_s``
        the observation window (driver lifetime unless given),
        ``utilization`` their ratio, ``alive``, ``inflight`` — the
        number of *evaluations* currently dispatched to the rank but
        unanswered (a batched ``--eval-batch q`` frame counts ``q``, so
        ``watch --cells`` shows real work, not frame counts) — and
        ``evals``, the evaluation-weighted completion count alongside the
        frame-level ``tasks``.  The campaign runner folds these rows into
        the telemetry trace as a ``workers`` event; ``campaign watch
        --cells`` renders them with straggler flags.
        """
        if elapsed_s is None:
            elapsed_s = time.monotonic() - self._t0
        elapsed_s = max(float(elapsed_s), 1e-9)
        inflight: Dict[int, int] = {}
        for task in self._running.values():
            if task.worker is not None:
                inflight[task.worker] = inflight.get(task.worker, 0) + task.n_evals
        rows = []
        for rank in range(1, self.n_workers + 1):
            busy = self._rank_busy.get(rank, 0.0)
            rows.append({
                "rank": rank,
                "tasks": self._rank_tasks.get(rank, 0),
                "evals": self._rank_evals.get(rank, 0),
                "busy_s": busy,
                "elapsed_s": elapsed_s,
                "utilization": busy / elapsed_s,
                "alive": bool(self._alive.get(rank, False)),
                "inflight": inflight.get(rank, 0),
                "caps": sorted(self.transport.worker_caps(rank)),
            })
        return rows
