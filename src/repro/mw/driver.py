"""MWDriver — the master: manages workers, dispatches tasks (paper §3.1).

The driver owns a pool of workers over one of three transports and schedules
:class:`~repro.mw.task.MWTask` objects onto them.  Design points taken from
the paper's MW usage:

* tasks and workers do not communicate with one another directly — results
  come back to the master only;
* each simplex vertex prefers a dedicated worker (*affinity*), and "when a
  worker is restarted by the master, it is restarted on the same processors";
* worker errors requeue the task (up to ``max_retries``) rather than aborting
  the optimization.

Backends:

``inproc``
    No concurrency; ``wait_all`` executes tasks synchronously in deterministic
    round-robin order.  Used by unit tests and the virtual-cluster simulator.
``threaded``
    One Python thread per worker, ``queue.Queue`` transports.  Real overlap
    for I/O-bound executors.
``process``
    One OS process per worker, ``multiprocessing`` queues carrying
    codec-encoded frames.  Real parallelism; the executor must be picklable.

The campaign engine builds its distributed backend on this driver: each
:class:`~repro.campaign.spec.Job` becomes one task
(``python -m repro campaign run <dir> --backend mw``), so campaign sweeps
inherit the crash-requeue and affinity semantics above.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

import numpy as np

from repro.mw.messages import (
    MSG_ERROR,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    Message,
    decode_message,
    encode_message,
)
from repro.mw.task import MWTask, TaskState
from repro.mw.worker import Executor, MWWorker

_BACKENDS = ("inproc", "threaded", "process")


def _process_worker_main(rank, executor, seed_entropy, inbox, outbox) -> None:
    """Entry point of a process-backend worker: decode frames, run the loop."""
    worker = MWWorker(rank, executor, np.random.SeedSequence(seed_entropy))
    while True:
        frame = inbox.get()
        message = decode_message(frame)
        if message.tag == MSG_SHUTDOWN:
            return
        if message.tag != MSG_TASK:
            continue
        payload = message.payload
        reply = worker.execute(payload["task_id"], payload["work"])
        outbox.put(encode_message(reply))


class MWDriver:
    """Master process of the MW framework.

    Parameters
    ----------
    executor:
        ``executor(work, context) -> result`` run on workers.  Must be
        picklable for the ``process`` backend.
    n_workers:
        Number of workers (the paper uses ``d + 3`` for a d-dim simplex).
    backend:
        ``"inproc"`` (default), ``"threaded"`` or ``"process"``.
    max_retries:
        How many times a task is requeued after worker errors before being
        marked failed.
    seed:
        Root seed; each worker receives an independent spawned RNG stream.
    """

    def __init__(
        self,
        executor: Executor,
        n_workers: int = 2,
        backend: str = "inproc",
        max_retries: int = 2,
        seed: Optional[int] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.backend = backend
        self.n_workers = n_workers
        self.max_retries = int(max_retries)
        self.tasks: Dict[int, MWTask] = {}
        self._pending: deque[MWTask] = deque()
        self._running: Dict[int, MWTask] = {}
        self._idle: List[int] = list(range(1, n_workers + 1))
        self._alive = {rank: True for rank in range(1, n_workers + 1)}
        self._shutdown = False
        seqs = np.random.SeedSequence(seed).spawn(n_workers)

        if backend == "inproc":
            self._workers = {
                rank: MWWorker(rank, executor, seqs[rank - 1])
                for rank in range(1, n_workers + 1)
            }
        elif backend == "threaded":
            self._inboxes = {r: queue.Queue() for r in range(1, n_workers + 1)}
            self._outbox: queue.Queue = queue.Queue()
            self._workers = {
                rank: MWWorker(rank, executor, seqs[rank - 1])
                for rank in range(1, n_workers + 1)
            }
            self._threads = {}
            for rank, worker in self._workers.items():
                t = threading.Thread(
                    target=worker.run_loop,
                    args=(self._inboxes[rank], self._outbox),
                    daemon=True,
                    name=f"mw-worker-{rank}",
                )
                t.start()
                self._threads[rank] = t
        else:  # process
            ctx = mp.get_context("fork")
            self._inboxes = {r: ctx.Queue() for r in range(1, n_workers + 1)}
            self._outbox = ctx.Queue()
            self._procs = {}
            for rank in range(1, n_workers + 1):
                p = ctx.Process(
                    target=_process_worker_main,
                    args=(
                        rank,
                        executor,
                        seqs[rank - 1].entropy,
                        self._inboxes[rank],
                        self._outbox,
                    ),
                    daemon=True,
                    name=f"mw-worker-{rank}",
                )
                p.start()
                self._procs[rank] = p

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "MWDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- submission ---------------------------------------------------------------

    def submit(self, work: Any, affinity: Optional[int] = None) -> MWTask:
        """Queue one unit of work; returns its :class:`MWTask` handle."""
        if self._shutdown:
            raise RuntimeError("driver has been shut down")
        if affinity is not None and not (1 <= affinity <= self.n_workers):
            raise ValueError(
                f"affinity must be a worker rank in 1..{self.n_workers}, got {affinity}"
            )
        task = MWTask(work, affinity=affinity)
        self.tasks[task.task_id] = task
        self._pending.append(task)
        return task

    # -- hooks -----------------------------------------------------------------

    def act_on_completed_task(self, task: MWTask) -> None:
        """Subclass hook, called once per task reaching DONE (MW API)."""

    # -- scheduling core ------------------------------------------------------------

    def _pick_worker(self, task: MWTask) -> Optional[int]:
        """Choose an idle worker, honouring affinity when possible."""
        live_idle = [r for r in self._idle if self._alive[r]]
        if not live_idle:
            return None
        if task.affinity is not None and task.affinity in live_idle:
            return task.affinity
        return live_idle[0]

    def _dispatch(self) -> bool:
        """Send as many pending tasks as there are idle workers."""
        sent = False
        deferred: deque[MWTask] = deque()
        while self._pending:
            task = self._pending.popleft()
            rank = self._pick_worker(task)
            if rank is None:
                deferred.append(task)
                break
            self._idle.remove(rank)
            task.mark_running(rank)
            self._running[task.task_id] = task
            message = Message(
                tag=MSG_TASK,
                sender=0,
                payload={"task_id": task.task_id, "work": task.work},
            )
            if self.backend == "inproc":
                # execute synchronously; the reply comes back immediately
                reply = self._workers[rank].execute(task.task_id, task.work)
                self._handle_reply(reply)
            elif self.backend == "threaded":
                self._inboxes[rank].put(message)
            else:
                self._inboxes[rank].put(encode_message(message))
            sent = True
        self._pending.extendleft(reversed(deferred))
        return sent

    def _handle_reply(self, message: Message) -> None:
        payload = message.payload
        task = self.tasks.get(payload["task_id"])
        if task is None or task.state is not TaskState.RUNNING:
            return  # stale reply (e.g. from a worker presumed dead)
        rank = task.worker
        self._running.pop(task.task_id, None)
        if rank is not None and rank not in self._idle and self._alive.get(rank, False):
            self._idle.append(rank)
        if message.tag == MSG_RESULT:
            task.mark_done(payload["result"])
            self.act_on_completed_task(task)
        else:
            error = payload.get("error", "unknown error")
            if task.attempts > self.max_retries:
                task.mark_failed(error)
            else:
                task.mark_retry(error)
                self._pending.append(task)

    def _reap_dead_workers(self) -> None:
        """Process backend only: detect dead processes, requeue their tasks."""
        if self.backend != "process":
            return
        for rank, proc in self._procs.items():
            if self._alive[rank] and not proc.is_alive():
                self._alive[rank] = False
                if rank in self._idle:
                    self._idle.remove(rank)
                for task in list(self._running.values()):
                    if task.worker == rank:
                        self._running.pop(task.task_id, None)
                        if task.attempts > self.max_retries:
                            task.mark_failed("worker died")
                        else:
                            task.mark_retry("worker died")
                            self._pending.append(task)

    def _outstanding(self) -> int:
        return len(self._pending) + len(self._running)

    def wait_all(self, timeout: Optional[float] = None) -> List[MWTask]:
        """Drive scheduling until every submitted task is DONE or FAILED.

        Returns all tasks in submission order.  Raises ``TimeoutError`` if a
        real-time ``timeout`` (seconds) elapses first (threaded/process
        backends; the inproc backend is synchronous and ignores it).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._outstanding():
            self._reap_dead_workers()
            if self.backend == "process" and not any(self._alive.values()):
                for task in list(self._pending):
                    task.mark_failed("no live workers")
                self._pending.clear()
                break
            self._dispatch()
            if self.backend == "inproc":
                continue  # dispatch already processed replies synchronously
            if not self._running:
                continue
            wait = 0.1
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{self._outstanding()} tasks outstanding at timeout"
                    )
                wait = min(wait, remaining)
            try:
                item = self._outbox.get(timeout=wait)
            except queue.Empty:
                continue
            if self.backend == "process":
                item = decode_message(item)
            self._handle_reply(item)
        return sorted(self.tasks.values(), key=lambda t: t.task_id)

    # -- teardown ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop all workers; idempotent."""
        if self._shutdown:
            return
        self._shutdown = True
        if self.backend == "threaded":
            for rank in self._inboxes:
                self._inboxes[rank].put(Message(tag=MSG_SHUTDOWN, sender=0))
            for t in self._threads.values():
                t.join(timeout=5.0)
        elif self.backend == "process":
            for rank, proc in self._procs.items():
                if proc.is_alive():
                    try:
                        self._inboxes[rank].put(
                            encode_message(Message(tag=MSG_SHUTDOWN, sender=0))
                        )
                    except Exception:  # noqa: BLE001 - queue may be broken
                        pass
            for proc in self._procs.values():
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Task counts by state plus the live worker count (monitoring hook)."""
        states = {s: 0 for s in TaskState}
        for task in self.tasks.values():
            states[task.state] += 1
        return {
            "n_tasks": len(self.tasks),
            "pending": states[TaskState.PENDING],
            "running": states[TaskState.RUNNING],
            "done": states[TaskState.DONE],
            "failed": states[TaskState.FAILED],
            "live_workers": sum(self._alive.values()),
        }
