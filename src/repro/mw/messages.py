"""Message types exchanged between master and workers.

A message is ``(tag, sender, payload)``; tags mirror the MW protocol: the
master sends ``task`` and ``shutdown``; workers answer with ``result`` or
``error``.  Connection-oriented transports add a session layer on the same
frames: ``hello`` / ``welcome`` for the join handshake and ``heartbeat``
for liveness.  Encoding rides on the typed codec, so the same bytes work
over in-process queues, thread queues, pipes, spool files or sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.mw.codec import pack, unpack

MSG_TASK = "task"
MSG_RESULT = "result"
MSG_ERROR = "error"
MSG_SHUTDOWN = "shutdown"
# Session-control tags used by connection-oriented transports (repro.mw.tcp):
# a joining worker introduces itself (hello: protocol version + optional
# "caps" capability vector), the master assigns it a rank, seed stream and
# executor spec (welcome), and the worker proves liveness between tasks
# (heartbeat).
MSG_HELLO = "hello"
MSG_WELCOME = "welcome"
MSG_HEARTBEAT = "heartbeat"

_VALID_TAGS = (
    MSG_TASK,
    MSG_RESULT,
    MSG_ERROR,
    MSG_SHUTDOWN,
    MSG_HELLO,
    MSG_WELCOME,
    MSG_HEARTBEAT,
)


@dataclass(frozen=True)
class Message:
    """One unit of master/worker communication."""

    tag: str
    sender: int
    payload: Any = None

    def __post_init__(self) -> None:
        if self.tag not in _VALID_TAGS:
            raise ValueError(f"invalid message tag {self.tag!r}; valid: {_VALID_TAGS}")
        if self.sender < 0:
            raise ValueError(f"sender rank must be >= 0, got {self.sender}")


def encode_message(message: Message) -> bytes:
    """Serialize a message for the wire."""
    return pack((message.tag, message.sender, message.payload))


def decode_message(data: bytes) -> Message:
    """Inverse of :func:`encode_message`."""
    obj = unpack(data)
    if not (isinstance(obj, tuple) and len(obj) == 3):
        raise ValueError("malformed message frame")
    tag, sender, payload = obj
    return Message(tag=tag, sender=sender, payload=payload)
