"""MW — a from-scratch master-worker framework (paper §3.1, §4.3).

The paper re-implements three classes of the University of Wisconsin MW
library: ``MWDriver`` (the master: manages workers, dispatches tasks),
``MWWorker`` (executes tasks, reports results, waits for more) and ``MWTask``
(one unit of work plus its result).  Communication goes through an abstract
``MWRMComm`` layer with ``pack``/``unpack``/``send``/``recv`` primitives that
can ride on different transports.

This package mirrors that decomposition in Python: the master is written
against the :class:`~repro.mw.transport.Transport` seam (the MWRMComm
role), with four interchangeable transports:

* ``inproc``  — deterministic, single-threaded message passing (default; the
  event-driven cluster model in :mod:`repro.cluster` builds on it),
* ``threaded`` — real concurrency via ``queue.Queue`` and worker threads,
* ``process`` — real parallelism via ``multiprocessing`` (workers are OS
  processes; the executor must be picklable),
* ``tcp://host:port`` — cross-host sockets (:mod:`repro.mw.tcp`): the master
  listens, standalone ``python -m repro mw-worker`` processes connect from
  anywhere, no shared filesystem required.

Tasks and workers never talk to each other directly — results go to the
master, which "has the ability to direct a cessation of work at one point in
parameter space and the initiation of new simulations at a different point".
"""

from repro.mw.codec import pack, unpack
from repro.mw.messages import (
    MSG_ERROR,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    Message,
    decode_message,
    encode_message,
)
from repro.mw.task import MWTask, TaskState
from repro.mw.worker import MWWorker, WorkerContext
from repro.mw.transport import (
    InprocTransport,
    ProcessTransport,
    ThreadedTransport,
    Transport,
    make_transport,
)
from repro.mw.driver import MWDriver
from repro.mw.vertex_pool import MWVertexPool, VertexSampler
from repro.mw.fileio import FileIOChannel
from repro.mw.vertex_server import SimulationClient, VertexServer

__all__ = [
    "FileIOChannel",
    "InprocTransport",
    "MSG_ERROR",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MSG_TASK",
    "MWDriver",
    "MWTask",
    "MWVertexPool",
    "MWWorker",
    "Message",
    "ProcessTransport",
    "SimulationClient",
    "TaskState",
    "ThreadedTransport",
    "Transport",
    "VertexSampler",
    "VertexServer",
    "WorkerContext",
    "decode_message",
    "encode_message",
    "make_transport",
    "pack",
    "unpack",
]
