"""Typed binary codec — the ``pack``/``unpack`` layer of MWRMComm.

The Wisconsin MW exposes ``pack(<type> array, int size)`` / ``unpack`` calls
so applications never see the wire format.  This module provides the same
service for the Python reproduction: a small tag-length-value serialization
for the types that cross the master/worker boundary (scalars, strings, bytes,
lists, tuples, dicts and NumPy arrays).  No pickle — the format is explicit,
versioned by construction, and round-trip tested property-style.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

import numpy as np

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_ARRAY = b"a"
_TAG_FLOAT_LIST = b"L"

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_INT_MIN = -(2**63)
_INT_MAX = 2**63 - 1


class CodecError(ValueError):
    """Raised for unsupported types or malformed wire data."""


#: Hard ceiling on one framed payload (64 MiB).  A corrupt or hostile
#: length prefix must fail loudly instead of allocating unbounded memory
#: or stalling a socket read for data that will never arrive.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_FRAME_HEADER = struct.Struct(">I")

#: Bytes in a frame's length prefix.
FRAME_HEADER_BYTES = _FRAME_HEADER.size


def encode_frame(payload: bytes, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Length-prefix ``payload`` for a stream transport (big-endian u32).

    Raises :class:`CodecError` if the payload exceeds ``max_bytes`` — the
    sender-side half of the frame-size contract enforced by
    :func:`decode_frame_length` on the receiver.
    """
    if len(payload) > max_bytes:
        raise CodecError(
            f"frame of {len(payload)} bytes exceeds the {max_bytes}-byte limit"
        )
    return _FRAME_HEADER.pack(len(payload)) + payload


def decode_frame_length(header: bytes, max_bytes: int = MAX_FRAME_BYTES) -> int:
    """Validate a frame header and return the payload length it declares.

    Raises :class:`CodecError` on a short header (truncated stream) or an
    oversized declared length, so framed readers never hang waiting for —
    or allocate — data a corrupt prefix promises.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise CodecError(
            f"truncated frame header: got {len(header)} of "
            f"{FRAME_HEADER_BYTES} bytes"
        )
    (length,) = _FRAME_HEADER.unpack(header)
    if length > max_bytes:
        raise CodecError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    return length


def pack(obj: Any) -> bytes:
    """Serialize ``obj`` to bytes."""
    out = bytearray()
    _pack_into(obj, out)
    return bytes(out)


def _pack_into(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += _TAG_NONE
    elif obj is True:
        out += _TAG_TRUE
    elif obj is False:
        out += _TAG_FALSE
    elif isinstance(obj, int) and not isinstance(obj, bool):
        if not (_INT_MIN <= obj <= _INT_MAX):
            raise CodecError(f"integer out of 64-bit range: {obj}")
        out += _TAG_INT
        out += _I64.pack(obj)
    elif isinstance(obj, float):
        out += _TAG_FLOAT
        out += _F64.pack(obj)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out += _TAG_STR
        out += _U32.pack(len(data))
        out += data
    elif isinstance(obj, (bytes, bytearray)):
        out += _TAG_BYTES
        out += _U32.pack(len(obj))
        out += bytes(obj)
    elif isinstance(obj, list):
        # Fast path for the wire's hottest shape — theta vectors and
        # batched value lists are homogeneous floats, and packing them
        # one struct call at a time dominated task-frame encoding.  The
        # dedicated tag packs the whole list in a single struct call and
        # round-trips to the identical ``list[float]`` (bitwise: IEEE
        # doubles pass through struct untouched).
        if obj and all(type(item) is float for item in obj):
            out += _TAG_FLOAT_LIST
            out += _U32.pack(len(obj))
            out += struct.pack(f"<{len(obj)}d", *obj)
            return
        out += _TAG_LIST
        out += _U32.pack(len(obj))
        for item in obj:
            _pack_into(item, out)
    elif isinstance(obj, tuple):
        out += _TAG_TUPLE
        out += _U32.pack(len(obj))
        for item in obj:
            _pack_into(item, out)
    elif isinstance(obj, dict):
        out += _TAG_DICT
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            _pack_into(key, out)
            _pack_into(value, out)
    elif isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise CodecError("object arrays are not supported")
        arr = np.ascontiguousarray(obj)
        dtype_str = arr.dtype.str.encode("ascii")
        out += _TAG_ARRAY
        out += _U32.pack(len(dtype_str))
        out += dtype_str
        out += _U32.pack(arr.ndim)
        for dim in arr.shape:
            out += _I64.pack(dim)
        raw = arr.tobytes()
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(obj, (np.integer,)):
        _pack_into(int(obj), out)
    elif isinstance(obj, (np.floating,)):
        _pack_into(float(obj), out)
    elif isinstance(obj, (np.bool_,)):
        _pack_into(bool(obj), out)
    else:
        raise CodecError(f"unsupported type {type(obj).__name__}")


def unpack(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`pack`."""
    try:
        obj, offset = _unpack_from(data, 0)
    except struct.error as exc:
        raise CodecError(f"truncated payload: {exc}") from None
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after payload")
    return obj


def _take(data: bytes, offset: int, length: int) -> bytes:
    chunk = data[offset : offset + length]
    if len(chunk) != length:
        raise CodecError("truncated payload")
    return chunk


def _unpack_from(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated payload")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        (value,) = _I64.unpack_from(data, offset)
        return value, offset + 8
    if tag == _TAG_FLOAT:
        (value,) = _F64.unpack_from(data, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        return _take(data, offset, length).decode("utf-8"), offset + length
    if tag == _TAG_BYTES:
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        return _take(data, offset, length), offset + length
    if tag == _TAG_FLOAT_LIST:
        (count,) = _U32.unpack_from(data, offset)
        offset += 4
        values = struct.unpack_from(f"<{count}d", data, offset)
        return list(values), offset + 8 * count
    if tag in (_TAG_LIST, _TAG_TUPLE):
        (count,) = _U32.unpack_from(data, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _unpack_from(data, offset)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), offset
    if tag == _TAG_DICT:
        (count,) = _U32.unpack_from(data, offset)
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _unpack_from(data, offset)
            value, offset = _unpack_from(data, offset)
            result[key] = value
        return result, offset
    if tag == _TAG_ARRAY:
        (dlen,) = _U32.unpack_from(data, offset)
        offset += 4
        dtype = np.dtype(_take(data, offset, dlen).decode("ascii"))
        offset += dlen
        (ndim,) = _U32.unpack_from(data, offset)
        offset += 4
        shape = []
        for _ in range(ndim):
            (dim,) = _I64.unpack_from(data, offset)
            shape.append(dim)
            offset += 8
        (rlen,) = _U32.unpack_from(data, offset)
        offset += 4
        raw = _take(data, offset, rlen)
        arr = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        return arr, offset + rlen
    raise CodecError(f"unknown tag {tag!r} at offset {offset - 1}")
