"""MW-backed evaluation pool: the optimizers running on the framework.

:class:`MWVertexPool` implements the same protocol as
:class:`~repro.noise.stochastic.SamplingPool` (``activate`` / ``adopt`` /
``deactivate`` / ``advance`` / ``now``) but every sampling block is executed
as an :class:`~repro.mw.task.MWTask` on an :class:`~repro.mw.driver.MWDriver`
— vertex ``i`` prefers worker ``(i mod n_workers) + 1``, mirroring the
paper's one-worker-per-vertex binding.  The master merges the returned block
means into the vertex evaluations, exactly the "master collates the cost
function computed by the workers" flow of §1.2.

Noise is drawn on the *workers* from their private RNG streams, so results
with the threaded/process backends are statistically identical to the
in-process pool (though not bitwise reproducible, since arrival order is
nondeterministic — the merge math is order-independent, see the evaluation
tests).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Union

import numpy as np

from repro.mw.driver import MWDriver
from repro.mw.worker import WorkerContext
from repro.noise.clock import VirtualClock
from repro.noise.evaluation import VertexEvaluation


class VertexSampler:
    """Worker-side executor: one block sample of the objective.

    ``work`` is ``{"theta": ndarray, "dt": float}``; the result is the block
    mean ``f(theta) + N(0, sigma0(theta)^2 / dt)``.  Picklable whenever ``f``
    (and ``sigma0`` if callable) are picklable, as required by the process
    backend.
    """

    def __init__(
        self,
        f: Callable[[np.ndarray], float],
        sigma0: Union[float, Callable[[np.ndarray], float]] = 1.0,
    ) -> None:
        self.f = f
        self.sigma0 = sigma0

    def sigma0_at(self, theta: np.ndarray) -> float:
        if callable(self.sigma0):
            return float(self.sigma0(theta))
        return float(self.sigma0)

    def __call__(self, work, context: WorkerContext) -> dict:
        theta = np.asarray(work["theta"], dtype=float)
        dt = float(work["dt"])
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        value = float(self.f(theta))
        s0 = self.sigma0_at(theta)
        if s0 > 0.0:
            value += float(context.rng.normal(0.0, s0 / math.sqrt(dt)))
        return {"sample": value, "dt": dt}


class MWVertexPool:
    """Evaluation pool whose sampling runs as MW tasks.

    Parameters
    ----------
    f:
        Underlying deterministic objective (lives on the workers).
    sigma0:
        Inherent noise scale (scalar or callable of theta).
    n_workers:
        Worker count; the paper uses ``d + 3`` so the two trial vertices get
        dedicated workers too.
    backend:
        MW transport (``inproc`` / ``threaded`` / ``process``).
    warmup:
        Sampling time given to newly activated vertices.
    sigma_known:
        Whether evaluations are told the true sigma0.
    seed:
        Root seed for the per-worker RNG streams.
    """

    def __init__(
        self,
        f: Callable[[np.ndarray], float],
        sigma0: Union[float, Callable[[np.ndarray], float]] = 1.0,
        n_workers: int = 4,
        backend: str = "inproc",
        warmup: float = 1.0,
        sigma_known: bool = True,
        seed: Optional[int] = None,
        driver: Optional[MWDriver] = None,
    ) -> None:
        if not (warmup > 0.0):
            raise ValueError(f"warmup must be > 0, got {warmup!r}")
        self.sampler = VertexSampler(f, sigma0)
        self.driver = (
            driver
            if driver is not None
            else MWDriver(self.sampler, n_workers=n_workers, backend=backend, seed=seed)
        )
        self.warmup = float(warmup)
        self.sigma_known = bool(sigma_known)
        self.clock = VirtualClock()
        self.active: List[VertexEvaluation] = []
        self._vertex_seq = 0
        self._affinity: dict[int, int] = {}  # id(ev) -> preferred worker
        self.n_activations = 0
        # duck-type the StochasticFunction surface the optimizers touch
        self.func = _PoolFunctionView(self)

    # -- SamplingPool protocol -----------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def concurrent(self) -> bool:
        return True

    def activate(self, theta, label: str = "") -> VertexEvaluation:
        sigma0 = self.sampler.sigma0_at(np.asarray(theta, dtype=float))
        ev = VertexEvaluation(
            theta,
            sigma0=sigma0 if self.sigma_known else None,
            sigma0_guess=sigma0 if sigma0 > 0 else 1.0,
            label=label,
        )
        self.active.append(ev)
        self.n_activations += 1
        self._vertex_seq += 1
        self._affinity[id(ev)] = ((self._vertex_seq - 1) % self.driver.n_workers) + 1
        self.advance(self.warmup)
        return ev

    def adopt(self, ev: VertexEvaluation) -> VertexEvaluation:
        if ev not in self.active:
            self.active.append(ev)
            self._vertex_seq += 1
            self._affinity[id(ev)] = ((self._vertex_seq - 1) % self.driver.n_workers) + 1
        return ev

    def deactivate(self, ev: VertexEvaluation) -> None:
        try:
            self.active.remove(ev)
        except ValueError:
            raise ValueError("evaluation is not active in this pool") from None
        self._affinity.pop(id(ev), None)

    def advance(self, dt: float, targets=None) -> float:
        """Sample every active vertex for ``dt`` via one MW task each."""
        dt = float(dt)
        if not (dt > 0.0):
            raise ValueError(f"dt must be > 0, got {dt!r}")
        submitted = []
        for ev in self.active:
            task = self.driver.submit(
                {"theta": np.asarray(ev.theta, dtype=float), "dt": dt},
                affinity=self._affinity.get(id(ev)),
            )
            submitted.append((ev, task))
        self.driver.wait_all()
        for ev, task in submitted:
            if task.failed:
                raise RuntimeError(f"sampling task failed: {task.error}")
            ev.merge_block(task.result["dt"], task.result["sample"])
        return self.clock.advance(dt)

    def __len__(self) -> int:
        return len(self.active)

    def __contains__(self, ev: VertexEvaluation) -> bool:
        return ev in self.active

    def shutdown(self) -> None:
        self.driver.shutdown()

    def __enter__(self) -> "MWVertexPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class _PoolFunctionView:
    """Adapter giving optimizers the StochasticFunction fields they read."""

    def __init__(self, pool: MWVertexPool) -> None:
        self._pool = pool

    @property
    def clock(self) -> VirtualClock:
        return self._pool.clock

    @property
    def n_underlying_calls(self) -> int:
        return self._pool.driver.stats()["done"]

    @property
    def total_sampling_time(self) -> float:
        # one task per active vertex per advance; effort is summed dt
        return float(
            sum(
                t.result["dt"]
                for t in self._pool.driver.tasks.values()
                if t.done and isinstance(t.result, dict) and "dt" in t.result
            )
        )

    def true_value(self, theta) -> float:
        return float(self._pool.sampler.f(np.asarray(theta, dtype=float)))
