"""Transport — the MWRMComm layer separated from the driver (paper §3.1).

The Wisconsin MW hides its communication substrate behind an abstract
``MWRMComm`` with ``pack``/``unpack``/``send``/``recv`` primitives so the
same master logic runs over Condor, PVM or sockets.  This module is that
seam for the Python reproduction: :class:`Transport` carries
codec-encodable :class:`~repro.mw.messages.Message` frames between the
master (:class:`~repro.mw.driver.MWDriver`) and a set of worker *ranks*,
and the driver is written purely against it — scheduling, affinity,
retries and seeding live in the driver; *where the workers are* lives
here.

Three same-host transports re-express the historical backends:

* :class:`InprocTransport` — synchronous, deterministic; ``send``
  executes the task immediately and buffers the reply.
* :class:`ThreadedTransport` — one thread per worker over
  ``queue.Queue`` channels.
* :class:`ProcessTransport` — one OS process per worker over
  ``multiprocessing`` queues carrying codec-encoded frames.

The cross-host TCP transport lives in :mod:`repro.mw.tcp` and is selected
with a ``tcp://host:port`` spec; :func:`make_transport` maps any spec
string to an instance.  Workers on dynamic transports may join *after*
the master starts (late joiners), which the driver learns about through
:meth:`Transport.poll` events.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import queue
import threading
from collections import deque
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mw.messages import (
    MSG_SHUTDOWN,
    MSG_TASK,
    Message,
    decode_message,
    encode_message,
)
from repro.mw.worker import Executor, MWWorker
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: Same-host transport names (a ``tcp://host:port`` URL is also accepted).
TRANSPORT_NAMES = ("inproc", "threaded", "process")

#: A transport lifecycle event: ``("joined" | "died", rank)``.
TransportEvent = Tuple[str, int]

EVENT_JOINED = "joined"
EVENT_DIED = "died"

#: The empty capability vector (shared; capability sets are immutable).
NO_CAPS: FrozenSet[str] = frozenset()


def normalize_caps(caps: Any) -> FrozenSet[str]:
    """Coerce a capability declaration to a ``frozenset`` of names.

    Accepts any iterable of strings (or ``None`` → empty).  Names are
    stripped; empty names are dropped, so ``"md,,fast".split(",")`` and
    ``["md", "fast"]`` normalize identically.
    """
    if not caps:
        return NO_CAPS
    return frozenset(s for s in (str(c).strip() for c in caps) if s)


def normalize_caps_map(worker_caps: Optional[Mapping[int, Any]]) -> Dict[int, FrozenSet[str]]:
    """Normalize a ``{rank: caps}`` config mapping (``None`` → empty dict)."""
    if not worker_caps:
        return {}
    return {int(rank): normalize_caps(caps) for rank, caps in worker_caps.items()}


class Transport:
    """Master-side view of a worker pool: frame routing plus liveness.

    A transport owns the communication channels to ``n_workers`` worker
    ranks (1-based; rank 0 is the master).  The driver calls
    :meth:`send` to dispatch a task frame to a rank, :meth:`recv` to
    collect the next worker reply, :meth:`poll` to learn which ranks
    joined or died since the last poll, and :meth:`close` to fan a clean
    shutdown out to every worker.  Implementations must tolerate
    ``close`` being called more than once.
    """

    #: ``send`` completes the task before returning; replies are
    #: immediately available from ``recv`` (the deterministic inproc mode).
    synchronous: bool = False
    #: Workers may join (or rejoin) after ``start`` — the driver must not
    #: give up when no rank is currently live.
    dynamic: bool = False
    #: Telemetry context transport-level metrics report through; the
    #: driver assigns its own before calling ``start``, so implementations
    #: should create metric handles in ``start``, not ``__init__``.
    #: Defaults to the shared no-op instance.
    telemetry: Telemetry = NULL_TELEMETRY

    def start(self) -> None:
        """Bring the transport up (bind sockets, spawn workers); no-op here."""

    def initially_live(self) -> Set[int]:
        """Ranks that are connected and usable immediately after ``start``."""
        raise NotImplementedError

    def worker_caps(self, rank: int) -> FrozenSet[str]:
        """Capability vector worker ``rank`` declared (empty if none/unknown).

        Local transports learn caps from the ``worker_caps`` config option
        of :func:`make_transport`; the TCP transport learns them from each
        worker's hello handshake.  The driver matches task constraints
        against this set when picking a worker.
        """
        return NO_CAPS

    def send(self, rank: int, message: Message) -> None:
        """Deliver ``message`` to worker ``rank`` (best-effort for dead ranks)."""
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Next worker reply, or ``None`` if nothing arrives within ``timeout``.

        ``timeout=None`` blocks until a reply is available; ``timeout=0``
        polls without blocking.
        """
        raise NotImplementedError

    def poll(self) -> List[TransportEvent]:
        """Liveness events since the last poll, in chronological order."""
        return []

    def close(self) -> None:
        """Shut every worker down and release channels; idempotent."""
        raise NotImplementedError


class InprocTransport(Transport):
    """Deterministic single-threaded transport: tasks run inside ``send``.

    The historical ``inproc`` backend: no concurrency, synchronous
    round-robin execution, used by unit tests and the virtual-cluster
    simulator.  Replies buffer in FIFO order and drain through ``recv``.
    """

    synchronous = True

    def __init__(
        self,
        executor: Executor,
        seed_seqs: Sequence[np.random.SeedSequence],
        worker_caps: Optional[Mapping[int, Any]] = None,
    ) -> None:
        self._caps = normalize_caps_map(worker_caps)
        self.workers: Dict[int, MWWorker] = {
            rank: MWWorker(rank, executor, seq, caps=self._caps.get(rank))
            for rank, seq in enumerate(seed_seqs, start=1)
        }
        self._replies: deque[Message] = deque()

    def initially_live(self) -> Set[int]:
        """All ranks: in-process workers exist from construction."""
        return set(self.workers)

    def worker_caps(self, rank: int) -> FrozenSet[str]:
        """Caps from the ``worker_caps`` config mapping (empty default)."""
        return self._caps.get(rank, NO_CAPS)

    def send(self, rank: int, message: Message) -> None:
        """Execute a task message synchronously, buffering the reply."""
        if message.tag != MSG_TASK:
            return
        payload = message.payload
        reply = self.workers[rank].execute(payload["task_id"], payload["work"])
        self._replies.append(reply)

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Pop the oldest buffered reply (never blocks)."""
        return self._replies.popleft() if self._replies else None

    def close(self) -> None:
        """Nothing to tear down for in-process workers."""


class ThreadedTransport(Transport):
    """One Python thread per worker rank over ``queue.Queue`` channels.

    Messages travel un-encoded (same interpreter); real overlap for
    I/O-bound executors.
    """

    def __init__(
        self,
        executor: Executor,
        seed_seqs: Sequence[np.random.SeedSequence],
        worker_caps: Optional[Mapping[int, Any]] = None,
    ) -> None:
        self._caps = normalize_caps_map(worker_caps)
        self.workers: Dict[int, MWWorker] = {
            rank: MWWorker(rank, executor, seq, caps=self._caps.get(rank))
            for rank, seq in enumerate(seed_seqs, start=1)
        }
        self._inboxes: Dict[int, queue.Queue] = {r: queue.Queue() for r in self.workers}
        self._outbox: queue.Queue = queue.Queue()
        self._threads: Dict[int, threading.Thread] = {}

    def start(self) -> None:
        """Start one daemon thread per worker running its receive loop."""
        for rank, worker in self.workers.items():
            t = threading.Thread(
                target=worker.run_loop,
                args=(self._inboxes[rank], self._outbox),
                daemon=True,
                name=f"mw-worker-{rank}",
            )
            t.start()
            self._threads[rank] = t

    def initially_live(self) -> Set[int]:
        """All ranks: threads are running once ``start`` returns."""
        return set(self.workers)

    def worker_caps(self, rank: int) -> FrozenSet[str]:
        """Caps from the ``worker_caps`` config mapping (empty default)."""
        return self._caps.get(rank, NO_CAPS)

    def send(self, rank: int, message: Message) -> None:
        """Enqueue the message on the rank's inbox."""
        self._inboxes[rank].put(message)

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Blocking pop from the shared outbox (``None`` on timeout)."""
        try:
            if timeout == 0:
                return self._outbox.get_nowait()
            return self._outbox.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        """Send shutdown to every thread and join them (bounded wait)."""
        for rank in self._inboxes:
            self._inboxes[rank].put(Message(tag=MSG_SHUTDOWN, sender=0))
        for t in self._threads.values():
            t.join(timeout=5.0)


def _process_worker_main(rank, executor, entropy, spawn_key, inbox, outbox,
                         caps=()) -> None:
    """Entry point of a process-backend worker: decode frames, run the loop."""
    seq = np.random.SeedSequence(entropy, spawn_key=tuple(spawn_key))
    worker = MWWorker(rank, executor, seq, caps=caps)
    while True:
        frame = inbox.get()
        message = decode_message(frame)
        if message.tag == MSG_SHUTDOWN:
            return
        if message.tag != MSG_TASK:
            continue
        payload = message.payload
        reply = worker.execute(payload["task_id"], payload["work"])
        outbox.put(encode_message(reply))


class ProcessTransport(Transport):
    """One OS process per worker rank; frames cross on ``multiprocessing`` queues.

    Real parallelism; the executor must be picklable.  ``poll`` detects
    dead processes so the driver can requeue their in-flight tasks.
    """

    def __init__(
        self,
        executor: Executor,
        seed_seqs: Sequence[np.random.SeedSequence],
        worker_caps: Optional[Mapping[int, Any]] = None,
    ) -> None:
        self._executor = executor
        self._seed_seqs = list(seed_seqs)
        self._caps = normalize_caps_map(worker_caps)
        self._ranks = range(1, len(self._seed_seqs) + 1)
        ctx = mp.get_context("fork")
        self._inboxes = {r: ctx.Queue() for r in self._ranks}
        self._outbox = ctx.Queue()
        self._ctx = ctx
        self.procs: Dict[int, mp.Process] = {}
        self._reported_dead: Set[int] = set()

    def start(self) -> None:
        """Fork one daemon process per rank, handing it its seed stream."""
        for rank in self._ranks:
            seq = self._seed_seqs[rank - 1]
            p = self._ctx.Process(
                target=_process_worker_main,
                args=(
                    rank,
                    self._executor,
                    seq.entropy,
                    tuple(seq.spawn_key),
                    self._inboxes[rank],
                    self._outbox,
                    sorted(self._caps.get(rank, NO_CAPS)),
                ),
                daemon=True,
                name=f"mw-worker-{rank}",
            )
            p.start()
            self.procs[rank] = p

    def initially_live(self) -> Set[int]:
        """All ranks: the processes are forked by ``start``."""
        return set(self._ranks)

    def worker_caps(self, rank: int) -> FrozenSet[str]:
        """Caps from the ``worker_caps`` config mapping (empty default)."""
        return self._caps.get(rank, NO_CAPS)

    def send(self, rank: int, message: Message) -> None:
        """Encode the message and enqueue it on the rank's inbox."""
        self._inboxes[rank].put(encode_message(message))

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Blocking pop + decode from the shared outbox (``None`` on timeout)."""
        try:
            if timeout == 0:
                frame = self._outbox.get_nowait()
            else:
                frame = self._outbox.get(timeout=timeout)
        except queue.Empty:
            return None
        return decode_message(frame)

    def poll(self) -> List[TransportEvent]:
        """Report each dead worker process exactly once."""
        events: List[TransportEvent] = []
        for rank, proc in self.procs.items():
            if rank not in self._reported_dead and not proc.is_alive():
                self._reported_dead.add(rank)
                events.append((EVENT_DIED, rank))
        return events

    def close(self) -> None:
        """Send shutdown frames, join, and terminate stragglers."""
        for rank, proc in self.procs.items():
            if proc.is_alive():
                try:
                    self._inboxes[rank].put(
                        encode_message(Message(tag=MSG_SHUTDOWN, sender=0))
                    )
                except Exception:  # noqa: BLE001 - queue may be broken
                    pass
        for proc in self.procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()


# -- executor wire specs ------------------------------------------------------
#
# Cross-host transports cannot ship code: the codec carries data only (no
# pickle).  Instead the master describes its executor as an importable
# "module:attr" spec that standalone workers resolve locally, the same way
# the paper's workers import the simulation binary from their own disk.


class FunctionExecutor:
    """Adapt a plain ``fn(item)`` to the ``executor(work, context)`` signature.

    Used by :func:`repro.parallel.backends.parallel_map`'s ``mw`` backend.
    Picklable by reference as long as ``fn`` is module-level — the same
    constraint the ``process`` backend already imposes — and wire-speccable
    for TCP workers whenever ``fn`` itself is importable.
    """

    def __init__(self, fn) -> None:
        self.fn = fn

    def __call__(self, work, context):
        """Execute one item, ignoring the worker context."""
        return self.fn(work)

    def mw_wire_spec(self) -> Optional[dict]:
        """Wire spec telling remote workers to wrap ``fn`` themselves."""
        spec = spec_of(self.fn)
        if spec is None:
            return None
        return {"kind": "function", "spec": spec}


def spec_of(obj: Any) -> Optional[str]:
    """``"module:attr"`` for an importable module-level callable, else ``None``."""
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not isinstance(qualname, str) or "." in qualname:
        return None
    try:
        imported = importlib.import_module(module)
    except ImportError:
        return None
    if getattr(imported, qualname, None) is not obj:
        return None
    return f"{module}:{qualname}"


def executor_wire_spec(executor: Executor) -> Optional[dict]:
    """Describe ``executor`` for the wire, or ``None`` if it cannot travel.

    Returns ``{"kind": "executor" | "function", "spec": "module:attr"}``.
    Objects may customize via an ``mw_wire_spec()`` method (see
    :class:`FunctionExecutor`); plain module-level callables are described
    generically.
    """
    custom = getattr(executor, "mw_wire_spec", None)
    if callable(custom):
        return custom()
    spec = spec_of(executor)
    if spec is None:
        return None
    return {"kind": "executor", "spec": spec}


def resolve_executor(payload: dict) -> Executor:
    """Inverse of :func:`executor_wire_spec`: import and adapt the callable.

    Raises ``ValueError`` for malformed payloads and lets import errors
    propagate with their natural message (the worker operator needs it).
    """
    if not isinstance(payload, dict) or "spec" not in payload:
        raise ValueError(f"malformed executor spec {payload!r}")
    kind = payload.get("kind", "executor")
    module_name, sep, attr = str(payload["spec"]).partition(":")
    if not sep or not attr:
        raise ValueError(f"executor spec must be 'module:attr', got {payload['spec']!r}")
    obj = getattr(importlib.import_module(module_name), attr)
    if kind == "function":
        return FunctionExecutor(obj)
    if kind == "executor":
        return obj
    raise ValueError(f"unknown executor kind {kind!r}")


# -- factory ------------------------------------------------------------------


def is_tcp_spec(spec: str) -> bool:
    """Whether ``spec`` selects the TCP transport (``tcp://host:port``)."""
    return isinstance(spec, str) and spec.startswith("tcp://")


def make_transport(
    spec: str,
    executor: Executor,
    n_workers: int,
    seed_seqs: Sequence[np.random.SeedSequence],
    **options: Any,
) -> Transport:
    """Build the transport named by ``spec``.

    ``spec`` is ``"inproc"``, ``"threaded"``, ``"process"`` or a
    ``tcp://host:port`` URL (the master listens there; ``port`` may be 0
    for an ephemeral port).  ``options`` are forwarded to the TCP
    transport (heartbeat tuning); the same-host transports accept only
    ``worker_caps`` — a ``{rank: [capability, …]}`` mapping standing in
    for the capability declaration TCP workers make in their hello
    handshake.
    """
    if spec in ("inproc", "threaded", "process"):
        worker_caps = options.pop("worker_caps", None)
        if options:
            raise ValueError(
                f"transport {spec!r} accepts only the worker_caps option, "
                f"got {options}"
            )
        if spec == "inproc":
            return InprocTransport(executor, seed_seqs, worker_caps=worker_caps)
        if spec == "threaded":
            return ThreadedTransport(executor, seed_seqs, worker_caps=worker_caps)
        return ProcessTransport(executor, seed_seqs, worker_caps=worker_caps)
    if is_tcp_spec(spec):
        from repro.mw.tcp import TcpMasterTransport

        return TcpMasterTransport(
            spec,
            executor=executor,
            n_workers=n_workers,
            seed_seqs=seed_seqs,
            **options,
        )
    raise ValueError(
        f"backend must be one of {TRANSPORT_NAMES} or a tcp://host:port URL, "
        f"got {spec!r}"
    )
