"""MWWorker — executes tasks, reports results, waits for more (paper §3.1).

A worker is a thin loop around a user *executor*: a callable
``executor(work, context) -> result`` where ``context`` carries the worker's
rank and its private RNG stream (spawned from the driver seed so parallel
noise is reproducible and independent across workers, the standard
``SeedSequence`` discipline for parallel sampling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Iterable, Optional

import numpy as np

from repro.mw.messages import (
    MSG_ERROR,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    Message,
)


@dataclass
class WorkerContext:
    """Per-worker execution context handed to the executor.

    ``caps`` is the worker's declared capability set (e.g.
    ``frozenset({"md", "fast"})``) — the same vector the master matched
    against the task's constraints, so executors can stamp placement
    evidence (audit logs, records) with where they actually ran.
    """

    rank: int
    rng: np.random.Generator
    caps: FrozenSet[str] = field(default_factory=frozenset)


Executor = Callable[[Any, WorkerContext], Any]


class MWWorker:
    """One worker: executes task payloads and reports to the master.

    Parameters
    ----------
    rank:
        Worker rank (>= 1; rank 0 is the master).
    executor:
        ``executor(work, context) -> result``.
    seed_seq:
        ``numpy.random.SeedSequence`` for this worker's private RNG stream.
    caps:
        Capability names this worker advertises (``None`` → none).
    """

    def __init__(
        self,
        rank: int,
        executor: Executor,
        seed_seq: Optional[np.random.SeedSequence] = None,
        caps: Optional[Iterable[str]] = None,
    ) -> None:
        if rank < 1:
            raise ValueError(f"worker rank must be >= 1, got {rank}")
        self.rank = rank
        self.executor = executor
        self.context = WorkerContext(
            rank=rank,
            rng=np.random.default_rng(seed_seq),
            caps=frozenset(str(c) for c in (caps or ())),
        )
        self.n_executed = 0
        self.n_errors = 0

    def stats(self) -> dict:
        """Execution counters for monitoring: tasks executed and errors."""
        return {"rank": self.rank, "executed": self.n_executed, "errors": self.n_errors}

    # -- synchronous execution (inproc backend drives this directly) --------

    def execute(self, task_id: int, work: Any) -> Message:
        """Run one task; always returns a result or error message."""
        try:
            result = self.executor(work, self.context)
        except Exception as exc:  # noqa: BLE001 - worker must never crash the run
            self.n_errors += 1
            return Message(
                tag=MSG_ERROR,
                sender=self.rank,
                payload={"task_id": task_id, "error": f"{type(exc).__name__}: {exc}"},
            )
        self.n_executed += 1
        return Message(
            tag=MSG_RESULT,
            sender=self.rank,
            payload={"task_id": task_id, "result": result},
        )

    # -- message loop (threaded backend runs this in a thread) ----------------

    def run_loop(self, inbox, outbox) -> None:
        """Blocking receive loop: execute ``task`` messages until ``shutdown``.

        ``inbox`` / ``outbox`` expose ``get()`` / ``put(item)`` (queue.Queue
        compatible); items are :class:`Message` objects.
        """
        while True:
            message = inbox.get()
            if message.tag == MSG_SHUTDOWN:
                return
            if message.tag != MSG_TASK:
                continue  # tolerate stray traffic
            payload = message.payload
            reply = self.execute(payload["task_id"], payload["work"])
            outbox.put(reply)
