"""MWTask — the abstraction of one unit of work (paper §3.1).

"MWTask stores the data describing the task and the results computed by the
workers."  A task's lifecycle is ``PENDING -> RUNNING -> DONE`` (or back to
``PENDING`` on worker error, until the retry budget runs out, then
``FAILED``).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

_task_ids = itertools.count(1)


class TaskState(enum.Enum):
    """Lifecycle states of an :class:`MWTask`."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class MWTask:
    """Work payload plus result slot and scheduling metadata.

    Parameters
    ----------
    work:
        Codec-serializable payload describing the computation.
    affinity:
        Preferred worker rank (the paper binds each simplex vertex to a
        dedicated worker); ``None`` lets the driver pick any idle worker.
        Affinity is *soft*: if the preferred rank is busy or dead the
        driver falls back to another eligible worker (and counts the
        fallback).
    constraints:
        Capability constraint vector — an iterable of capability names
        (e.g. ``("md",)``).  The driver dispatches the task only to
        workers whose declared capability set is a superset of these
        constraints.  Constraints are *hard*: a task with no eligible
        live worker waits (dynamic transports may still grow one) or
        fails rather than running on a mismatched worker.
    n_evals:
        How many function evaluations this task represents (a batched
        ``--eval-batch`` frame carries ``q``; default 1).  Pure
        accounting weight: the driver's inflight gauges and utilization
        rows count evaluations, not frames, so ``watch --cells`` stays
        honest under batching.
    """

    __slots__ = ("task_id", "work", "affinity", "constraints", "state",
                 "result", "error", "worker", "attempts", "n_evals")

    def __init__(self, work: Any, affinity: Optional[int] = None,
                 n_evals: int = 1, constraints: Any = ()) -> None:
        if n_evals < 1:
            raise ValueError(f"n_evals must be >= 1, got {n_evals}")
        self.task_id = next(_task_ids)
        self.work = work
        self.affinity = affinity
        self.constraints = frozenset(str(c) for c in (constraints or ()))
        self.n_evals = int(n_evals)
        self.state = TaskState.PENDING
        self.result: Any = None
        self.error: Optional[str] = None
        self.worker: Optional[int] = None
        self.attempts = 0

    @property
    def done(self) -> bool:
        """Whether the task completed successfully."""
        return self.state is TaskState.DONE

    @property
    def failed(self) -> bool:
        """Whether the task exhausted its retry budget."""
        return self.state is TaskState.FAILED

    def mark_running(self, worker: int) -> None:
        """Record dispatch to ``worker`` (counts as one attempt)."""
        self.state = TaskState.RUNNING
        self.worker = worker
        self.attempts += 1

    def mark_done(self, result: Any) -> None:
        """Record successful completion with ``result``."""
        self.state = TaskState.DONE
        self.result = result

    def mark_retry(self, error: str) -> None:
        """Return the task to the queue after a worker error or crash."""
        self.state = TaskState.PENDING
        self.error = error
        self.worker = None

    def mark_failed(self, error: str) -> None:
        """Give up on the task (retry budget spent)."""
        self.state = TaskState.FAILED
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MWTask {self.task_id} {self.state.value} worker={self.worker}>"
