"""TCP socket transport: cross-host master-worker without a shared filesystem.

Completes the paper's §4.3 picture — evaluation workers on *remote
processors* — with a small framed protocol over plain sockets:

* every frame is a big-endian u32 length prefix followed by one
  codec-encoded :class:`~repro.mw.messages.Message` (see
  :func:`repro.mw.codec.encode_frame`; truncated or oversized frames
  raise :class:`~repro.mw.codec.CodecError`, never hang);
* the master (:class:`TcpMasterTransport`) listens on ``tcp://host:port``
  and accepts workers whenever they show up — *late joiners* are welcome,
  which is how a campaign master on one host is served by workers
  launched minutes later on others;
* a joining worker sends ``hello`` (protocol version plus an optional
  ``caps`` capability vector, e.g. ``["md", "fast"]``, that the driver
  matches against task constraint vectors); the master answers
  ``welcome`` with the worker's assigned rank, its spawned seed stream
  (entropy + spawn key, so per-rank RNG streams are identical to the
  same-host transports), the executor's importable ``module:attr`` wire
  spec, and the heartbeat interval;
* workers heartbeat between tasks; a silent or disconnected worker is
  reported dead through :meth:`TcpMasterTransport.poll`, which feeds the
  driver's existing crash-requeue path, and its rank becomes free so a
  replacement worker is "restarted on the same processors" (§3.1);
* master shutdown fans a ``shutdown`` frame to every connected worker and
  closes all sockets, so ``python -m repro mw-worker`` processes exit
  cleanly when the campaign finishes.

The standalone worker entrypoint is :func:`run_worker`, exposed on the
CLI as ``python -m repro mw-worker tcp://host:port``.
"""

from __future__ import annotations

import queue
import random
import socket
import threading
import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mw.codec import (
    CodecError,
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    decode_frame_length,
    encode_frame,
)
from repro.mw.messages import (
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_SHUTDOWN,
    MSG_TASK,
    MSG_WELCOME,
    Message,
    decode_message,
    encode_message,
)
from repro.mw.transport import (
    EVENT_DIED,
    EVENT_JOINED,
    NO_CAPS,
    Transport,
    TransportEvent,
    executor_wire_spec,
    normalize_caps,
    resolve_executor,
)
from repro.mw.worker import Executor, MWWorker
from repro.telemetry.metrics import NULL_COUNTER, NULL_HISTOGRAM

#: Protocol version carried in the hello/welcome handshake.
PROTOCOL_VERSION = 1

#: Default seconds between worker heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Dead-peer detection: a worker silent for this many heartbeat intervals
#: (no heartbeat, result, or error frame) is presumed crashed.
HEARTBEAT_TIMEOUT_INTERVALS = 5.0


def parse_tcp_url(url: str) -> Tuple[str, int]:
    """Split ``tcp://host:port`` into ``(host, port)``; port may be 0."""
    if not url.startswith("tcp://"):
        raise ValueError(f"expected a tcp://host:port URL, got {url!r}")
    rest = url[len("tcp://") :]
    host, sep, port_s = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected a tcp://host:port URL, got {url!r}")
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"invalid port {port_s!r} in {url!r}") from None
    if not (0 <= port <= 65535):
        raise ValueError(f"port out of range in {url!r}")
    return host, port


def dial_with_backoff(
    host: str,
    port: int,
    timeout: float,
    attempt_timeout: float = 5.0,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
) -> socket.socket:
    """Dial ``(host, port)``, retrying with exponential backoff until ``timeout``.

    The shared dial loop of every client in the package (mw workers, the
    network store client): each failed attempt doubles the sleep from
    ``base_delay`` up to ``max_delay``, jittered by a random factor in
    ``[0.5, 1.0]`` so a fleet of workers restarting together does not
    reconnect in lockstep.  When the deadline passes, the raised
    ``OSError`` names the peer and carries the *last* underlying error —
    a refused port, an unresolvable host, and an unreachable network all
    read differently instead of vanishing into a bare timeout.
    """
    deadline = time.monotonic() + float(timeout)
    delay = float(base_delay)
    while True:
        try:
            return socket.create_connection((host, port), timeout=attempt_timeout)
        except OSError as exc:
            now = time.monotonic()
            if now >= deadline:
                raise OSError(
                    f"could not connect to {host}:{port} within "
                    f"{float(timeout):g}s (last error: {exc})"
                ) from exc
            time.sleep(min(delay, deadline - now) * random.uniform(0.5, 1.0))
            delay = min(delay * 2.0, float(max_delay))


def recv_exact(sock: socket.socket, n: int, allow_eof: bool = False) -> Optional[bytes]:
    """Read exactly ``n`` bytes from a blocking socket.

    A clean EOF *between* frames returns ``None`` when ``allow_eof`` is
    set; EOF mid-read always raises :class:`CodecError` (a truncated
    frame must be an error, never a hang or a silent short read).
    """
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if allow_eof and not buf:
                return None
            raise CodecError(f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf += chunk
    return bytes(buf)


def send_frame(sock: socket.socket, message: Message) -> None:
    """Write one framed message to the socket."""
    sock.sendall(encode_frame(encode_message(message)))


def recv_frame(sock: socket.socket) -> Optional[Message]:
    """Read one framed message; ``None`` on clean EOF at a frame boundary."""
    header = recv_exact(sock, FRAME_HEADER_BYTES, allow_eof=True)
    if header is None:
        return None
    length = decode_frame_length(header, MAX_FRAME_BYTES)
    data = recv_exact(sock, length)
    return decode_message(data)


def _enable_keepalive(
    sock: socket.socket, idle: int = 30, interval: int = 10, count: int = 3
) -> None:
    """Arm kernel TCP keepalive so a vanished peer surfaces as an error.

    Heartbeat frames only protect the *master* against silent workers; a
    master host that power-cuts or partitions away would otherwise leave
    workers blocked in ``recv`` on a half-open connection forever.  With
    these defaults a dead peer is detected within roughly
    ``idle + interval * count`` seconds.  Tuning options are set
    best-effort (not every platform exposes them); the base switch is
    POSIX-universal.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    except OSError:  # pragma: no cover - keepalive unsupported
        return
    for option, value in (
        (getattr(socket, "TCP_KEEPIDLE", None), idle),
        (getattr(socket, "TCP_KEEPINTVL", None), interval),
        (getattr(socket, "TCP_KEEPCNT", None), count),
    ):
        if option is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, option, value)
            except OSError:  # pragma: no cover - platform-specific
                pass


def _disable_nagle(sock: socket.socket) -> None:
    """Turn off Nagle's algorithm (``TCP_NODELAY``) best-effort.

    The protocol is strict request/response per connection — the peer
    cannot make progress until the frame it is waiting for arrives — so
    Nagle's coalescing delay buys nothing and its interaction with
    delayed ACKs taxes every task/reply frame.  Measurable on the async
    hot path, where a campaign master pushes thousands of small frames
    per second.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - option unsupported
        pass


def _seed_payload(seq: np.random.SeedSequence) -> dict:
    """Codec-safe description of a spawned seed stream.

    ``entropy`` travels as a decimal string because it can exceed the
    codec's 64-bit integer range (128-bit when the root seed is None).
    """
    return {
        "entropy": str(seq.entropy),
        "spawn_key": [int(k) for k in seq.spawn_key],
    }


def _seed_from_payload(payload: dict) -> np.random.SeedSequence:
    """Inverse of :func:`_seed_payload`."""
    return np.random.SeedSequence(
        int(payload["entropy"]), spawn_key=tuple(payload["spawn_key"])
    )


class TcpMasterTransport(Transport):
    """Master side of the TCP transport: listener, registry, heartbeats.

    Owns ``n_workers`` rank slots.  Workers connect at any time; each is
    welcomed onto the lowest free rank (a rank freed by a dead worker is
    reused first-come, so replacements inherit the dead worker's seed
    stream and affinity).  Excess workers beyond ``n_workers`` are turned
    away with a ``shutdown`` frame.

    Parameters
    ----------
    url:
        ``tcp://host:port`` to listen on; port 0 binds an ephemeral port
        (read the result from :attr:`address`).
    executor:
        The master's executor; shipped to workers as an importable
        ``module:attr`` wire spec when possible.  Workers launched with
        an explicit ``--executor`` ignore it.
    n_workers:
        Rank slots (1..n_workers).
    seed_seqs:
        One spawned ``SeedSequence`` per rank.
    heartbeat_interval:
        Seconds between worker heartbeats (sent to workers in the
        welcome).
    heartbeat_timeout:
        Seconds of silence after which a worker is presumed dead
        (default: ``HEARTBEAT_TIMEOUT_INTERVALS * heartbeat_interval``).
    """

    dynamic = True

    def __init__(
        self,
        url: str,
        executor: Executor,
        n_workers: int,
        seed_seqs: Sequence[np.random.SeedSequence],
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: Optional[float] = None,
    ) -> None:
        self.host, self.port = parse_tcp_url(url)
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be > 0, got {heartbeat_interval}")
        self.n_workers = int(n_workers)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(
            heartbeat_timeout
            if heartbeat_timeout is not None
            else HEARTBEAT_TIMEOUT_INTERVALS * heartbeat_interval
        )
        self._seed_seqs = list(seed_seqs)
        self._executor_payload = executor_wire_spec(executor)
        self._replies: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._conns: Dict[int, socket.socket] = {}
        self._caps: Dict[int, FrozenSet[str]] = {}
        self._last_seen: Dict[int, float] = {}
        self._events: List[TransportEvent] = []
        self._threads: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._closing = False
        # Re-bound against the live telemetry context in start(); null here
        # so a transport used without a driver still counts safely.
        self._m_sent = NULL_COUNTER
        self._m_received = NULL_COUNTER
        self._m_heartbeat_gap = NULL_HISTOGRAM

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the listener and start accepting workers in the background."""
        # Metric handles are bound here, after the driver has assigned its
        # telemetry context (Transport.telemetry is set post-construction).
        self._m_sent = self.telemetry.counter(
            "repro_mw_frames_total", "TCP frames by direction.",
            direction="sent",
        )
        self._m_received = self.telemetry.counter(
            "repro_mw_frames_total", "TCP frames by direction.",
            direction="received",
        )
        self._m_heartbeat_gap = self.telemetry.histogram(
            "repro_mw_heartbeat_gap_seconds",
            "Observed silence between worker frames at each heartbeat "
            "(RTT + scheduling delay proxy).",
        )
        self._listener = socket.create_server(
            (self.host, self.port), backlog=self.n_workers + 2, reuse_port=False
        )
        # closing a socket does not wake a thread blocked in accept() on
        # Linux, so the accept loop polls with a short timeout instead
        self._listener.settimeout(0.25)
        self.port = self._listener.getsockname()[1]
        t = threading.Thread(target=self._accept_loop, daemon=True, name="mw-tcp-accept")
        t.start()
        self._threads.append(t)

    @property
    def address(self) -> str:
        """The bound ``tcp://host:port`` (port resolved after ``start``)."""
        return f"tcp://{self.host}:{self.port}"

    def initially_live(self) -> set:
        """No ranks: TCP workers join after the master starts listening."""
        return set()

    def close(self) -> None:
        """Fan shutdown out to every worker, close all sockets; idempotent."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            conns = list(self._conns.values())
            self._conns.clear()
        for sock in conns:
            try:
                send_frame(sock, Message(tag=MSG_SHUTDOWN, sender=0))
            except (OSError, CodecError):
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for t in self._threads:
            t.join(timeout=5.0)

    # -- master-side plumbing ---------------------------------------------

    def _accept_loop(self) -> None:
        """Accept connections until the listener closes; handshake each."""
        while True:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                with self._lock:
                    if self._closing:
                        return
                continue
            except OSError:
                return  # listener closed
            # handshake on its own thread: one silent or slow connection
            # (port scanner, health probe) must not block other joiners
            threading.Thread(
                target=self._handshake_guarded, args=(sock,),
                daemon=True, name="mw-tcp-handshake",
            ).start()

    def _handshake_guarded(self, sock: socket.socket) -> None:
        """Run one handshake, closing the socket on any failure."""
        try:
            self._handshake(sock)
        except (OSError, CodecError, ValueError):
            try:
                sock.close()
            except OSError:
                pass

    def _handshake(self, sock: socket.socket) -> None:
        """Welcome one connecting worker onto a free rank (or turn it away)."""
        sock.settimeout(self.heartbeat_timeout)
        hello = recv_frame(sock)
        if hello is None or hello.tag != MSG_HELLO:
            raise ValueError("worker did not introduce itself with a hello frame")
        version = (hello.payload or {}).get("version")
        if version != PROTOCOL_VERSION:
            send_frame(sock, Message(tag=MSG_SHUTDOWN, sender=0,
                                     payload={"reason": "protocol version mismatch"}))
            raise ValueError(f"unsupported protocol version {version!r}")
        # Capability vector: an optional, additive hello field — workers
        # predating it simply declare no capabilities.
        caps = normalize_caps((hello.payload or {}).get("caps"))
        with self._lock:
            if self._closing:
                raise ValueError("transport is closing")
            free = [r for r in range(1, self.n_workers + 1) if r not in self._conns]
            if not free:
                rank = None
            else:
                rank = free[0]
                self._conns[rank] = sock
                self._caps[rank] = caps
                self._last_seen[rank] = time.monotonic()
        if rank is None:
            send_frame(sock, Message(tag=MSG_SHUTDOWN, sender=0,
                                     payload={"reason": "all worker ranks are taken"}))
            raise ValueError("no free worker rank")
        welcome = Message(
            tag=MSG_WELCOME,
            sender=0,
            payload={
                "rank": rank,
                "seed": _seed_payload(self._seed_seqs[rank - 1]),
                "executor": self._executor_payload,
                "heartbeat_interval": self.heartbeat_interval,
            },
        )
        try:
            send_frame(sock, welcome)
        except OSError:
            self._drop(rank, sock, report=False)
            raise
        sock.settimeout(None)
        _enable_keepalive(sock)
        _disable_nagle(sock)
        with self._lock:
            if self._conns.get(rank) is not sock:
                # swept dead (welcome stalled past the heartbeat window) or
                # superseded while we handshook; do not announce the join
                raise ValueError("connection lost during handshake")
            self._last_seen[rank] = time.monotonic()
            # queue the join BEFORE the reader thread exists: the reader is
            # the only source of this connection's DIED event, so starting
            # it later makes died-before-joined inversion impossible
            self._events.append((EVENT_JOINED, rank))
        t = threading.Thread(
            target=self._reader_loop, args=(rank, sock),
            daemon=True, name=f"mw-tcp-reader-{rank}",
        )
        t.start()
        with self._lock:
            self._threads.append(t)

    def _reader_loop(self, rank: int, sock: socket.socket) -> None:
        """Pump frames from one worker into the reply queue until EOF/error."""
        try:
            while True:
                message = recv_frame(sock)
                if message is None:
                    break
                now = time.monotonic()
                with self._lock:
                    if self._conns.get(rank) is not sock:
                        return  # superseded (e.g. presumed dead, rank reused)
                    gap = now - self._last_seen.get(rank, now)
                    self._last_seen[rank] = now
                self._m_received.inc()
                if message.tag == MSG_HEARTBEAT:
                    # The silence a heartbeat ends approximates one worker
                    # round trip plus scheduling delay — the RTT series.
                    self._m_heartbeat_gap.observe(gap)
                    continue
                self._replies.put(message)
        except (OSError, CodecError):
            pass
        self._drop(rank, sock)

    def _drop(self, rank: int, sock: socket.socket, report: bool = True) -> None:
        """Unregister a connection; report the death unless we are closing."""
        with self._lock:
            if self._conns.get(rank) is not sock:
                return
            del self._conns[rank]
            self._caps.pop(rank, None)
            self._last_seen.pop(rank, None)
            if report and not self._closing:
                self._events.append((EVENT_DIED, rank))
        try:
            sock.close()
        except OSError:
            pass

    # -- Transport interface ----------------------------------------------

    def send(self, rank: int, message: Message) -> None:
        """Frame and send to one worker; a failed send reports it dead."""
        with self._lock:
            sock = self._conns.get(rank)
        if sock is None:
            return  # died between poll and send; poll() already reported it
        try:
            send_frame(sock, message)
            self._m_sent.inc()
        except (OSError, CodecError):
            self._drop(rank, sock)

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Next worker result/error frame (``None`` on timeout)."""
        try:
            if timeout == 0:
                return self._replies.get_nowait()
            return self._replies.get(timeout=timeout)
        except queue.Empty:
            return None

    def poll(self) -> List[TransportEvent]:
        """Drain join/death events; also sweep for heartbeat timeouts."""
        now = time.monotonic()
        stale: List[Tuple[int, socket.socket]] = []
        with self._lock:
            for rank, sock in self._conns.items():
                if now - self._last_seen.get(rank, now) > self.heartbeat_timeout:
                    stale.append((rank, sock))
        for rank, sock in stale:
            self._drop(rank, sock)
        with self._lock:
            events, self._events = self._events, []
        return events

    def worker_caps(self, rank: int) -> FrozenSet[str]:
        """Caps rank ``rank`` declared in its hello (empty if unknown/dead)."""
        with self._lock:
            return self._caps.get(rank, NO_CAPS)

    def stats(self) -> dict:
        """Connection counts for monitoring: connected ranks, caps, slots."""
        with self._lock:
            return {
                "connected": sorted(self._conns),
                "caps": {r: sorted(c) for r, c in self._caps.items() if c},
                "n_workers": self.n_workers,
                "address": self.address,
            }


class TcpWorkerEndpoint:
    """Worker side of the TCP transport: connect, handshake, serve tasks.

    The endpoint retries the initial connection until ``connect_timeout``
    elapses, so workers may be launched before the master is listening.
    After the welcome it executes ``task`` frames one at a time with an
    :class:`~repro.mw.worker.MWWorker` seeded from the master-assigned
    stream, heartbeating from a background thread, until the master sends
    ``shutdown`` or closes the socket.

    Parameters
    ----------
    url:
        The master's ``tcp://host:port``.
    executor:
        Local executor override.  When ``None`` the endpoint resolves the
        master's wire spec (``module:attr``) — the normal mode for
        ``python -m repro mw-worker``.
    connect_timeout:
        Seconds to keep retrying the initial connection.
    caps:
        Capability names this worker advertises in its hello (e.g.
        ``["md", "fast"]``); the master only dispatches tasks whose
        constraint vector these cover.
    """

    def __init__(
        self,
        url: str,
        executor: Optional[Executor] = None,
        connect_timeout: float = 30.0,
        caps: Optional[Iterable[str]] = None,
    ) -> None:
        self.host, self.port = parse_tcp_url(url)
        if self.port == 0:
            raise ValueError(f"worker needs an explicit master port, got {url!r}")
        self.executor = executor
        self.caps = normalize_caps(caps)
        self.connect_timeout = float(connect_timeout)
        self.rank: Optional[int] = None
        self._send_lock = threading.Lock()
        self._stop_heartbeat = threading.Event()

    def _connect(self) -> socket.socket:
        """Dial the master, backing off until ``connect_timeout`` elapses."""
        sock = dial_with_backoff(self.host, self.port, self.connect_timeout)
        # a bounded timeout for the handshake only; the task loop resets
        # it to blocking (idle gaps between tasks can be arbitrarily long)
        sock.settimeout(max(self.connect_timeout, 30.0))
        return sock

    def _send(self, sock: socket.socket, message: Message) -> None:
        """Serialized frame write (heartbeat thread and task loop share it)."""
        with self._send_lock:
            send_frame(sock, message)

    def _heartbeat_loop(self, sock: socket.socket, interval: float) -> None:
        """Send a heartbeat every ``interval`` seconds until stopped."""
        rank = self.rank or 0
        while not self._stop_heartbeat.wait(interval):
            try:
                self._send(sock, Message(tag=MSG_HEARTBEAT, sender=rank))
            except (OSError, CodecError):
                return

    def run(self) -> dict:
        """Serve tasks until the master shuts down; returns worker stats.

        Raises ``OSError`` if the master cannot be reached within
        ``connect_timeout``, ``CodecError`` on a corrupt stream, and
        ``ValueError`` if no executor is available on either side.
        """
        sock = self._connect()
        try:
            return self._serve(sock)
        finally:
            self._stop_heartbeat.set()
            try:
                sock.close()
            except OSError:
                pass

    def _serve(self, sock: socket.socket) -> dict:
        """The handshake + task loop on an established connection."""
        hello_payload = {"version": PROTOCOL_VERSION}
        if self.caps:
            hello_payload["caps"] = sorted(self.caps)
        self._send(sock, Message(tag=MSG_HELLO, sender=0, payload=hello_payload))
        welcome = recv_frame(sock)
        if welcome is None:
            raise CodecError("master closed the connection before welcome")
        if welcome.tag == MSG_SHUTDOWN:
            reason = (welcome.payload or {}).get("reason", "master refused the worker")
            return {"rank": None, "executed": 0, "errors": 0, "refused": reason}
        if welcome.tag != MSG_WELCOME:
            raise CodecError(f"expected welcome, got {welcome.tag!r}")
        payload = welcome.payload
        self.rank = int(payload["rank"])
        executor = self.executor
        if executor is None:
            if payload.get("executor") is None:
                raise ValueError(
                    "master did not provide an executor spec; launch the worker "
                    "with an explicit --executor module:attr"
                )
            executor = resolve_executor(payload["executor"])
        worker = MWWorker(self.rank, executor, _seed_from_payload(payload["seed"]),
                          caps=self.caps)
        # blocking from here (idle waits have no bound), with kernel
        # keepalive so a master that vanishes without FIN/RST still
        # unblocks the loop instead of orphaning the worker process
        sock.settimeout(None)
        _enable_keepalive(sock)
        _disable_nagle(sock)
        interval = float(payload.get("heartbeat_interval", DEFAULT_HEARTBEAT_INTERVAL))
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(sock, interval),
            daemon=True, name=f"mw-tcp-heartbeat-{self.rank}",
        )
        beat.start()
        while True:
            # after the handshake, a broken stream means the master is gone
            # (crash, or the shutdown/close race) — exit cleanly, do not
            # traceback: the worker's job is over either way
            try:
                message = recv_frame(sock)
            except (OSError, CodecError):
                break
            if message is None or message.tag == MSG_SHUTDOWN:
                break
            if message.tag != MSG_TASK:
                continue  # tolerate stray traffic
            task = message.payload
            reply = worker.execute(task["task_id"], task["work"])
            try:
                self._send(sock, reply)
            except (OSError, CodecError):
                break
        stats = worker.stats()
        stats["refused"] = None
        return stats


def run_worker(
    url: str,
    executor: Optional[Executor] = None,
    connect_timeout: float = 30.0,
    caps: Optional[Iterable[str]] = None,
) -> dict:
    """Run one standalone TCP worker to completion; returns its stats.

    The ``python -m repro mw-worker`` entrypoint: connects to the master
    at ``url``, declares its capability vector ``caps`` in the hello,
    serves tasks until the master shuts down, and reports
    ``{"rank", "executed", "errors", "refused"}``.
    """
    return TcpWorkerEndpoint(
        url, executor=executor, connect_timeout=connect_timeout, caps=caps
    ).run()
