"""Durable result store for campaigns.

Results live in an append-only JSONL file (``results.jsonl``) inside the
campaign directory: one JSON object per line, written with ``O_APPEND`` in a
single ``write`` call so concurrent writers (several runner processes
pointed at the same campaign) interleave whole lines, never fragments.
Append-only also makes interrupt-safety trivial — a killed run leaves a
valid store containing exactly the jobs that finished.

The reader is forgiving: a truncated final line (the one failure mode a
hard kill can produce) is skipped, and when the same job id appears more
than once the *last* record wins, so a re-run may correct an earlier
failure without rewriting history.

``ResultStore()`` with no path is an in-memory store for ephemeral sweeps
(the benchmark harness) and tests.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

STATUS_DONE = "done"
STATUS_FAILED = "failed"


class ResultStore:
    """Append-only job-result log keyed by stable job id."""

    def __init__(self, path=None) -> None:
        self.path: Optional[Path] = None if path is None else Path(path)
        self._memory: List[dict] = []
        self._tail_checked = False
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def _needs_leading_newline(self) -> bool:
        """Whether the file ends mid-line (a hard kill during a write).

        Without this check the next append would concatenate onto the
        truncated tail, corrupting a *good* record as well.  Checked once
        per store instance, before its first write.
        """
        if self._tail_checked:
            return False
        self._tail_checked = True
        if not self.path.exists() or self.path.stat().st_size == 0:
            return False
        with open(self.path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"

    # -- writing ----------------------------------------------------------

    def record(self, record: dict) -> None:
        """Append one job record (must carry ``job_id`` and ``status``)."""
        if "job_id" not in record or "status" not in record:
            raise ValueError("record needs 'job_id' and 'status' fields")
        if self.path is None:
            self._memory.append(dict(record))
            return
        line = json.dumps(record, sort_keys=True) + "\n"
        if self._needs_leading_newline():
            line = "\n" + line
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    # -- reading ----------------------------------------------------------

    def _raw_records(self) -> Iterable[dict]:
        if self.path is None:
            return list(self._memory)
        if not self.path.exists():
            return []
        records = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # truncated tail from a hard kill
        return records

    def records(self) -> List[dict]:
        """All records, deduplicated by job id (last record wins)."""
        by_id: Dict[str, dict] = {}
        for rec in self._raw_records():
            by_id[rec["job_id"]] = rec
        return list(by_id.values())

    def completed(self) -> List[dict]:
        return [r for r in self.records() if r.get("status") == STATUS_DONE]

    def failed(self) -> List[dict]:
        return [r for r in self.records() if r.get("status") == STATUS_FAILED]

    def completed_ids(self) -> Set[str]:
        """Ids of jobs that finished successfully (the resume skip-set)."""
        return {r["job_id"] for r in self.completed()}

    def __len__(self) -> int:
        return len(self.records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "memory" if self.path is None else str(self.path)
        return f"<ResultStore {where} n={len(self)}>"
