"""Durable result store for campaigns.

Results live in an append-only JSONL file (``results.jsonl``) inside the
campaign directory: one JSON object per line, written with ``O_APPEND`` in a
single ``write`` call so concurrent writers (several runner processes —
or hosts sharing a filesystem — pointed at the same campaign) interleave
whole lines, never fragments.  Append-only also makes interrupt-safety
trivial — a killed run leaves a valid store containing exactly the jobs
that finished.

The reader is forgiving: a truncated final line (the one failure mode a
hard kill can produce) is skipped, and when the same job id appears more
than once the *last* record wins, so a re-run may correct an earlier
failure without rewriting history.  Reads are incremental — the store
remembers how far into the file it has parsed and only folds in newly
appended lines — which is what keeps the cooperative multi-runner
re-read cheap even for 100k-job campaigns.

Long-lived stores accumulate duplicate records (retried failures,
overlapping runners); :meth:`ResultStore.compact` rewrites the log
one-line-per-job into a fresh file and atomically renames it over the
old one.  Appends and compaction both take an exclusive ``flock`` (an
append is a microsecond-scale critical section), so on a local
filesystem no append can race the rename, and the ends-mid-line tail
check can never interleave with another writer's partial write; a
writer that opened the pre-compaction inode detects the swap and
reopens.
(``flock`` degrades to advisory-or-absent on some network filesystems —
run compaction when no runner is writing if the store lives on NFS.)

``ResultStore()`` with no path is an in-memory store for ephemeral sweeps
(the benchmark harness) and tests.
"""

from __future__ import annotations

import copy
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

STATUS_DONE = "done"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class CompactionStats:
    """What one :meth:`ResultStore.compact` call did."""

    n_records_before: int   # raw parseable records, duplicates included
    n_records_after: int    # one per job id
    bytes_before: int
    bytes_after: int

    @property
    def n_dropped(self) -> int:
        """Duplicate / superseded records removed by the rewrite."""
        return self.n_records_before - self.n_records_after

    def __str__(self) -> str:
        return (
            f"{self.n_records_before} -> {self.n_records_after} records "
            f"({self.n_dropped} dropped), "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )


class ResultStore:
    """Append-only job-result log keyed by stable job id.

    Parameters
    ----------
    path:
        JSONL file backing the store; parent directories are created.
        ``None`` keeps records in memory (ephemeral sweeps and tests).
    """

    def __init__(self, path=None) -> None:
        self.path: Optional[Path] = None if path is None else Path(path)
        self._memory: List[dict] = []
        # Incremental-read state: id-keyed cache of everything parsed so
        # far, the byte offset of the first unparsed line, and the
        # (st_dev, st_ino) identity of the file those offsets refer to
        # (compaction replaces the inode, invalidating them).
        self._by_id: Dict[str, dict] = {}
        self._offset = 0
        self._src: Optional[Tuple[int, int]] = None
        # File size observed right after our own last append; while the
        # size still matches, the tail is known to end in a newline.
        self._clean_size: Optional[int] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- writing ----------------------------------------------------------

    def _fd_is_current(self, fd: int) -> bool:
        """Whether ``fd`` still refers to the file at ``self.path``.

        False when a concurrent :meth:`compact` renamed a fresh file over
        the path between our ``open`` and ``flock`` — writing through the
        stale descriptor would append to the unlinked old inode and lose
        the record.
        """
        try:
            st_path = os.stat(self.path)
        except FileNotFoundError:
            return False
        st_fd = os.fstat(fd)
        return (st_fd.st_dev, st_fd.st_ino) == (st_path.st_dev, st_path.st_ino)

    def _needs_leading_newline(self, fd: int) -> bool:
        """Whether the file currently ends mid-line (a hard kill during a write).

        Without this check the next append would concatenate onto the
        truncated tail, corrupting a *good* record as well.  Re-checked
        whenever the file has changed size since our own last append —
        another writer's kill can truncate the tail at any time, so a
        once-per-instance check is not enough (the multi-writer edge).
        The ``_clean_size`` shortcut is sound because it is captured under
        the same exclusive lock as the write: no peer can slip a partial
        line in between our write and our ``fstat``.
        """
        size = os.fstat(fd).st_size
        if size == 0:
            return False
        if size == self._clean_size:
            return False  # unchanged since our last append, which ended in \n
        if hasattr(os, "pread"):
            return os.pread(fd, 1, size - 1) != b"\n"
        with open(self.path, "rb") as fh:  # pragma: no cover - non-POSIX
            fh.seek(size - 1)
            return fh.read(1) != b"\n"

    def record(self, record: dict) -> None:
        """Append one job record (must carry ``job_id`` and ``status``).

        The write is a single ``O_APPEND`` ``write`` under an exclusive
        ``flock``, so concurrent writers interleave whole lines, never
        race a compaction rename, and the tail check + write happen
        atomically with respect to other (locking) writers.
        """
        if "job_id" not in record or "status" not in record:
            raise ValueError("record needs 'job_id' and 'status' fields")
        if self.path is None:
            self._memory.append(dict(record))
            return
        payload = json.dumps(record, sort_keys=True) + "\n"
        while True:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    if not self._fd_is_current(fd):
                        continue  # compacted underneath us; reopen
                line = payload
                if self._needs_leading_newline(fd):
                    line = "\n" + payload
                os.write(fd, line.encode("utf-8"))
                self._clean_size = os.fstat(fd).st_size
                return
            finally:
                os.close(fd)

    # -- reading ----------------------------------------------------------

    def _reset_cache(self) -> None:
        self._by_id = {}
        self._offset = 0
        self._src = None

    @staticmethod
    def _parse_line(raw: bytes) -> Optional[dict]:
        """One JSONL line -> record dict, or ``None`` for junk/truncation."""
        raw = raw.strip()
        if not raw:
            return None
        try:
            rec = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None  # truncated tail from a hard kill
        if not isinstance(rec, dict) or "job_id" not in rec:
            return None
        return rec

    @classmethod
    def _fold_lines(cls, data: bytes, by_id: Dict[str, dict]) -> int:
        """Fold raw JSONL bytes into ``by_id`` (last record per id wins).

        The single definition of the dedup discipline, shared by the
        incremental scanner and compaction.  Returns how many parseable
        records were folded (duplicates included).
        """
        n_parsed = 0
        for raw in data.split(b"\n"):
            rec = cls._parse_line(raw)
            if rec is not None:
                n_parsed += 1
                by_id[rec["job_id"]] = rec
        return n_parsed

    @staticmethod
    def _fold_records(records: List[dict]) -> Dict[str, dict]:
        """Dedup already-parsed records by job id (last record wins)."""
        by_id: Dict[str, dict] = {}
        for rec in records:
            by_id[rec["job_id"]] = rec
        return by_id

    def _scan(self) -> None:
        """Fold lines appended since the last read into the id-keyed cache.

        Detects file replacement (compaction by another process) or
        truncation via the inode identity and size, and rescans from the
        start in that case.  Only complete (newline-terminated) lines are
        consumed, so a partial line being written right now is retried on
        the next scan instead of being half-parsed.
        """
        if self.path is None:
            return
        try:
            fh = open(self.path, "rb")
        except FileNotFoundError:
            self._reset_cache()
            return
        with fh:
            st = os.fstat(fh.fileno())
            src = (st.st_dev, st.st_ino)
            if self._src != src or st.st_size < self._offset:
                self._reset_cache()
                self._src = src
            if st.st_size == self._offset:
                return
            fh.seek(self._offset)
            data = fh.read()
        end = data.rfind(b"\n")
        if end < 0:
            return  # only a partial line so far
        self._offset += end + 1
        self._fold_lines(data[:end], self._by_id)

    def records(self) -> List[dict]:
        """All records, deduplicated by job id (last record wins).

        Order is first appearance of each id, which compaction preserves —
        aggregation output is identical before and after a compact.
        Returned records are deep copies: mutating them cannot corrupt the
        store's read cache.
        """
        if self.path is None:
            by_id = self._fold_records(self._memory)
            return [copy.deepcopy(r) for r in by_id.values()]
        self._scan()
        return [copy.deepcopy(r) for r in self._by_id.values()]

    def completed(self) -> List[dict]:
        """Records of jobs that finished successfully."""
        return [r for r in self.records() if r.get("status") == STATUS_DONE]

    def failed(self) -> List[dict]:
        """Records of jobs whose latest attempt failed (retried on re-run)."""
        return [r for r in self.records() if r.get("status") == STATUS_FAILED]

    def completed_ids(self) -> Set[str]:
        """Ids of jobs that finished successfully (the resume skip-set)."""
        if self.path is None:
            return {r["job_id"] for r in self.completed()}
        self._scan()
        return {
            rid
            for rid, rec in self._by_id.items()
            if rec.get("status") == STATUS_DONE
        }

    # -- compaction --------------------------------------------------------

    def compact(self) -> CompactionStats:
        """Rewrite the log one-line-per-job (last record wins), atomically.

        The deduplicated records are written to a sibling temp file,
        fsynced, and renamed over the live store, all under an exclusive
        ``flock`` so no concurrent append can fall between the read and
        the rename.  Record order (first appearance of each id) and the
        per-record bytes are preserved, so ``summary``/``compare`` output
        is identical before and after; truncated kill artifacts are
        dropped.  Idempotent: compacting a compacted store is a no-op
        rewrite.  Returns a :class:`CompactionStats`.
        """
        if self.path is None:
            n_before = len(self._memory)
            self._memory = list(self._fold_records(self._memory).values())
            return CompactionStats(n_before, len(self._memory), 0, 0)
        while True:
            try:
                fd = os.open(self.path, os.O_RDWR)
            except FileNotFoundError:
                return CompactionStats(0, 0, 0, 0)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    if not self._fd_is_current(fd):
                        continue  # lost a race with another compactor; reopen
                with os.fdopen(fd, "rb", closefd=False) as fh:
                    data = fh.read()
                by_id: Dict[str, dict] = {}
                n_before = self._fold_lines(data, by_id)
                body = "".join(
                    json.dumps(rec, sort_keys=True) + "\n" for rec in by_id.values()
                ).encode("utf-8")
                tmp = self.path.with_name(self.path.name + f".compact.{os.getpid()}")
                tfd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
                try:
                    os.write(tfd, body)
                    os.fsync(tfd)
                finally:
                    os.close(tfd)
                os.replace(tmp, self.path)
                self._reset_cache()
                self._clean_size = None
                return CompactionStats(n_before, len(by_id), len(data), len(body))
            finally:
                os.close(fd)

    # -- misc --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "memory" if self.path is None else str(self.path)
        return f"<ResultStore {where} n={len(self)}>"
