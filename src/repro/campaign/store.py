"""Durable result store for campaigns: job records plus claim leases.

This module is the original **JSONL engine** behind the
:class:`~repro.campaign.backends.base.StoreBackend` contract (see
:mod:`repro.campaign.backends` for the seam and the other engines; the
shared :class:`Lease`/:class:`CompactionStats` value types and status
constants live there and are re-exported here).

Results live in an append-only JSONL file (``results.jsonl``) inside the
campaign directory: one JSON object per line, written with ``O_APPEND`` in a
single ``write`` call so concurrent writers (several runner processes —
or hosts sharing a filesystem — pointed at the same campaign) interleave
whole lines, never fragments.  Append-only also makes interrupt-safety
trivial — a killed run leaves a valid store containing exactly the jobs
that finished.

The log carries two kinds of lines, distinguished by ``status``:

* **result records** (``done`` / ``failed`` / anything else) — the
  durable outcome of a job, deduplicated last-record-wins per job id;
* **lease lines** (``claimed`` / ``released``) — lightweight claim
  bookkeeping written by :meth:`ResultStore.claim`, :meth:`renew` and
  :meth:`release`.  A claim names the claiming runner and a wall-clock
  ``deadline``; the latest lease line per job wins, a result record
  supersedes any earlier lease line for its job, and a claim whose
  deadline has passed counts as expired (requeueable).  Claims are
  granted under the same exclusive ``flock`` as appends, with a re-scan
  inside the critical section, so two runners can never both hold a live
  lease on one job.  Deadlines are epoch seconds: across hosts the
  scheme only needs clocks that agree to within the lease TTL, which is
  why TTLs should be generous (tens of seconds) rather than tight.

The reader is forgiving: a truncated final line (the one failure mode a
hard kill can produce) is skipped, and when the same job id appears more
than once the *last* record wins, so a re-run may correct an earlier
failure without rewriting history.  Reads are incremental — the store
remembers how far into the file it has parsed and only folds in newly
appended lines — which is what keeps the cooperative multi-runner
re-read cheap even for 100k-job campaigns.

Long-lived stores accumulate duplicate records (retried failures,
overlapping runners) and stale lease lines; :meth:`ResultStore.compact`
rewrites the log one-line-per-job (keeping only live, unexpired claims)
into a fresh file and atomically renames it over the old one.  Appends
and compaction both take an exclusive ``flock`` (an append is a
microsecond-scale critical section), so on a local filesystem no append
can race the rename, and the ends-mid-line tail check can never
interleave with another writer's partial write; a writer that opened the
pre-compaction inode detects the swap and reopens.
(``flock`` degrades to advisory-or-absent on some network filesystems —
run compaction when no runner is writing if the store lives on NFS.)

``ResultStore()`` with no path is an in-memory store for ephemeral sweeps
(the benchmark harness) and tests.  For multi-million-job campaigns the
single file becomes the contention point; :mod:`repro.campaign.sharding`
spreads the same format over ``results-<k>.jsonl`` shards.
"""

from __future__ import annotations

import copy
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign.backends.base import (
    LEASE_STATUSES,
    STATUS_CLAIMED,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_RELEASED,
    CompactionStats,
    Lease,
    StoreBackend,
)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = [
    "LEASE_STATUSES",
    "STATUS_CLAIMED",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_RELEASED",
    "CompactionStats",
    "Lease",
    "ResultStore",
]


class ResultStore(StoreBackend):
    """Append-only job-result log keyed by stable job id.

    Parameters
    ----------
    path:
        JSONL file backing the store; parent directories are created.
        ``None`` keeps records in memory (ephemeral sweeps and tests).
    """

    def __init__(self, path=None) -> None:
        self.path: Optional[Path] = None if path is None else Path(path)
        self._memory: List[dict] = []
        # Incremental-read state: id-keyed caches of everything parsed so
        # far (result records and lease lines separately), the byte offset
        # of the first unparsed line, and the (st_dev, st_ino) identity of
        # the file those offsets refer to (compaction replaces the inode,
        # invalidating them).
        self._by_id: Dict[str, dict] = {}
        self._lease_by_id: Dict[str, dict] = {}
        self._offset = 0
        self._src: Optional[Tuple[int, int]] = None
        # File size observed right after our own last append; while the
        # size still matches, the tail is known to end in a newline.
        self._clean_size: Optional[int] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- writing ----------------------------------------------------------

    def _fd_is_current(self, fd: int) -> bool:
        """Whether ``fd`` still refers to the file at ``self.path``.

        False when a concurrent :meth:`compact` renamed a fresh file over
        the path between our ``open`` and ``flock`` — writing through the
        stale descriptor would append to the unlinked old inode and lose
        the record.
        """
        try:
            st_path = os.stat(self.path)
        except FileNotFoundError:
            return False
        st_fd = os.fstat(fd)
        return (st_fd.st_dev, st_fd.st_ino) == (st_path.st_dev, st_path.st_ino)

    def _needs_leading_newline(self, fd: int) -> bool:
        """Whether the file currently ends mid-line (a hard kill during a write).

        Without this check the next append would concatenate onto the
        truncated tail, corrupting a *good* record as well.  Re-checked
        whenever the file has changed size since our own last append —
        another writer's kill can truncate the tail at any time, so a
        once-per-instance check is not enough (the multi-writer edge).
        The ``_clean_size`` shortcut is sound because it is captured under
        the same exclusive lock as the write: no peer can slip a partial
        line in between our write and our ``fstat``.
        """
        size = os.fstat(fd).st_size
        if size == 0:
            return False
        if size == self._clean_size:
            return False  # unchanged since our last append, which ended in \n
        if hasattr(os, "pread"):
            return os.pread(fd, 1, size - 1) != b"\n"
        with open(self.path, "rb") as fh:  # pragma: no cover - non-POSIX
            fh.seek(size - 1)
            return fh.read(1) != b"\n"

    def _write_locked(self, fd: int, payload: str) -> None:
        """Append ``payload`` (newline-terminated lines) under the held lock."""
        if self._needs_leading_newline(fd):
            payload = "\n" + payload
        os.write(fd, payload.encode("utf-8"))
        self._clean_size = os.fstat(fd).st_size

    def _append_payload(self, payload: str) -> None:
        """Append pre-encoded JSONL under an exclusive ``flock``.

        The open/lock/recheck loop shared by :meth:`record`,
        :meth:`renew` and :meth:`release`: a single ``O_APPEND`` write,
        so concurrent writers interleave whole lines, never race a
        compaction rename, and the tail check + write happen atomically
        with respect to other (locking) writers.
        """
        while True:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    if not self._fd_is_current(fd):
                        continue  # compacted underneath us; reopen
                self._write_locked(fd, payload)
                return
            finally:
                os.close(fd)

    def record(self, record: dict) -> None:
        """Append one job record (must carry ``job_id`` and ``status``)."""
        if "job_id" not in record or "status" not in record:
            raise ValueError("record needs 'job_id' and 'status' fields")
        with self._timed("append"):
            if self.path is None:
                self._memory.append(dict(record))
                return
            self._append_payload(json.dumps(record, sort_keys=True) + "\n")

    def record_many(self, records: Sequence[dict]) -> None:
        """Append a batch of records as one locked multi-line write.

        One open/flock/write cycle instead of one per record — the
        runner's per-batch append path.  All-or-nothing with respect to
        concurrent writers (the payload is a single ``write``), and a
        hard kill mid-write can tear at most the final line, exactly as
        with single appends.
        """
        records = list(records)
        for rec in records:
            if "job_id" not in rec or "status" not in rec:
                raise ValueError("record needs 'job_id' and 'status' fields")
        if not records:
            return
        with self._timed("append"):
            if self.path is None:
                self._memory.extend(dict(r) for r in records)
                return
            self._append_payload(
                "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
            )

    # -- leases ------------------------------------------------------------

    @staticmethod
    def _claim_line(job_id: str, runner: str, deadline: float) -> dict:
        return {
            "job_id": job_id,
            "status": STATUS_CLAIMED,
            "runner": runner,
            "deadline": deadline,
        }

    @staticmethod
    def _grantable(
        job_id: str,
        runner: str,
        now: float,
        by_id: Dict[str, dict],
        leases: Dict[str, dict],
    ) -> bool:
        """Whether ``runner`` may claim ``job_id`` given the folded state.

        Completed jobs are never grantable; failed jobs are (retry policy
        lives in the runner).  A live claim blocks everyone but its
        holder; released or expired claims block nobody.
        """
        rec = by_id.get(job_id)
        if rec is not None and rec.get("status") == STATUS_DONE:
            return False
        lease = leases.get(job_id)
        if lease is None or lease.get("status") != STATUS_CLAIMED:
            return True
        if lease.get("runner") == runner:
            return True  # renewing / re-claiming our own lease
        return float(lease.get("deadline", 0.0)) <= now

    def claim(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Atomically claim the free subset of ``job_ids`` for ``runner``.

        A job is granted unless it is already completed or another runner
        holds a live (unexpired) lease on it; expired leases are silently
        requeued to the new claimant.  The check and the claim-line
        append happen under one exclusive ``flock`` with a re-scan inside
        the critical section, so concurrent claimants of the same batch
        partition it — no job is ever granted twice.  Returns the granted
        ids in input order.  ``now`` (epoch seconds) is injectable for
        tests; the deadline written is ``now + ttl``.
        """
        now = time.time() if now is None else float(now)
        deadline = now + float(ttl)
        with self._timed("claim"):
            return self._claim_locked(job_ids, runner, now, deadline)

    def _claim_locked(
        self,
        job_ids: Sequence[str],
        runner: str,
        now: float,
        deadline: float,
    ) -> List[str]:
        """The :meth:`claim` body (split out so the timer wraps it whole)."""
        if self.path is None:
            by_id, leases = self._memory_state()
            granted = [
                jid for jid in job_ids
                if self._grantable(jid, runner, now, by_id, leases)
            ]
            for jid in granted:
                self._memory.append(self._claim_line(jid, runner, deadline))
            return granted
        while True:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    if not self._fd_is_current(fd):
                        continue  # compacted underneath us; reopen
                self._scan()  # safe: we hold the lock, nobody can append
                granted = [
                    jid for jid in job_ids
                    if self._grantable(jid, runner, now, self._by_id, self._lease_by_id)
                ]
                if granted:
                    payload = "".join(
                        json.dumps(self._claim_line(jid, runner, deadline),
                                   sort_keys=True) + "\n"
                        for jid in granted
                    )
                    self._write_locked(fd, payload)
                    for jid in granted:  # keep the cache coherent pre-rescan
                        self._lease_by_id[jid] = self._claim_line(jid, runner, deadline)
                return granted
            finally:
                os.close(fd)

    def _held_by(
        self,
        job_ids: Sequence[str],
        runner: str,
        by_id: Dict[str, dict],
        leases: Dict[str, dict],
    ) -> List[str]:
        """The subset of ``job_ids`` whose current lease belongs to ``runner``.

        The renewal ownership check: a lease that lapsed and was
        reclaimed by a peer (or fulfilled by a result) must not be
        clobbered by a stalled runner's late heartbeat.
        """
        held = []
        for jid in job_ids:
            if jid in by_id:
                continue  # fulfilled: a result superseded the claim
            lease = leases.get(jid)
            if (
                lease is not None
                and lease.get("status") == STATUS_CLAIMED
                and lease.get("runner") == runner
            ):
                held.append(jid)
        return held

    def renew(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Extend ``runner``'s leases on ``job_ids`` to ``now + ttl``.

        Only leases the runner *still holds* are renewed (checked under
        the same exclusive lock as the append): if a lease lapsed —
        e.g. this runner stalled past the TTL — and a peer reclaimed
        the job, the late heartbeat must not clobber the peer's claim.
        Returns the ids actually renewed; the heartbeat path calls this
        every ``ttl / 3`` seconds, and the cost is one incremental scan
        plus one append.
        """
        now = time.time() if now is None else float(now)
        deadline = now + float(ttl)
        if not job_ids:
            return []
        if self.path is None:
            by_id, leases = self._memory_state()
            held = self._held_by(job_ids, runner, by_id, leases)
            for jid in held:
                self._memory.append(self._claim_line(jid, runner, deadline))
            return held
        while True:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    if not self._fd_is_current(fd):
                        continue  # compacted underneath us; reopen
                self._scan()  # safe: we hold the lock, nobody can append
                held = self._held_by(job_ids, runner, self._by_id, self._lease_by_id)
                if held:
                    payload = "".join(
                        json.dumps(self._claim_line(jid, runner, deadline),
                                   sort_keys=True) + "\n"
                        for jid in held
                    )
                    self._write_locked(fd, payload)
                    for jid in held:
                        self._lease_by_id[jid] = self._claim_line(jid, runner, deadline)
                return held
            finally:
                os.close(fd)

    def release(self, job_ids: Sequence[str], runner: str) -> None:
        """Give up ``runner``'s claims on ``job_ids`` without a result.

        Written on graceful interrupt so peers can reclaim immediately
        instead of waiting out the TTL; a hard-killed runner never gets
        to call this, which is exactly what expiry is for.
        """
        lines = [
            {"job_id": jid, "status": STATUS_RELEASED, "runner": runner}
            for jid in job_ids
        ]
        if not lines:
            return
        if self.path is None:
            self._memory.extend(lines)
            return
        self._append_payload(
            "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
        )

    def leases(self, now: Optional[float] = None) -> Dict[str, Lease]:
        """Live (claimed, unexpired) leases by job id.

        Released, expired, and result-superseded claims are excluded — a
        job in this mapping is exactly one some runner is entitled to be
        executing right now.
        """
        now = time.time() if now is None else float(now)
        if self.path is None:
            _, lease_map = self._memory_state()
        else:
            self._scan()
            lease_map = self._lease_by_id
        live: Dict[str, Lease] = {}
        for jid, rec in lease_map.items():
            if rec.get("status") != STATUS_CLAIMED:
                continue
            lease = Lease(jid, str(rec.get("runner", "")),
                          float(rec.get("deadline", 0.0)))
            if not lease.expired(now):
                live[jid] = lease
        return live

    # -- reading ----------------------------------------------------------

    def _reset_cache(self) -> None:
        self._by_id = {}
        self._lease_by_id = {}
        self._offset = 0
        self._src = None

    @staticmethod
    def _parse_line(raw: bytes) -> Optional[dict]:
        """One JSONL line -> record dict, or ``None`` for junk/truncation."""
        raw = raw.strip()
        if not raw:
            return None
        try:
            rec = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None  # truncated tail from a hard kill
        if not isinstance(rec, dict) or "job_id" not in rec:
            return None
        return rec

    @classmethod
    def _fold_one(
        cls, rec: dict, by_id: Dict[str, dict], leases: Dict[str, dict]
    ) -> bool:
        """Fold one parsed record into the two id-keyed maps.

        The single definition of the dedup discipline: lease lines
        (``claimed``/``released``) go to ``leases`` last-line-wins;
        anything else is a result record, last-record-wins in ``by_id``
        *and* superseding any earlier lease line for that job (a result
        is the lease's fulfilment).  A lease line folded after a result
        stands on its own — that is a later re-claim (e.g. retrying a
        failure).  Returns True for result records (the countable kind).
        """
        jid = rec["job_id"]
        if rec.get("status") in LEASE_STATUSES:
            leases[jid] = rec
            return False
        by_id[jid] = rec
        leases.pop(jid, None)
        return True

    @classmethod
    def _fold_lines(
        cls, data: bytes, by_id: Dict[str, dict], leases: Dict[str, dict]
    ) -> int:
        """Fold raw JSONL bytes into the id-keyed maps (see :meth:`_fold_one`).

        Shared by the incremental scanner and compaction.  Returns how
        many parseable *result* records were folded (duplicates included).
        """
        n_results = 0
        for raw in data.split(b"\n"):
            rec = cls._parse_line(raw)
            if rec is not None:
                n_results += cls._fold_one(rec, by_id, leases)
        return n_results

    def _memory_state(self) -> Tuple[Dict[str, dict], Dict[str, dict]]:
        """Fold the in-memory record list into (results, leases) maps."""
        by_id: Dict[str, dict] = {}
        leases: Dict[str, dict] = {}
        for rec in self._memory:
            self._fold_one(rec, by_id, leases)
        return by_id, leases

    def _scan(self) -> None:
        """Fold lines appended since the last read into the id-keyed caches.

        Detects file replacement (compaction by another process) or
        truncation via the inode identity and size, and rescans from the
        start in that case.  Only complete (newline-terminated) lines are
        consumed, so a partial line being written right now is retried on
        the next scan instead of being half-parsed.
        """
        if self.path is None:
            return
        try:
            fh = open(self.path, "rb")
        except FileNotFoundError:
            self._reset_cache()
            return
        with fh:
            st = os.fstat(fh.fileno())
            src = (st.st_dev, st.st_ino)
            if self._src != src or st.st_size < self._offset:
                self._reset_cache()
                self._src = src
            if st.st_size == self._offset:
                return
            fh.seek(self._offset)
            data = fh.read()
        end = data.rfind(b"\n")
        if end < 0:
            return  # only a partial line so far
        self._offset += end + 1
        self._fold_lines(data[:end], self._by_id, self._lease_by_id)

    def records(self) -> List[dict]:
        """All result records, deduplicated by job id (last record wins).

        Lease lines are bookkeeping, not results, and are never returned
        here — aggregation and status consumers see exactly what they saw
        before leases existed.  Order is first appearance of each id,
        which compaction preserves — aggregation output is identical
        before and after a compact.  Returned records are deep copies:
        mutating them cannot corrupt the store's read cache.
        """
        if self.path is None:
            by_id, _ = self._memory_state()
            return [copy.deepcopy(r) for r in by_id.values()]
        self._scan()
        return [copy.deepcopy(r) for r in self._by_id.values()]

    def completed(self) -> List[dict]:
        """Records of jobs that finished successfully."""
        return [r for r in self.records() if r.get("status") == STATUS_DONE]

    def failed(self) -> List[dict]:
        """Records of jobs whose latest attempt failed (retried on re-run)."""
        return [r for r in self.records() if r.get("status") == STATUS_FAILED]

    def completed_ids(self) -> Set[str]:
        """Ids of jobs that finished successfully (the resume skip-set)."""
        if self.path is None:
            return {r["job_id"] for r in self.completed()}
        self._scan()
        return {
            rid
            for rid, rec in self._by_id.items()
            if rec.get("status") == STATUS_DONE
        }

    # -- compaction --------------------------------------------------------

    @classmethod
    def _compact_body(
        cls,
        by_id: Dict[str, dict],
        leases: Dict[str, dict],
        now: float,
    ) -> str:
        """The rewritten log: result records plus still-live claim lines."""
        lines = [json.dumps(rec, sort_keys=True) + "\n" for rec in by_id.values()]
        for jid, rec in leases.items():
            if rec.get("status") != STATUS_CLAIMED:
                continue  # released: nothing to preserve
            if float(rec.get("deadline", 0.0)) <= now:
                continue  # expired: the job is requeueable, drop the line
            lines.append(json.dumps(rec, sort_keys=True) + "\n")
        return "".join(lines)

    def compact(self, now: Optional[float] = None) -> CompactionStats:
        """Rewrite the log one-line-per-job (last record wins), atomically.

        The deduplicated records are written to a sibling temp file,
        fsynced, and renamed over the live store, all under an exclusive
        ``flock`` so no concurrent append can fall between the read and
        the rewrite.  Record order (first appearance of each id) and the
        per-record bytes are preserved, so ``summary``/``compare`` output
        is identical before and after; truncated kill artifacts, stale
        duplicate records, and released/expired/superseded lease lines
        are dropped (live claims survive, so compacting under active
        runners loses no mutual exclusion).  Idempotent: compacting a
        compacted store is a no-op rewrite.  Returns a
        :class:`CompactionStats`.
        """
        now = time.time() if now is None else float(now)
        with self._timed("compact"):
            return self._compact_now(now)

    def _compact_now(self, now: float) -> CompactionStats:
        """The :meth:`compact` body (split out so the timer wraps it whole)."""
        if self.path is None:
            by_id, leases = self._memory_state()
            n_before = sum(
                1 for r in self._memory if r.get("status") not in LEASE_STATUSES
            )
            self._memory = list(by_id.values()) + [
                rec for rec in leases.values()
                if rec.get("status") == STATUS_CLAIMED
                and float(rec.get("deadline", 0.0)) > now
            ]
            return CompactionStats(n_before, len(by_id), 0, 0)
        while True:
            try:
                fd = os.open(self.path, os.O_RDWR)
            except FileNotFoundError:
                return CompactionStats(0, 0, 0, 0)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                    if not self._fd_is_current(fd):
                        continue  # lost a race with another compactor; reopen
                with os.fdopen(fd, "rb", closefd=False) as fh:
                    data = fh.read()
                by_id: Dict[str, dict] = {}
                leases: Dict[str, dict] = {}
                n_before = self._fold_lines(data, by_id, leases)
                body = self._compact_body(by_id, leases, now).encode("utf-8")
                tmp = self.path.with_name(self.path.name + f".compact.{os.getpid()}")
                tfd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
                try:
                    os.write(tfd, body)
                    os.fsync(tfd)
                finally:
                    os.close(tfd)
                os.replace(tmp, self.path)
                self._reset_cache()
                self._clean_size = None
                return CompactionStats(n_before, len(by_id), len(data), len(body))
            finally:
                os.close(fd)

    # -- misc --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "memory" if self.path is None else str(self.path)
        return f"<ResultStore {where} n={len(self)}>"
