"""Sharded result stores for multi-million-job campaigns.

One ``results.jsonl`` serializes every append through a single ``flock``
— fine for thousands of jobs, a bottleneck when dozens of runners drain
millions.  A :class:`ShardedResultStore` spreads the identical JSONL
format (result records + lease lines, see :mod:`repro.campaign.store`)
over ``results-<k>.jsonl`` files, routing each record by a stable hash
of its job id, with a small ``store-manifest.json`` pinning the shard
count.  Every property of the single-file store holds *per shard*:
appends contend only within a shard, incremental reads and the
truncated-tail heal are per-shard (a torn write on one shard never
blocks reads of the others), compaction rewrites shards independently,
and batch claims partition naturally because a claim touches only the
shards its job ids hash to.

The shard of a job is a pure function of (job id, shard count), so every
runner, watcher, and aggregator agrees on the layout with no
coordination beyond the manifest.  Aggregate views (``records``,
``status``, ``summary``, ``compare``) are byte-for-byte insensitive to
the layout: a sharded store round-trips them identically to the legacy
single file.

:func:`open_store` is the single resolution point the campaign façade
and CLI use: it detects an existing layout (manifest beats legacy file,
and the manifest's ``engine`` field picks the implementation — JSONL or
:class:`~repro.campaign.backends.sqlite.SQLiteStoreBackend`), creates
the requested one, and — via :func:`migrate_legacy_store` — losslessly
and idempotently upgrades a legacy ``results.jsonl`` campaign directory
in place when a shard count is requested.  :func:`migrate_store` copies
any store into a *fresh* directory under any engine or shard count (the
resharding and jsonl↔sqlite conversion tool behind ``campaign
migrate-store``).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign.backends import (
    ENGINE_JSONL,
    ENGINE_SQLITE,
    ENGINE_STORE,
    SQLiteStoreBackend,
    is_store_url,
    open_network_store,
)
from repro.campaign.backends.base import StoreBackend
from repro.campaign.store import CompactionStats, Lease, ResultStore

#: Manifest file pinning a directory's store engine (and shard layout).
MANIFEST_FILENAME = "store-manifest.json"
#: The single-file layout this module migrates away from.
LEGACY_RESULTS_FILENAME = "results.jsonl"
#: Suffix the migrated legacy file is parked under (kept, not deleted).
MIGRATED_SUFFIX = ".migrated"
#: The campaign spec file copied along by :func:`migrate_store`.
_SPEC_FILENAME = "spec.json"

_MANIFEST_VERSION = 1


def read_manifest(directory) -> Optional[dict]:
    """The parsed ``store-manifest.json`` of ``directory``, or ``None``.

    Manifests written before engines existed carry no ``engine`` field;
    they are reported as ``jsonl`` (the only engine that existed then).
    """
    path = Path(directory) / MANIFEST_FILENAME
    if not path.exists():
        return None
    manifest = json.loads(path.read_text())
    manifest.setdefault("engine", ENGINE_JSONL)
    return manifest


def ensure_manifest(directory, engine: str, n_shards: Optional[int] = None) -> dict:
    """Validate or create ``directory``'s manifest for ``engine``.

    An existing manifest must name the same engine — the representations
    cannot coexist, so reopening a directory under a different engine is
    a hard error pointing at ``campaign migrate-store``.  Returns the
    (existing or freshly written) manifest dict.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = read_manifest(directory)
    if manifest is not None:
        if manifest["engine"] != engine:
            raise ValueError(
                f"store at {directory} uses the {manifest['engine']!r} "
                f"engine; cannot reopen it as {engine!r} — use "
                f"'campaign migrate-store' to convert"
            )
        return manifest
    manifest = {"version": _MANIFEST_VERSION, "engine": engine}
    if engine == ENGINE_JSONL:
        manifest.update({"n_shards": int(n_shards), "hash": "sha1"})
    _write_manifest_file(directory / MANIFEST_FILENAME, manifest)
    return manifest


def _write_manifest_file(path: Path, manifest: dict) -> None:
    """Atomically create the manifest (concurrent creators converge)."""
    payload = json.dumps(manifest, sort_keys=True) + "\n"
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(payload)
    os.replace(tmp, path)


def shard_filename(index: int) -> str:
    """The JSONL filename of shard ``index`` (``results-<k>.jsonl``)."""
    return f"results-{index}.jsonl"


def shard_index(job_id: str, n_shards: int) -> int:
    """Stable shard of ``job_id`` among ``n_shards``.

    SHA-1 based (like job ids themselves), so the routing is identical
    across processes, hosts, and Python versions — never ``hash()``,
    which is salted per process.
    """
    digest = hashlib.sha1(job_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % n_shards


class ShardedResultStore(StoreBackend):
    """The :class:`~repro.campaign.store.ResultStore` API over N shards.

    Parameters
    ----------
    directory:
        Campaign directory holding ``store-manifest.json`` and the
        ``results-<k>.jsonl`` shard files (created as needed).  The
        manifest must name the ``jsonl`` engine (or predate engines).
    n_shards:
        Shard count when creating a fresh layout.  When a manifest
        already exists it wins; passing a *different* explicit count is
        an error (resharding means :func:`migrate_store` into a fresh
        directory).
    """

    #: Latency series label: the wrapper reports as ``"sharded"`` and the
    #: inner per-shard stores are silenced, so shard fan-out is measured
    #: once, at the layer the runner actually calls.
    metrics_engine = "sharded"

    def __init__(self, directory, n_shards: Optional[int] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = read_manifest(self.directory)
        if manifest is not None:
            if manifest["engine"] != ENGINE_JSONL:
                raise ValueError(
                    f"store at {self.directory} uses the "
                    f"{manifest['engine']!r} engine; cannot open it as "
                    f"sharded jsonl — use 'campaign migrate-store' to convert"
                )
            existing = int(manifest["n_shards"])
            if n_shards is not None and int(n_shards) != existing:
                raise ValueError(
                    f"store at {self.directory} is already sharded into "
                    f"{existing} shards; cannot reopen with n_shards={n_shards}"
                )
            n_shards = existing
        else:
            if n_shards is None:
                raise ValueError(
                    f"no {MANIFEST_FILENAME} in {self.directory} and no "
                    f"n_shards given"
                )
            if int(n_shards) < 1:
                raise ValueError(f"n_shards must be >= 1, got {n_shards}")
            ensure_manifest(self.directory, ENGINE_JSONL, n_shards=int(n_shards))
        self.n_shards = int(n_shards)
        self.shards: List[ResultStore] = [
            ResultStore(self.directory / shard_filename(k))
            for k in range(self.n_shards)
        ]
        from repro.telemetry import NULL_TELEMETRY

        for shard in self.shards:
            shard.telemetry = NULL_TELEMETRY  # the wrapper reports, not each shard

    @property
    def path(self) -> Path:
        """The directory holding the shards (display / identification)."""
        return self.directory

    def shard_for(self, job_id: str) -> ResultStore:
        """The shard store a job's records live in."""
        return self.shards[shard_index(job_id, self.n_shards)]

    def _group_by_shard(self, job_ids: Sequence[str]) -> Dict[int, List[str]]:
        groups: Dict[int, List[str]] = {}
        for jid in job_ids:
            groups.setdefault(shard_index(jid, self.n_shards), []).append(jid)
        return groups

    # -- the ResultStore API, fanned out ----------------------------------

    def record(self, record: dict) -> None:
        """Append one job record to the shard its ``job_id`` hashes to."""
        if "job_id" not in record or "status" not in record:
            raise ValueError("record needs 'job_id' and 'status' fields")
        with self._timed("append"):
            self.shard_for(record["job_id"]).record(record)

    def record_many(self, records: Sequence[dict]) -> None:
        """Append a batch of records, one locked write per touched shard."""
        groups: Dict[int, List[dict]] = {}
        for rec in records:
            if "job_id" not in rec or "status" not in rec:
                raise ValueError("record needs 'job_id' and 'status' fields")
            index = shard_index(rec["job_id"], self.n_shards)
            groups.setdefault(index, []).append(rec)
        with self._timed("append"):
            for index, recs in groups.items():
                self.shards[index].record_many(recs)

    def records(self) -> List[dict]:
        """All result records across shards, deduplicated per job id.

        Order is shard-major (shard 0's records first), first appearance
        within each shard — stable, but different from a single file's
        append order; every aggregate consumer (status/summary/compare)
        is order-insensitive.
        """
        out: List[dict] = []
        for shard in self.shards:
            out.extend(shard.records())
        return out

    def completed(self) -> List[dict]:
        """Records of jobs that finished successfully, across shards."""
        out: List[dict] = []
        for shard in self.shards:
            out.extend(shard.completed())
        return out

    def failed(self) -> List[dict]:
        """Latest-attempt failure records across shards."""
        out: List[dict] = []
        for shard in self.shards:
            out.extend(shard.failed())
        return out

    def completed_ids(self) -> Set[str]:
        """Ids of successfully finished jobs (the resume skip-set)."""
        out: Set[str] = set()
        for shard in self.shards:
            out |= shard.completed_ids()
        return out

    def claim(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Claim the free subset of ``job_ids``; see :meth:`ResultStore.claim`.

        Each shard's portion is claimed under that shard's own lock, so a
        batch claim touches only the shards it hashes to and concurrent
        claimants contend per shard, not globally.  Granted ids are
        returned in input order.
        """
        granted: Set[str] = set()
        with self._timed("claim"):
            for index, ids in self._group_by_shard(job_ids).items():
                granted.update(self.shards[index].claim(ids, runner, ttl, now=now))
        return [jid for jid in job_ids if jid in granted]

    def renew(
        self,
        job_ids: Sequence[str],
        runner: str,
        ttl: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Extend still-held leases; see :meth:`ResultStore.renew`."""
        renewed: Set[str] = set()
        for index, ids in self._group_by_shard(job_ids).items():
            renewed.update(self.shards[index].renew(ids, runner, ttl, now=now))
        return [jid for jid in job_ids if jid in renewed]

    def release(self, job_ids: Sequence[str], runner: str) -> None:
        """Give up held claims; see :meth:`ResultStore.release`."""
        for index, ids in self._group_by_shard(job_ids).items():
            self.shards[index].release(ids, runner)

    def leases(self, now: Optional[float] = None) -> Dict[str, Lease]:
        """Live (claimed, unexpired) leases across all shards."""
        live: Dict[str, Lease] = {}
        for shard in self.shards:
            live.update(shard.leases(now=now))
        return live

    def compact(self, now: Optional[float] = None) -> CompactionStats:
        """Compact every shard independently; returns the summed stats.

        Shard rewrites are not one atomic operation, but each shard's is,
        and shards share no job ids — an interruption leaves some shards
        compacted and the rest untouched, all valid.
        """
        stats = CompactionStats(0, 0, 0, 0)
        with self._timed("compact"):
            for shard in self.shards:
                stats = stats + shard.compact(now=now)
        return stats

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedResultStore {self.directory} "
            f"shards={self.n_shards} n={len(self)}>"
        )


def _fold_legacy_file(store: StoreBackend, directory: Path) -> StoreBackend:
    """Fold a leftover legacy ``results.jsonl`` into ``store`` and park it.

    The shared tail of every in-place migration: the legacy file's
    deduplicated records are appended (last-record-wins makes this
    idempotent, including after a crash between the fold and the
    rename), then the file is renamed to ``results.jsonl.migrated`` so
    nothing re-reads it.  A concurrent migrator may win the rename race;
    its fold equals ours, so losing it is fine.
    """
    legacy = directory / LEGACY_RESULTS_FILENAME
    if legacy.exists():
        _copy_records(ResultStore(legacy), store)
        try:
            legacy.rename(legacy.with_name(legacy.name + MIGRATED_SUFFIX))
        except FileNotFoundError:
            pass  # a concurrent migrator parked it first; their fold == ours
    return store


def _copy_records(src: StoreBackend, dst: StoreBackend, batch: int = 1000) -> int:
    """Append ``src``'s deduplicated records to ``dst`` in batches.

    ``record_many`` batches bound the engine-side critical section (one
    locked write / transaction per chunk, not per record).  Returns how
    many records were copied.
    """
    records = src.records()
    for start in range(0, len(records), batch):
        dst.record_many(records[start:start + batch])
    return len(records)


def migrate_legacy_store(directory, n_shards: Optional[int] = None) -> ShardedResultStore:
    """Upgrade a legacy single-file store to the sharded layout, in place.

    Folds the deduplicated result records of ``results.jsonl`` into the
    shards (creating the manifest if needed), then parks the legacy file
    as ``results.jsonl.migrated`` so nothing re-reads it.  Lossless: the
    sharded store's deduplicated records equal the legacy store's
    (truncated-tail artifacts were never records to begin with).
    Idempotent: appends dedup last-record-wins, so re-running — including
    after a crash between the fold and the rename — converges to the
    same store.  In-flight lease lines are *not* migrated (migrate when
    no runner is active; an abandoned claim would only have expired
    anyway).  Run it directly, or implicitly via :func:`open_store` with
    a ``shards`` count on a legacy directory.
    """
    directory = Path(directory)
    sharded = ShardedResultStore(directory, n_shards=n_shards)
    _fold_legacy_file(sharded, directory)
    return sharded


def open_store(directory, shards: Optional[int] = None,
               engine: Optional[str] = None) -> StoreBackend:
    """Resolve a campaign directory's result store (any engine, any layout).

    The single resolution point used by the campaign façade and the CLI:

    * an ``engine`` that is a ``store://host:port`` URL opens the
      network client (:func:`~repro.campaign.backends.netstore.
      open_network_store`), pinning the directory's manifest to the
      server so later opens reconnect without the URL;
    * a ``store-manifest.json`` wins — its ``engine`` field picks the
      implementation (``sqlite`` → :class:`SQLiteStoreBackend`,
      ``jsonl`` → :class:`ShardedResultStore`, ``store`` → the network
      client at the manifest's URL), and an interrupted migration's
      leftover legacy file is folded in first.  Passing a *different*
      explicit ``engine`` is an error pointing at ``campaign
      migrate-store``.
    * otherwise, ``engine="sqlite"`` creates the SQLite store —
      migrating a legacy ``results.jsonl`` in place if one exists;
    * otherwise, ``shards=N`` requests the sharded JSONL layout — a
      fresh one, or a migration of the legacy file;
    * otherwise the legacy single-file store, which is also the default
      for brand-new directories (small campaigns stay simple).

    Returns a :class:`~repro.campaign.backends.base.StoreBackend`; all
    engines expose the same interface.
    """
    directory = Path(directory)
    if engine is not None and is_store_url(engine):
        if shards is not None:
            raise ValueError(
                f"the store:// engine has no shard count (got shards={shards}); "
                f"sharding is the server's business"
            )
        return open_network_store(engine, directory=directory)
    manifest = read_manifest(directory)
    existing_engine = None if manifest is None else manifest["engine"]
    if existing_engine == ENGINE_STORE:
        if engine is not None:
            raise ValueError(
                f"store at {directory} already uses the {ENGINE_STORE!r} "
                f"engine (server {manifest.get('url')!r}); cannot open it "
                f"as {engine!r} — use 'campaign migrate-store' to convert"
            )
        if shards is not None:
            raise ValueError(
                f"the store:// engine has no shard count (got shards={shards})"
            )
        return open_network_store(manifest["url"], directory=directory)
    if engine is None and shards is not None:
        engine = ENGINE_JSONL  # a shard count implies the jsonl engine
    if engine is not None and existing_engine is not None and engine != existing_engine:
        raise ValueError(
            f"store at {directory} already uses the {existing_engine!r} "
            f"engine; cannot open it as {engine!r} — use "
            f"'campaign migrate-store' to convert"
        )
    engine = engine if existing_engine is None else existing_engine
    if engine == ENGINE_SQLITE:
        if shards is not None:
            raise ValueError(
                f"the sqlite engine has no shard count (got shards={shards})"
            )
        return _fold_legacy_file(SQLiteStoreBackend(directory), directory)
    if existing_engine is not None:
        if (directory / LEGACY_RESULTS_FILENAME).exists():
            return migrate_legacy_store(directory, shards)
        return ShardedResultStore(directory, n_shards=shards)
    if shards is not None:
        return migrate_legacy_store(directory, int(shards))
    return ResultStore(directory / LEGACY_RESULTS_FILENAME)


def migrate_store(source, dest, engine: Optional[str] = None,
                  shards: Optional[int] = None) -> Tuple[StoreBackend, int]:
    """Copy a campaign store into a fresh directory under a new engine/layout.

    The tool behind ``campaign migrate-store``: resharding
    (``engine="jsonl"`` with a new ``shards`` count) and engine
    conversion (jsonl ↔ sqlite) are the same operation — open the source
    read-only, open (or create) the destination with the requested
    engine, and append the source's deduplicated records in
    first-appearance order.  Lossless down to the bytes: records travel
    as canonical sorted-key JSON in every engine, so a jsonl → sqlite →
    jsonl round trip reproduces the compacted source byte-for-byte.
    Idempotent: re-running after an interruption converges (appends
    dedup last-record-wins).  In-flight leases are *not* migrated —
    migrate when no runner is active.  ``spec.json`` is copied verbatim
    when the source has one and the destination does not.

    Returns ``(destination store, records copied)``.
    """
    source, dest = Path(source), Path(dest)
    if source.resolve() == dest.resolve():
        raise ValueError(
            f"migrate-store needs a fresh destination directory, got the "
            f"source itself ({source})"
        )
    if read_manifest(source) is None and not (source / LEGACY_RESULTS_FILENAME).exists():
        raise ValueError(f"no campaign store at {source}")
    src_store = open_store(source)
    dst_store = open_store(dest, shards=shards, engine=engine)
    n_copied = _copy_records(src_store, dst_store)
    src_spec = source / _SPEC_FILENAME
    dst_spec = dest / _SPEC_FILENAME
    if src_spec.exists() and not dst_spec.exists():
        dst_spec.write_bytes(src_spec.read_bytes())
    return dst_store, n_copied
